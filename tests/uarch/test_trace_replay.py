"""Trace capture -> serialise -> load -> replay must be invisible.

The replay loops (:mod:`repro.uarch.replay`) claim bit-identity with
execute-driven simulation.  These tests hold them to the same golden
fingerprints as the simulator itself: for every SPEC-like workload,
both program kinds, widths 2/4/8, a trace captured at one width --
and round-tripped through the binary container -- must replay to the
exact fingerprints ``tests/golden/sim_goldens.json`` records for
execute-driven runs.  Plus: cross-core replay (in-order capture ->
OOO replay), live-predictor replay of baseline traces, the
``TraceMismatch`` guard for decomposed programs, and container
corruption detection.
"""

from __future__ import annotations

import json

import pytest

from repro.branchpred import GSharePredictor, HybridPredictor
from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_program,
)
from repro.ir import lower
from repro.isa.decode import predecode
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    OutOfOrderCore,
    Trace,
    TraceCapture,
    TraceError,
    TraceMismatch,
    predictor_id,
    replay_inorder,
    replay_ooo,
)
from repro.workloads import spec_benchmark

from tests.golden import generate


@pytest.fixture(scope="module")
def goldens():
    data = json.loads(generate.GOLDEN_PATH.read_text())
    return data["fingerprints"]


def _programs(name: str):
    """Baseline + decomposed programs at the golden-suite scale."""
    spec = spec_benchmark(name, iterations=generate.ITERATIONS)
    profile = profile_program(
        lower(spec.build(seed=generate.TRAIN_SEED)),
        max_instructions=generate.MAX_INSTRUCTIONS,
    )
    ref = spec.build(seed=generate.REF_SEED)
    return {
        "baseline": compile_baseline(ref, profile=profile).program,
        "decomposed": compile_decomposed(ref, profile=profile).program,
    }


def _capture(program, machine, max_instructions=generate.MAX_INSTRUCTIONS):
    capture = TraceCapture()
    result = InOrderCore(machine).run(
        program, max_instructions=max_instructions, capture=capture
    )
    trace = capture.finish(
        program,
        result,
        max_instructions,
        predictor_id(machine.predictor_factory),
    )
    return result, trace


@pytest.mark.parametrize("name", generate.workload_names())
def test_replay_roundtrip_matches_golden(name, goldens):
    """Capture once (width 2), serialise, reload, replay at 2/4/8:
    every replayed run must hash to the execute-driven golden."""
    for kind, program in _programs(name).items():
        result, trace = _capture(
            program, MachineConfig.paper_default(width=2)
        )
        # The capturing run itself is unperturbed by capture.
        assert (
            generate.fingerprint_run(result)
            == goldens[f"{name}/{kind}/w2"]
        )
        # Full container round-trip before any replay.
        trace = Trace.from_bytes(trace.to_bytes())
        for width in generate.WIDTHS:
            replayed = replay_inorder(
                program, trace, MachineConfig.paper_default(width=width)
            )
            assert (
                generate.fingerprint_run(replayed)
                == goldens[f"{name}/{kind}/w{width}"]
            ), f"replay diverged for {name}/{kind}/w{width}"


@pytest.mark.parametrize("name", ["mcf", "h264ref"])
def test_ooo_replay_matches_execute(name):
    """The committed stream is core-independent: an in-order capture
    replays bit-identically on the out-of-order core."""
    for kind, program in _programs(name).items():
        machine = MachineConfig.paper_default(width=4)
        _, trace = _capture(program, machine)
        trace = Trace.from_bytes(trace.to_bytes())
        executed = OutOfOrderCore(machine, window=64).run(
            program, max_instructions=generate.MAX_INSTRUCTIONS
        )
        replayed = replay_ooo(program, trace, machine, window=64)
        assert generate.fingerprint_run(replayed) == \
            generate.fingerprint_run(executed)


def test_live_predictor_replay_of_baseline_trace():
    """A baseline program's committed stream is predictor-independent,
    so one capture replays under *any* predictor -- re-simulating the
    direction predictor live -- and matches execute-driven runs."""
    program = _programs("h264ref")["baseline"]
    hybrid = MachineConfig.paper_default(width=4)
    assert hybrid.predictor_factory is HybridPredictor
    _, trace = _capture(program, hybrid)
    gshare = hybrid.with_predictor(GSharePredictor)
    executed = InOrderCore(gshare).run(
        program, max_instructions=generate.MAX_INSTRUCTIONS
    )
    replayed = replay_inorder(program, trace, gshare)
    assert generate.fingerprint_run(replayed) == \
        generate.fingerprint_run(executed)


def test_decomposed_trace_guards_predictor_identity():
    """A decomposed program's committed path depends on the predictor:
    replaying its trace under a different predictor must refuse."""
    program = _programs("bzip2")["decomposed"]
    assert predecode(program).has_decomposed
    machine = MachineConfig.paper_default(width=4)
    _, trace = _capture(program, machine)
    # Same predictor: legal (recorded-bits mode).
    replay_inorder(program, trace, machine)
    with pytest.raises(TraceMismatch):
        replay_inorder(
            program, trace, machine.with_predictor(GSharePredictor)
        )


def test_trace_rejects_wrong_program():
    # bzip2 converts branches, so its decomposed program's content
    # digest genuinely differs from the baseline's.
    programs = _programs("bzip2")
    machine = MachineConfig.paper_default(width=4)
    _, trace = _capture(programs["baseline"], machine)
    with pytest.raises(TraceMismatch):
        replay_inorder(programs["decomposed"], trace, machine)


def test_container_detects_corruption():
    program = _programs("mcf")["baseline"]
    _, trace = _capture(program, MachineConfig.paper_default(width=2))
    blob = trace.to_bytes()
    with pytest.raises(TraceError):
        Trace.from_bytes(blob[: len(blob) // 2])  # truncated
    with pytest.raises(TraceError):
        Trace.from_bytes(b"NOTTRACE" + blob[8:])  # bad magic
    flipped = bytearray(blob)
    flipped[-1] ^= 0xFF  # corrupt the last column payload
    with pytest.raises(TraceError):
        Trace.from_bytes(bytes(flipped))


def test_max_outstanding_predicts_is_size_independent():
    """The DBB occupancy statistic read off the trace: positive for a
    program that converts branches, zero for baseline."""
    programs = _programs("bzip2")
    machine = MachineConfig.paper_default(width=4)
    _, dec_trace = _capture(programs["decomposed"], machine)
    _, base_trace = _capture(programs["baseline"], machine)
    assert dec_trace.max_outstanding_predicts(
        programs["decomposed"]
    ) >= 1
    assert base_trace.max_outstanding_predicts(
        programs["baseline"]
    ) == 0
