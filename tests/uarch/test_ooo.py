"""Out-of-order reference core."""

from repro.compiler import compile_baseline, compile_decomposed
from repro.isa import Instruction, Opcode
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    OutOfOrderCore,
    execute,
)
from tests.conftest import build_diamond, tiny_program


def I(op, **kw):  # noqa: E743
    return Instruction(opcode=op, **kw)


PATTERN = [1, 1, 0, 1, 0, 0, 1, 0] * 32


class TestArchitecture:
    def test_matches_functional_executor(self):
        program = compile_baseline(build_diamond(PATTERN)).program
        ooo = OutOfOrderCore(MachineConfig.paper_default()).run(program)
        reference = execute(program)
        assert ooo.stats.halted
        assert ooo.memory_snapshot() == reference.memory_snapshot()

    def test_matches_on_decomposed_code(self):
        func = build_diamond(PATTERN)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        ooo = OutOfOrderCore(MachineConfig.paper_default()).run(dec.program)
        assert (
            ooo.memory_snapshot()
            == execute(base.program).memory_snapshot()
        )


class TestDataflowIssue:
    def test_independent_work_bypasses_a_stalled_load(self):
        """The defining difference from the in-order core: younger
        independent work issues under an older load's miss."""
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LOAD, dest=2, srcs=(1,)),  # cold DRAM miss
            I(Opcode.ADD, dest=3, srcs=(2,)),  # dependent: waits
            *[I(Opcode.ADD, dest=4 + (k % 4), srcs=(0,), imm=k)
              for k in range(16)],  # independent: should not wait
        )
        machine = MachineConfig.paper_default()
        ooo = OutOfOrderCore(machine).run(program)
        inorder = InOrderCore(machine).run(program)
        assert ooo.cycles < inorder.cycles

    def test_window_bounds_runahead(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LOAD, dest=2, srcs=(1,)),
            *[I(Opcode.ADD, dest=4 + (k % 4), srcs=(0,), imm=k)
              for k in range(200)],
        )
        machine = MachineConfig.paper_default()
        small = OutOfOrderCore(machine, window=4).run(program)
        large = OutOfOrderCore(machine, window=128).run(program)
        assert large.cycles <= small.cycles


class TestMotivation:
    def test_ooo_beats_inorder_on_stall_heavy_code(self):
        """On L1-resident straight-line code the two cores are close; give
        the OOO something to tolerate (a missing load per iteration with
        independent work behind it) and it pulls ahead."""
        from repro.workloads import BranchSiteSpec, WorkloadSpec

        spec = WorkloadSpec(
            name="stally", suite="t",
            sites=[BranchSiteSpec(bias=0.6, predictability=0.95)],
            iterations=300, cond_miss="l3", cold_loads_per_block=1,
            cold_miss="l3", cold_code_factor=0.0,
        )
        program = compile_baseline(spec.build(seed=1)).program
        machine = MachineConfig.paper_default()
        ooo = OutOfOrderCore(machine).run(program)
        inorder = InOrderCore(machine).run(program)
        assert ooo.cycles < inorder.cycles

    def test_decomposition_helps_inorder_not_ooo(self):
        """Section 1: control dependence hurts in-order schedules even
        with good prediction; the OOO already tolerates it, so the
        transformation buys the OOO essentially nothing."""
        func = build_diamond(PATTERN)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        machine = MachineConfig.paper_default()

        io_gain = (
            InOrderCore(machine).run(base.program).cycles
            / InOrderCore(machine).run(dec.program).cycles
        )
        ooo_gain = (
            OutOfOrderCore(machine).run(base.program).cycles
            / OutOfOrderCore(machine).run(dec.program).cycles
        )
        assert io_gain > ooo_gain - 0.01
