"""Pipeline-timeline visualisation."""

from repro.compiler import compile_baseline
from repro.uarch import collect_timeline, render_timeline
from repro.ir import lower
from tests.conftest import build_diamond


def program():
    return compile_baseline(build_diamond([1, 0] * 16)).program


def test_collect_timeline_rows_ordered():
    rows = collect_timeline(program(), max_instructions=500)
    assert rows
    for earlier, later in zip(rows, rows[1:]):
        assert earlier.issue <= later.issue  # in-order issue
        assert earlier.index + 1 == later.index


def test_rows_have_consistent_cycles():
    for row in collect_timeline(program(), max_instructions=500):
        assert row.fetch <= row.issue <= row.complete


def test_render_contains_markers():
    text = render_timeline(program(), count=10, max_instructions=500)
    assert "F" in text and "I" in text
    assert "cycles" in text.splitlines()[0]


def test_render_window_selection():
    text_a = render_timeline(program(), start=0, count=5,
                             max_instructions=500)
    text_b = render_timeline(program(), start=20, count=5,
                             max_instructions=500)
    assert text_a != text_b


def test_render_empty_window():
    text = render_timeline(program(), start=10_000, count=5,
                           max_instructions=500)
    assert "no instructions" in text
