"""SimStats derived-metric arithmetic."""

from repro.uarch import SimStats


def test_ipc():
    stats = SimStats(cycles=100, committed=250)
    assert stats.ipc == 2.5
    assert SimStats().ipc == 0.0


def test_mppki_counts_both_branch_kinds():
    stats = SimStats(
        committed=10_000, cond_mispredicts=15, resolve_mispredicts=5
    )
    assert stats.mppki == 2.0


def test_mppki_empty():
    assert SimStats().mppki == 0.0


def test_branch_accuracy():
    stats = SimStats(
        cond_branches=80, resolves=20,
        cond_mispredicts=8, resolve_mispredicts=2,
    )
    assert stats.branch_accuracy == 0.9
    assert SimStats().branch_accuracy == 1.0


def test_aspcb_prefers_resolves_when_present():
    stats = SimStats(
        resolves=10, cond_branches=100, resolution_stall_cycles=50
    )
    assert stats.aspcb == 5.0


def test_aspcb_falls_back_to_cond_branches():
    stats = SimStats(cond_branches=25, resolution_stall_cycles=50)
    assert stats.aspcb == 2.0
    assert SimStats().aspcb == 0.0


def test_count_opcode():
    stats = SimStats()
    stats.count_opcode("ADD")
    stats.count_opcode("ADD")
    stats.count_opcode("LOAD")
    assert stats.by_opcode == {"ADD": 2, "LOAD": 1}
