"""Sweep-fused vs per-point replay equivalence, tier-1 scale.

The fused multi-config pass (:mod:`repro.uarch.replay_multi`) claims
bit-exactness lane by lane against the per-point vectorized kernel --
which the golden suite in turn holds to the execute-driven oracle.
This file is the fast guard: for one workload per suite kind
(int2006/fp2006/int2000/fp2000), for baseline and decomposed
programs, under recorded and live prediction, one fused width-sweep
pass must reproduce the per-point replays' full ``SimStats`` and
architectural state exactly.  It also pins the dispatch contract:
``REPRO_REPLAY_MULTI=0`` (and the scalar-oracle knob beneath it)
forces per-point replay, single points and mismatched prep slices
fall back automatically, and the fused path really is the one running
otherwise (the ``regions`` prep layer only materialises when a fused
pass accepts the sweep).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.branchpred import GSharePredictor
from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_program,
)
from repro.ir import lower
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    Trace,
    TraceCapture,
    predictor_id,
    replay_inorder,
    replay_inorder_sweep,
)
from repro.workloads import BENCHMARKS, spec_benchmark

_BUDGET = 60_000
_WIDTHS = (2, 4, 8)

#: One workload per suite kind (see BENCHMARKS[...].suite).
_PICKS = ("h264ref", "bwaves", "bzip200", "ammp00")


@pytest.fixture(scope="module")
def setup():
    assert {BENCHMARKS[n].suite for n in _PICKS} == {
        "int2006", "fp2006", "int2000", "fp2000",
    }
    machine = MachineConfig.paper_default(width=4)
    programs = {}
    traces = {}
    for name in _PICKS:
        spec = spec_benchmark(name, iterations=40)
        profile = profile_program(
            lower(spec.build(seed=0)), max_instructions=_BUDGET
        )
        ref = spec.build(seed=1)
        for kind, compiled in (
            ("baseline", compile_baseline(ref, profile=profile)),
            ("decomposed", compile_decomposed(ref, profile=profile)),
        ):
            program = compiled.program
            capture = TraceCapture()
            result = InOrderCore(machine).run(
                program, max_instructions=_BUDGET, capture=capture
            )
            trace = capture.finish(
                program,
                result,
                _BUDGET,
                predictor_id(machine.predictor_factory),
            )
            programs[(name, kind)] = program
            traces[(name, kind)] = Trace.from_bytes(trace.to_bytes())
    return programs, traces


def _sweep_machines(widths=_WIDTHS):
    return [MachineConfig.paper_default(width=w) for w in widths]


def _assert_equal_runs(fused, per_point):
    assert len(fused) == len(per_point)
    for fast, slow in zip(fused, per_point):
        assert dataclasses.asdict(fast.stats) == dataclasses.asdict(
            slow.stats
        )
        assert fast.registers == slow.registers
        assert fast.memory.snapshot() == slow.memory.snapshot()


@pytest.mark.parametrize("name", _PICKS)
@pytest.mark.parametrize("kind", ["baseline", "decomposed"])
def test_fused_sweep_matches_per_point(setup, name, kind):
    programs, traces = setup
    program, trace = programs[(name, kind)], traces[(name, kind)]
    machines = _sweep_machines()
    fused, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fused"
    per_point = [
        replay_inorder(program, trace, machine) for machine in machines
    ]
    _assert_equal_runs(fused, per_point)
    # The regions layer only materialises when a fused pass ran.
    assert trace._prep is not None and len(trace._prep.regions) >= 1


def test_live_predictor_lanes_fuse(setup):
    """A baseline trace swept under a foreign predictor runs every
    lane live; the fused pass shares the live prep slice and must
    still match per-point replay exactly."""
    programs, traces = setup
    program = programs[("h264ref", "baseline")]
    trace = traces[("h264ref", "baseline")]
    machines = [
        machine.with_predictor(GSharePredictor)
        for machine in _sweep_machines()
    ]
    fused, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fused"
    _assert_equal_runs(
        fused,
        [replay_inorder(program, trace, machine) for machine in machines],
    )


def test_multi_knob_forces_per_point(setup, monkeypatch):
    programs, traces = setup
    program = programs[("h264ref", "baseline")]
    trace = traces[("h264ref", "baseline")]
    machines = _sweep_machines()
    fused, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fused"
    monkeypatch.setenv("REPRO_REPLAY_MULTI", "0")
    forced, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "per_point"
    _assert_equal_runs(fused, forced)


def test_scalar_oracle_knob_disables_fusion(setup, monkeypatch):
    """Fusion layers on the vectorized tables; forcing the scalar
    oracle must force per-point scalar replay, same answers."""
    programs, traces = setup
    program = programs[("h264ref", "decomposed")]
    trace = traces[("h264ref", "decomposed")]
    machines = _sweep_machines(widths=(2, 4))
    fused, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fused"
    monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
    forced, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "per_point"
    _assert_equal_runs(fused, forced)


def test_single_point_stays_per_point(setup):
    programs, traces = setup
    program = programs[("h264ref", "baseline")]
    trace = traces[("h264ref", "baseline")]
    runs, outcome = replay_inorder_sweep(
        program, trace, [MachineConfig.paper_default(width=4)]
    )
    assert outcome == "per_point"
    assert len(runs) == 1


def test_mismatched_slices_fall_back(setup):
    """Lanes on different prep slices (here: different BTB sizes)
    cannot share one fused kernel; the sweep declines and replays
    per-point, bit-identically."""
    programs, traces = setup
    program = programs[("h264ref", "baseline")]
    trace = traces[("h264ref", "baseline")]
    machines = [
        MachineConfig.paper_default(width=4),
        dataclasses.replace(
            MachineConfig.paper_default(width=8), btb_entries=1024
        ),
    ]
    runs, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fallback"
    _assert_equal_runs(
        runs,
        [replay_inorder(program, trace, machine) for machine in machines],
    )


def test_mixed_modes_fall_back(setup):
    """One recorded lane plus one live lane cannot fuse (different
    prediction streams); the sweep falls back per-point."""
    programs, traces = setup
    program = programs[("h264ref", "baseline")]
    trace = traces[("h264ref", "baseline")]
    machines = [
        MachineConfig.paper_default(width=4),
        MachineConfig.paper_default(width=8).with_predictor(
            GSharePredictor
        ),
    ]
    runs, outcome = replay_inorder_sweep(program, trace, machines)
    assert outcome == "fallback"
    _assert_equal_runs(
        runs,
        [replay_inorder(program, trace, machine) for machine in machines],
    )
