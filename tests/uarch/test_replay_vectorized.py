"""Vectorized-vs-scalar replay equivalence, tier-1 scale.

The golden suite already holds the default (vectorized) replay path
to the execute-driven fingerprints; this file is the fast guard that
compares the two replay implementations *directly* on a small
workload -- in-order and OOO, recorded and live prediction -- and
pins down the dispatch contract: the env knob forces the scalar
oracle, and the fast path really is the one running otherwise
(``trace._prep`` only materialises when a vectorized kernel accepts
the trace).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.branchpred import GSharePredictor
from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_program,
)
from repro.ir import lower
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    Trace,
    TraceCapture,
    TraceMismatch,
    predictor_id,
    replay_inorder,
    replay_ooo,
)
from repro.workloads import spec_benchmark

_BUDGET = 60_000


@pytest.fixture(scope="module")
def setup():
    # iterations=40 is the smallest h264ref scale whose profile is hot
    # enough to decompose branches (below it the decomposed program
    # degenerates to the baseline and the mode guards have nothing to
    # reject); the instruction budget keeps the streams tier-1 sized.
    spec = spec_benchmark("h264ref", iterations=40)
    profile = profile_program(
        lower(spec.build(seed=0)), max_instructions=_BUDGET
    )
    ref = spec.build(seed=1)
    programs = {
        "baseline": compile_baseline(ref, profile=profile).program,
        "decomposed": compile_decomposed(ref, profile=profile).program,
    }
    machine = MachineConfig.paper_default(width=4)
    traces = {}
    for kind, program in programs.items():
        capture = TraceCapture()
        result = InOrderCore(machine).run(
            program, max_instructions=_BUDGET, capture=capture
        )
        trace = capture.finish(
            program, result, _BUDGET, predictor_id(machine.predictor_factory)
        )
        traces[kind] = Trace.from_bytes(trace.to_bytes())
    return programs, traces, machine


def _scalar(monkeypatch, fn, *args, **kwargs):
    monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
    try:
        return fn(*args, **kwargs)
    finally:
        monkeypatch.delenv("REPRO_REPLAY_VECTORIZED")


@pytest.mark.parametrize("kind", ["baseline", "decomposed"])
@pytest.mark.parametrize("width", [2, 8])
def test_inorder_vectorized_matches_scalar(setup, monkeypatch, kind, width):
    programs, traces, _ = setup
    config = MachineConfig.paper_default(width=width)
    fast = replay_inorder(programs[kind], traces[kind], config)
    slow = _scalar(
        monkeypatch, replay_inorder, programs[kind], traces[kind], config
    )
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(slow.stats)
    assert fast.registers == slow.registers
    # The comparison is meaningless if the fast path declined the
    # trace and both runs were scalar: prep proves the kernel ran.
    assert traces[kind]._prep is not None


@pytest.mark.parametrize("kind", ["baseline", "decomposed"])
def test_ooo_vectorized_matches_scalar(setup, monkeypatch, kind):
    programs, traces, machine = setup
    fast = replay_ooo(programs[kind], traces[kind], machine, window=32)
    slow = _scalar(
        monkeypatch,
        replay_ooo,
        programs[kind],
        traces[kind],
        machine,
        window=32,
    )
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(slow.stats)
    assert traces[kind]._prep is not None


def test_live_predictor_replay_matches_scalar(setup, monkeypatch):
    """A baseline trace replayed under a *different* predictor runs
    the predictor live; the vectorized path batches that predictor
    pass and must still agree with the scalar loop."""
    programs, traces, _ = setup
    config = MachineConfig.paper_default(width=4).with_predictor(
        GSharePredictor
    )
    fast = replay_inorder(programs["baseline"], traces["baseline"], config)
    slow = _scalar(
        monkeypatch,
        replay_inorder,
        programs["baseline"],
        traces["baseline"],
        config,
    )
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(slow.stats)


def test_env_knob_forces_scalar_oracle(setup, monkeypatch):
    """``REPRO_REPLAY_VECTORIZED=0`` must keep the fast path fully
    out of the loop: no prep is ever attached to the trace."""
    programs, traces, machine = setup
    capture = TraceCapture()
    result = InOrderCore(machine).run(
        programs["baseline"], max_instructions=_BUDGET, capture=capture
    )
    fresh = Trace.from_bytes(
        capture.finish(
            programs["baseline"],
            result,
            _BUDGET,
            predictor_id(machine.predictor_factory),
        ).to_bytes()
    )
    monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
    replayed = replay_inorder(programs["baseline"], fresh, machine)
    assert replayed.stats == result.stats
    assert fresh._prep is None


class TestMismatchMessages:
    """`TraceMismatch` must name both identities with cleanly
    shortened digests -- no ``{...!r:.20}`` truncation that leaves an
    unbalanced quote."""

    def test_wrong_program_message(self, setup):
        programs, traces, machine = setup
        with pytest.raises(TraceMismatch) as excinfo:
            replay_inorder(programs["decomposed"], traces["baseline"], machine)
        message = str(excinfo.value)
        assert "trace program" in message
        assert "requested program" in message
        # Shortened digests keep head..tail form, no dangling quote.
        assert message.count("'") % 2 == 0
        assert ".." in message

    def test_predictor_identity_message(self, setup):
        programs, traces, _ = setup
        config = MachineConfig.paper_default(width=4).with_predictor(
            GSharePredictor
        )
        with pytest.raises(TraceMismatch) as excinfo:
            replay_inorder(programs["decomposed"], traces["decomposed"], config)
        message = str(excinfo.value)
        assert "captured under" in message
        assert "cannot replay under" in message
        # Both predictor identities appear in full, distinguishable.
        assert "HybridPredictor" in message
        assert "GSharePredictor" in message
