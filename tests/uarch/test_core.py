"""Cycle-level in-order core: timing behaviours that carry the paper."""

import pytest

from repro.branchpred import StaticTakenPredictor
from repro.isa import Instruction, Opcode, assemble
from repro.uarch import InOrderCore, MachineConfig
from tests.conftest import build_diamond, tiny_program


def I(op, **kw):  # noqa: E743
    return Instruction(opcode=op, **kw)


def run(program, config=None, **kw):
    return InOrderCore(config or MachineConfig.paper_default()).run(program, **kw)


def straightline(n, width=4):
    """n independent single-cycle adds."""
    return tiny_program(*[
        I(Opcode.ADD, dest=1 + (k % 8), srcs=(0,), imm=k) for k in range(n)
    ])


class TestIssueWidth:
    def test_width_limits_throughput(self):
        program = straightline(64)
        cycles = {}
        for width in (2, 4, 8):
            cycles[width] = run(
                program, MachineConfig.paper_default(width)
            ).cycles
        assert cycles[2] > cycles[4] >= cycles[8]

    def test_int_port_limit_binds_below_width(self):
        """8-wide but only 2 INT ports: ALU-only code issues at 2/cycle."""
        program = straightline(64)
        wide = run(program, MachineConfig.paper_default(8))
        assert wide.stats.issued == 64
        assert wide.cycles >= 64 / 2  # bounded by INT ports, not width


class TestInOrderBlocking:
    def test_head_of_line_blocking(self):
        """An instruction stalled on a load blocks everything younger,
        even independent work -- the in-order property the paper's whole
        motivation rests on."""
        dependent = tiny_program(
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LOAD, dest=2, srcs=(1,)),   # cold DRAM miss
            I(Opcode.ADD, dest=3, srcs=(2,)),    # waits ~140
            I(Opcode.ADD, dest=4, srcs=(0,)),    # independent, still waits
        )
        result = run(dependent)
        assert result.cycles > 140

    def test_load_use_stall_counted(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LOAD, dest=2, srcs=(1,)),
            I(Opcode.ADD, dest=3, srcs=(2,)),
        )
        assert run(program).stats.load_use_stall_cycles > 0


class TestBranches:
    def loop_program(self, iterations):
        return assemble(
            [
                I(Opcode.LI, dest=1, imm=0),
                I(Opcode.LI, dest=2, imm=iterations),
                I(Opcode.ADD, dest=1, srcs=(1,), imm=1),  # head
                I(Opcode.CMP_LT, dest=3, srcs=(1, 2)),
                I(Opcode.BNZ, srcs=(3,), target="head", branch_id=0),
                I(Opcode.HALT),
            ],
            {"head": 2},
        )

    def test_predictable_loop_few_mispredicts(self):
        result = run(self.loop_program(200))
        assert result.stats.cond_branches == 200
        assert result.stats.cond_mispredicts <= 5

    def test_mispredicts_cost_cycles(self):
        """Static always-taken on a 50/50 branch vs the hybrid on an
        always-taken loop: mispredicts must show up as cycles."""
        program = self.loop_program(200)
        good = run(program)
        bad_config = MachineConfig.paper_default().with_predictor(
            lambda: StaticTakenPredictor(taken=False)
        )
        bad = run(program, bad_config)
        assert bad.stats.cond_mispredicts > good.stats.cond_mispredicts
        assert bad.cycles > good.cycles

    def test_taken_redirect_bubbles(self):
        result = run(self.loop_program(64))
        assert result.stats.taken_redirects >= 60


class TestDecomposedBranches:
    def decomposed_program(self):
        """predict -> resolve confirm/divert micro-program."""
        return assemble(
            [
                I(Opcode.LI, dest=1, imm=1),  # cond: "taken"
                I(Opcode.PREDICT, target="t", branch_id=0),
                # predicted-not-taken path:
                I(Opcode.RESOLVE_NZ, srcs=(1,), target="fixc",
                  predicted_dir=False, branch_id=0),
                I(Opcode.LI, dest=2, imm=10),
                I(Opcode.HALT),
                # t: predicted-taken path
                I(Opcode.RESOLVE_Z, srcs=(1,), target="fixb",
                  predicted_dir=True, branch_id=0),
                I(Opcode.LI, dest=3, imm=30),
                I(Opcode.HALT),
                # fixc:
                I(Opcode.LI, dest=4, imm=40),
                I(Opcode.HALT),
                # fixb:
                I(Opcode.LI, dest=5, imm=50),
                I(Opcode.HALT),
            ],
            {"t": 5, "fixc": 8, "fixb": 10},
        )

    def test_predict_consumes_no_issue_slot(self):
        result = run(self.decomposed_program())
        assert result.stats.predicts == 1
        # issued excludes the predict.
        assert result.stats.issued < result.stats.committed

    def test_resolve_divert_redirects_to_correction(self):
        """Force a not-taken prediction; cond is 1 (taken) -> divert."""
        config = MachineConfig.paper_default().with_predictor(
            lambda: StaticTakenPredictor(taken=False)
        )
        result = run(self.decomposed_program(), config)
        assert result.stats.resolves == 1
        assert result.stats.resolve_mispredicts == 1
        assert result.register(4) == 40  # correction path ran

    def test_resolve_confirm_falls_through(self):
        """Force a taken prediction; cond is 1 -> confirmed, no divert."""
        config = MachineConfig.paper_default().with_predictor(
            lambda: StaticTakenPredictor(taken=True)
        )
        result = run(self.decomposed_program(), config)
        assert result.stats.resolve_mispredicts == 0
        assert result.register(3) == 30  # predicted-taken path completed

    def test_dbb_trains_predictor_across_iterations(self):
        """Looping decomposed branch with constant outcome: after warmup
        the predict instruction should steer correctly (no diverts)."""
        program = assemble(
            [
                I(Opcode.LI, dest=1, imm=1),  # cond always "taken"
                I(Opcode.LI, dest=6, imm=0),  # i
                I(Opcode.LI, dest=7, imm=100),
                I(Opcode.PREDICT, target="t", branch_id=0),  # head
                I(Opcode.RESOLVE_NZ, srcs=(1,), target="t_corr",
                  predicted_dir=False, branch_id=0),
                I(Opcode.JMP, target="merge"),
                I(Opcode.RESOLVE_Z, srcs=(1,), target="nt_corr",  # t:
                  predicted_dir=True, branch_id=0),
                I(Opcode.JMP, target="merge"),
                I(Opcode.JMP, target="merge"),  # t_corr:
                I(Opcode.JMP, target="merge"),  # nt_corr:
                I(Opcode.ADD, dest=6, srcs=(6,), imm=1),  # merge:
                I(Opcode.CMP_LT, dest=8, srcs=(6, 7)),
                I(Opcode.BNZ, srcs=(8,), target="head", branch_id=9),
                I(Opcode.HALT),
            ],
            {"head": 3, "t": 6, "t_corr": 8, "nt_corr": 9, "merge": 10},
        )
        result = run(program)
        assert result.stats.predicts == 100
        assert result.stats.resolves == 100
        # Only cold-start diverts; the DBB-trained predictor locks on.
        assert result.stats.resolve_mispredicts <= 5


class TestStatsCoherence:
    def test_diamond_stats(self):
        from repro.ir import lower

        func = build_diamond([1, 0] * 64)
        result = run(lower(func))
        stats = result.stats
        assert stats.halted
        assert stats.committed == stats.fetched
        assert stats.loads > 0 and stats.stores > 0
        assert 0 < stats.ipc <= 4
        assert stats.cond_branches == 2 * 128  # site + latch per iteration

    def test_trace_hook_called(self):
        rows = []
        program = straightline(10)
        run(program, trace=lambda *args: rows.append(args))
        assert len(rows) == 10  # HALT and nothing else excluded

    def test_pc_escape_raises(self):
        from repro.uarch import SimulationError

        program = assemble([I(Opcode.LI, dest=1, imm=0)], {})
        with pytest.raises(SimulationError):
            run(program)
