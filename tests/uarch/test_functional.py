"""Timing-free functional executor semantics."""

import pytest

from repro.isa import Instruction, Opcode, assemble
from repro.uarch import (
    SimulationError,
    always_not_taken,
    always_taken,
    collect_branch_trace,
    execute,
)
from tests.conftest import tiny_program


def I(op, **kw):  # noqa: E743 - terse test helper
    return Instruction(opcode=op, **kw)


class TestArithmetic:
    def test_li_add_sub(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=10),
            I(Opcode.ADD, dest=2, srcs=(1,), imm=5),
            I(Opcode.SUB, dest=3, srcs=(2, 1)),
        )
        result = execute(program)
        assert result.registers[2] == 15
        assert result.registers[3] == 5

    def test_mul_div(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=7),
            I(Opcode.MUL, dest=2, srcs=(1,), imm=6),
            I(Opcode.DIV, dest=3, srcs=(2,), imm=5),
            I(Opcode.DIV, dest=4, srcs=(2,), imm=0),  # defined: 0
        )
        result = execute(program)
        assert result.registers[2] == 42
        assert result.registers[3] == 8
        assert result.registers[4] == 0

    def test_div_truncates_toward_zero(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=-7),
            I(Opcode.DIV, dest=2, srcs=(1,), imm=2),
        )
        assert execute(program).registers[2] == -3

    def test_logical_and_shifts(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=0b1100),
            I(Opcode.AND, dest=2, srcs=(1,), imm=0b1010),
            I(Opcode.OR, dest=3, srcs=(1,), imm=0b0011),
            I(Opcode.XOR, dest=4, srcs=(1,), imm=0b1111),
            I(Opcode.SHL, dest=5, srcs=(1,), imm=2),
            I(Opcode.SHR, dest=6, srcs=(1,), imm=2),
        )
        result = execute(program)
        assert result.registers[2] == 0b1000
        assert result.registers[3] == 0b1111
        assert result.registers[4] == 0b0011
        assert result.registers[5] == 0b110000
        assert result.registers[6] == 0b11

    def test_fp_ops(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=1.5),
            I(Opcode.FADD, dest=2, srcs=(1,), imm=2.5),
            I(Opcode.FMUL, dest=3, srcs=(2, 2)),
        )
        result = execute(program)
        assert result.registers[2] == 4.0
        assert result.registers[3] == 16.0

    def test_compares(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=3),
            I(Opcode.CMP_LT, dest=2, srcs=(1,), imm=5),
            I(Opcode.CMP_GE, dest=3, srcs=(1,), imm=5),
            I(Opcode.CMP_EQ, dest=4, srcs=(1,), imm=3),
        )
        result = execute(program)
        assert result.registers[2] == 1
        assert result.registers[3] == 0
        assert result.registers[4] == 1


class TestMemoryAndControl:
    def test_load_store(self):
        program = tiny_program(
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LI, dest=2, imm=77),
            I(Opcode.STORE, srcs=(2, 1), imm=5),
            I(Opcode.LOAD, dest=3, srcs=(1,), imm=5),
        )
        result = execute(program)
        assert result.registers[3] == 77
        assert dict(result.memory_snapshot())[105] == 77

    def test_branch_taken_and_not(self):
        program = assemble(
            [
                I(Opcode.LI, dest=1, imm=1),
                I(Opcode.BNZ, srcs=(1,), target="skip"),
                I(Opcode.LI, dest=2, imm=99),  # skipped
                I(Opcode.LI, dest=3, imm=5),
                I(Opcode.HALT),
            ],
            {"skip": 3},
        )
        result = execute(program)
        assert result.registers[2] == 0
        assert result.registers[3] == 5

    def test_call_ret(self):
        program = assemble(
            [
                I(Opcode.CALL, dest=63, target="fn"),
                I(Opcode.HALT),
                I(Opcode.LI, dest=1, imm=42),  # fn:
                I(Opcode.RET, srcs=(63,)),
            ],
            {"fn": 2},
        )
        result = execute(program)
        assert result.halted
        assert result.registers[1] == 42

    def test_predict_respects_policy(self):
        program = assemble(
            [
                I(Opcode.PREDICT, target="taken", branch_id=0),
                I(Opcode.LI, dest=1, imm=1),  # not-taken path
                I(Opcode.HALT),
                I(Opcode.LI, dest=2, imm=2),  # taken:
                I(Opcode.HALT),
            ],
            {"taken": 3},
        )
        assert execute(program, predict_policy=always_taken).registers[2] == 2
        assert execute(program, predict_policy=always_not_taken).registers[1] == 1

    def test_resolve_diverts_on_mismatch(self):
        program = assemble(
            [
                I(Opcode.LI, dest=1, imm=1),
                I(Opcode.RESOLVE_NZ, srcs=(1,), target="fix",
                  predicted_dir=False, branch_id=0),
                I(Opcode.LI, dest=2, imm=10),  # confirmed path
                I(Opcode.HALT),
                I(Opcode.LI, dest=3, imm=20),  # fix:
                I(Opcode.HALT),
            ],
            {"fix": 4},
        )
        result = execute(program)
        assert result.registers[3] == 20
        assert result.resolve_mispredicts == 1

    def test_pc_escape_raises(self):
        program = assemble([I(Opcode.LI, dest=1, imm=0)], {})  # no halt
        with pytest.raises(SimulationError):
            execute(program)

    def test_max_instructions_caps_infinite_loop(self):
        program = assemble([I(Opcode.JMP, target=0)], {})
        result = execute(program, max_instructions=100)
        assert not result.halted
        assert result.instructions_executed == 100


class TestBranchTrace:
    def test_trace_records_ids_and_outcomes(self):
        from tests.conftest import build_diamond
        from repro.ir import lower

        func = build_diamond([1, 0, 1, 1])
        trace = collect_branch_trace(lower(func))
        site0 = [taken for bid, taken in trace if bid == 0]
        assert site0 == [True, False, True, True]
