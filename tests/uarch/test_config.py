"""Machine configuration defaults must reproduce the paper's Table 1."""

import pytest

from repro.branchpred import HybridPredictor, TagePredictor
from repro.uarch import MachineConfig


class TestTable1:
    def test_default_width_options(self):
        for width in (2, 4, 8):
            assert MachineConfig.paper_default(width).width == width

    def test_front_end(self):
        config = MachineConfig.paper_default()
        assert config.front_end_stages == 5
        assert config.fetch_buffer_entries == 32

    def test_functional_units(self):
        config = MachineConfig.paper_default()
        assert config.mem_ports == 2  # 2x LD/ST
        assert config.int_ports == 2  # 2x INT/SIMD-permute
        assert config.fp_ports == 4  # 4x 64-bit SIMD/FP

    def test_predictor_structures(self):
        config = MachineConfig.paper_default()
        assert config.btb_entries == 4096
        assert config.ras_entries == 64
        predictor = config.predictor_factory()
        assert isinstance(predictor, HybridPredictor)
        assert predictor.storage_bits == 24 * 1024 * 8

    def test_dbb_entries(self):
        assert MachineConfig.paper_default().dbb_entries == 16

    def test_cache_hierarchy(self):
        h = MachineConfig.paper_default().hierarchy
        assert h.l1d_bytes == 32 * 1024 and h.l1d_assoc == 8
        assert h.l1i_bytes == 32 * 1024 and h.l1i_assoc == 4
        assert h.l2_bytes == 256 * 1024 and h.l2_assoc == 16
        assert h.l3_bytes == 4 * 1024 * 1024 and h.l3_assoc == 32
        assert h.line_bytes == 64
        assert h.l1_latency == 4
        assert h.l2_latency == 12
        assert h.l3_latency == 25
        assert h.dram_latency == 140
        assert h.miss_buffer_entries == 64

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(width=3)


class TestVariants:
    def test_with_predictor(self):
        config = MachineConfig.paper_default().with_predictor(TagePredictor)
        assert isinstance(config.predictor_factory(), TagePredictor)
        # Original untouched.
        assert isinstance(
            MachineConfig.paper_default().predictor_factory(), HybridPredictor
        )

    def test_with_icache_bytes(self):
        small = MachineConfig.paper_default().with_icache_bytes(24 * 1024)
        assert small.hierarchy.l1i_bytes == 24 * 1024
        assert small.hierarchy.l1d_bytes == 32 * 1024  # unchanged
