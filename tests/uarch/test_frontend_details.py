"""Front-end details: BTB bubbles, I-cache misses, fetch grouping."""

from repro.isa import Instruction, Opcode, assemble
from repro.uarch import InOrderCore, MachineConfig
from tests.conftest import tiny_program


def I(op, **kw):  # noqa: E743
    return Instruction(opcode=op, **kw)


def run(program, config=None, **kw):
    return InOrderCore(config or MachineConfig.paper_default()).run(
        program, **kw
    )


class TestBTB:
    def loop(self, iterations):
        return assemble(
            [
                I(Opcode.LI, dest=1, imm=0),
                I(Opcode.LI, dest=2, imm=iterations),
                I(Opcode.ADD, dest=1, srcs=(1,), imm=1),  # head
                I(Opcode.CMP_LT, dest=3, srcs=(1, 2)),
                I(Opcode.BNZ, srcs=(3,), target="head", branch_id=0),
                I(Opcode.HALT),
            ],
            {"head": 2},
        )

    def test_btb_miss_bubble_only_on_first_taken_visit(self):
        result = run(self.loop(100))
        # One cold BTB miss; subsequent taken redirects hit.
        assert result.stats.btb_miss_bubbles <= 3
        assert result.stats.taken_redirects > 90


class TestICache:
    def test_large_code_footprint_misses(self):
        # ~3000 instructions = ~12 KB of code: several line misses.
        body = [I(Opcode.ADD, dest=1 + (k % 8), srcs=(0,), imm=k)
                for k in range(3000)]
        result = run(tiny_program(*body))
        assert result.stats.icache_misses > 100

    def test_small_loop_warm_icache(self):
        program = assemble(
            [
                I(Opcode.LI, dest=1, imm=0),
                I(Opcode.LI, dest=2, imm=200),
                I(Opcode.ADD, dest=1, srcs=(1,), imm=1),
                I(Opcode.CMP_LT, dest=3, srcs=(1, 2)),
                I(Opcode.BNZ, srcs=(3,), target=2, branch_id=0),
                I(Opcode.HALT),
            ],
            {},
        )
        result = run(program)
        assert result.stats.icache_misses <= 2


class TestFetchGrouping:
    def test_narrow_fetch_paces_straightline_code(self):
        body = [I(Opcode.NOP) for _ in range(64)]
        slow = run(tiny_program(*body), MachineConfig.paper_default(2))
        fast = run(tiny_program(*body), MachineConfig.paper_default(8))
        # NOPs never issue, so cycles are fetch-bound: 2-wide needs more.
        assert slow.cycles > fast.cycles

    def test_fetch_buffer_gates_runahead(self):
        """With a stalled head instruction, fetch cannot run more than
        fetch_buffer entries ahead."""
        from dataclasses import replace

        body = [
            I(Opcode.LI, dest=1, imm=100),
            I(Opcode.LOAD, dest=2, srcs=(1,)),  # DRAM-cold
            I(Opcode.ADD, dest=3, srcs=(2,)),
        ] + [I(Opcode.ADD, dest=4 + (k % 4), srcs=(0,), imm=k)
             for k in range(64)]
        wide = MachineConfig.paper_default()
        tight = replace(wide, fetch_buffer_entries=4)
        result_tight = run(tiny_program(*body), tight)
        result_wide = run(tiny_program(*body), wide)
        assert result_tight.stats.halted and result_wide.stats.halted
        assert result_tight.cycles >= result_wide.cycles
