"""Regenerate the simulator golden fingerprints.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate.py

The goldens pin the *architectural and stats output* of the timing
simulator: for every SPEC-like workload, at widths 2/4/8, for both the
baseline and the decomposed program, we fingerprint the full
``SimStats``, the final register file, and the memory snapshot.  Any
performance work on the simulator (pre-decode, dispatch tables,
incremental predictor folding...) must keep every fingerprint
bit-identical -- regenerating this file is only legitimate for a change
that *intends* to alter simulated behaviour.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent / "sim_goldens.json"

#: Keep the golden runs small enough for tier-1 while still executing
#: thousands of dynamic instructions per workload.
ITERATIONS = 40
MAX_INSTRUCTIONS = 200_000
WIDTHS = (2, 4, 8)
REF_SEED = 1
TRAIN_SEED = 0


def workload_names():
    from repro.workloads import BENCHMARKS

    return sorted(BENCHMARKS)


def fingerprint_run(result) -> str:
    """Stable digest of SimStats + registers + memory snapshot."""
    import dataclasses
    import hashlib

    blob = json.dumps(
        {
            "stats": dataclasses.asdict(result.stats),
            "registers": [repr(v) for v in result.registers],
            "memory": [
                (a, repr(v)) for a, v in result.memory.snapshot()
            ],
            "faults_suppressed": result.memory.faults_suppressed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def golden_runs(name: str):
    """Yield ((name, kind, width), fingerprint) for one workload."""
    from repro.compiler import (
        compile_baseline,
        compile_decomposed,
        profile_program,
    )
    from repro.ir import lower
    from repro.uarch import InOrderCore, MachineConfig
    from repro.workloads import spec_benchmark

    spec = spec_benchmark(name, iterations=ITERATIONS)
    profile = profile_program(
        lower(spec.build(seed=TRAIN_SEED)),
        max_instructions=MAX_INSTRUCTIONS,
    )
    ref = spec.build(seed=REF_SEED)
    programs = {
        "baseline": compile_baseline(ref, profile=profile).program,
        "decomposed": compile_decomposed(ref, profile=profile).program,
    }
    for kind, program in programs.items():
        for width in WIDTHS:
            core = InOrderCore(MachineConfig.paper_default(width=width))
            result = core.run(
                program, max_instructions=MAX_INSTRUCTIONS
            )
            yield (name, kind, width), fingerprint_run(result)


def generate() -> dict:
    goldens = {}
    for name in workload_names():
        for (bench, kind, width), digest in golden_runs(name):
            goldens[f"{bench}/{kind}/w{width}"] = digest
    return goldens


def main() -> int:
    goldens = {
        "config": {
            "iterations": ITERATIONS,
            "max_instructions": MAX_INSTRUCTIONS,
            "widths": list(WIDTHS),
            "ref_seed": REF_SEED,
            "train_seed": TRAIN_SEED,
        },
        "fingerprints": generate(),
    }
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1) + "\n")
    print(
        f"wrote {len(goldens['fingerprints'])} fingerprints "
        f"to {GOLDEN_PATH}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
