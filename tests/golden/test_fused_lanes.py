"""Sweep-fused replay lanes pinned to the simulator goldens.

``tests/uarch/test_replay_multi.py`` proves fused == per-point replay;
this file closes the loop to the *execute-driven* oracle: a fused
width sweep over a captured trace must land, lane by lane, on the same
``sim_goldens.json`` fingerprints the golden suite pins for the
execute path.  One workload per suite kind keeps it tier-1 sized; the
full 330-fingerprint sweep stays with ``test_bit_exactness.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_program,
)
from repro.ir import lower
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    Trace,
    TraceCapture,
    predictor_id,
    replay_inorder_sweep,
)
from repro.workloads import spec_benchmark

from . import generate

#: One workload per suite kind (int2006/fp2006/int2000/fp2000).
_PICKS = ("h264ref", "bwaves", "bzip200", "ammp00")


@pytest.fixture(scope="module")
def goldens():
    return json.loads(generate.GOLDEN_PATH.read_text())["fingerprints"]


@pytest.mark.parametrize("name", _PICKS)
def test_fused_lanes_match_goldens(name, goldens):
    spec = spec_benchmark(name, iterations=generate.ITERATIONS)
    profile = profile_program(
        lower(spec.build(seed=generate.TRAIN_SEED)),
        max_instructions=generate.MAX_INSTRUCTIONS,
    )
    ref = spec.build(seed=generate.REF_SEED)
    programs = {
        "baseline": compile_baseline(ref, profile=profile).program,
        "decomposed": compile_decomposed(ref, profile=profile).program,
    }
    capture_machine = MachineConfig.paper_default(width=4)
    for kind, program in programs.items():
        capture = TraceCapture()
        result = InOrderCore(capture_machine).run(
            program,
            max_instructions=generate.MAX_INSTRUCTIONS,
            capture=capture,
        )
        trace = Trace.from_bytes(
            capture.finish(
                program,
                result,
                generate.MAX_INSTRUCTIONS,
                predictor_id(capture_machine.predictor_factory),
            ).to_bytes()
        )
        machines = [
            MachineConfig.paper_default(width=w) for w in generate.WIDTHS
        ]
        runs, outcome = replay_inorder_sweep(program, trace, machines)
        assert outcome == "fused"
        for width, run in zip(generate.WIDTHS, runs):
            key = f"{name}/{kind}/w{width}"
            assert generate.fingerprint_run(run) == goldens[key], (
                f"fused replay lane diverged from golden for {key}"
            )
