"""EXPERIMENTS.md rendering from a results JSON."""

from repro.experiments.write_report import render


def sample_data():
    def row(name, spd):
        return dict(
            name=name, spd=spd, pbc=25.0, pdih=8.0, alpbb=3.0,
            aspcb=40.0, phi=80.0, mppki=5.0, piscs=5.0,
            best=spd + 0.5, paper_spd=spd * 2,
        )

    suite = lambda names: dict(  # noqa: E731
        rows=[row(n, 5.0 + i) for i, n in enumerate(names)],
        geomean=6.0,
        paper_geomean=12.0,
    )
    return {
        "int2006": suite(["h264ref", "omnetpp"]),
        "fp2006": suite(["wrf"]),
        "int2000": suite(["vortex00"]),
        "fp2000": suite(["art00"]),
        "sensitivity": {
            "points": [],
            "slopes": {"astar": 0.28, "mcf": 0.33},
        },
        "issue_increase": [("h264ref", 1.2), ("wrf", 0.1)],
        "icache": {
            "slow": [], "piscs": [], "shadow": [],
            "geo_slow": 0.1, "mean_piscs": 4.0,
        },
        "motivation": [
            dict(b="gcc", inorder=6.7, ooo=-0.1, ooo_base=160.0)
        ],
        "quadrants": [
            dict(q="unbiased-predictable", pred=0.0, dec=9.7,
                 winner="decompose")
        ],
    }


def test_render_contains_all_sections():
    text = render(sample_data())
    for heading in (
        "Headline speedups",
        "Table 2 characterisation",
        "predictor sensitivity",
        "issued-instruction overhead",
        "code size and I-cache",
        "in-order vs out-of-order",
        "Figure 1 prescriptions",
        "Conceptual figures",
        "Known deviations",
    ):
        assert heading in text, heading


def test_rows_sorted_by_speedup():
    text = render(sample_data())
    # omnetpp (6.0) should appear before h264ref (5.0) in the table.
    assert text.index("| omnetpp |") < text.index("| h264ref |")


def test_optional_sections_omitted_gracefully():
    data = sample_data()
    del data["motivation"]
    del data["quadrants"]
    text = render(data)
    assert "in-order vs out-of-order" not in text
    assert "Figure 1 prescriptions" not in text


def test_geomeans_reported():
    text = render(sample_data())
    assert "**6.0**" in text and "**12.0**" in text
