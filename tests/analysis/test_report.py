"""Table/figure text rendering."""

from repro.analysis import render_bars, render_series, render_table


class TestTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["Name", "X"], [["alpha", "1.0"], ["b", "22.5"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "X" in lines[1]
        assert "alpha" in text and "22.5" in text

    def test_column_widths_accommodate_data(self):
        text = render_table(["N"], [["longvalue"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("longvalue")


class TestBars:
    def test_bars_scale_to_peak(self):
        text = render_bars([("a", 10.0), ("b", 5.0)])
        line_a, line_b = text.splitlines()
        assert line_a.count("#") > line_b.count("#")

    def test_negative_values_signed(self):
        text = render_bars([("a", -3.0), ("b", 3.0)])
        assert "-" in text.splitlines()[0]

    def test_empty(self):
        assert render_bars([], title="t") == "t"


class TestSeries:
    def test_two_series_rendered(self):
        text = render_series(
            {"bias": [0.9, 0.8], "pred": [0.95, 0.9]}, title="fig"
        )
        assert "bias" in text and "pred" in text
        assert "0.9500" in text

    def test_custom_points(self):
        text = render_series({"s": [1.0]}, points=["r1"])
        assert "r1" in text
