"""Metric extraction for Table 2 columns."""

import math

from repro.analysis import (
    BenchmarkMetrics,
    geomean_speedup,
    hoistable_fraction,
    issued_increase_percent,
    pdih_percent,
    phi_percent,
    speedup_percent,
    static_alpbb,
)
from repro.compiler import compile_baseline, compile_decomposed
from repro.uarch import InOrderCore, MachineConfig
from tests.conftest import build_diamond


class TestPureHelpers:
    def test_geomean_speedup(self):
        assert geomean_speedup([10.0, 10.0]) == math.isclose(10.0, 10.0) * 10 or True
        value = geomean_speedup([10.0, 10.0])
        assert abs(value - 10.0) < 1e-9

    def test_geomean_of_mixed_signs(self):
        value = geomean_speedup([21.0, -10.0])
        assert abs(value - (math.sqrt(1.21 * 0.9) - 1) * 100) < 1e-9

    def test_geomean_empty(self):
        assert geomean_speedup([]) == 0.0

    def test_static_alpbb_counts_loads(self):
        func = build_diamond([1, 0] * 8, hoistable_loads=2)
        # A has 3 loads (cond + 2), B and C have 2 each; other blocks 0.
        value = static_alpbb(func)
        assert 0.5 < value < 3.0

    def test_hoistable_fraction(self):
        func = build_diamond([1, 0] * 8)
        assert hoistable_fraction(func, "B") > 0.0
        assert hoistable_fraction(func, "M") == 0.0  # empty block

    def test_phi_percent_over_candidates(self):
        func = build_diamond([1, 0] * 8)
        value = phi_percent(func, ["A"])
        assert 0.0 < value <= 100.0


class TestRunDerived:
    def _runs(self):
        func = build_diamond([1, 1, 0, 1, 0, 0, 1, 0] * 24)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        machine = MachineConfig.paper_default()
        rb = InOrderCore(machine).run(base.program)
        rd = InOrderCore(machine).run(dec.program)
        return base, dec, rb, rd

    def test_speedup_and_issue_increase(self):
        base, dec, rb, rd = self._runs()
        spd = speedup_percent(rb, rd)
        assert -50 < spd < 200
        inc = issued_increase_percent(rb, rd)
        assert inc > 0  # hoisted wrong-path work + fix-ups issue extra

    def test_pdih_positive_after_conversion(self):
        base, dec, rb, rd = self._runs()
        assert dec.transform.converted == 1
        assert pdih_percent(rd) > 0
        assert pdih_percent(rb) == 0

    def test_benchmark_metrics_row(self):
        base, dec, rb, rd = self._runs()
        metrics = BenchmarkMetrics.from_runs("diamond", base, dec, rb, rd)
        row = metrics.row()
        assert row[0] == "diamond"
        assert len(row) == 9
        assert metrics.pbc == 100.0
        assert metrics.piscs > 0
