"""FunctionBuilder emission checks."""

import pytest

from repro.ir import FunctionBuilder
from repro.isa import Opcode


def test_arithmetic_emission():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    assert a.add(1, 2, 3).opcode is Opcode.ADD
    assert a.sub(1, 2, imm=5).imm == 5
    assert a.mul(1, 2, 3).srcs == (2, 3)
    assert a.fadd(1, 2, 3).opcode is Opcode.FADD
    assert a.cmp_ge(1, 2, imm=0).opcode is Opcode.CMP_GE
    assert a.xor(1, 1, imm=3).opcode is Opcode.XOR
    assert len(a.block) == 6


def test_memory_emission():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    ld = a.load(1, 2, offset=4, speculative=True)
    assert ld.opcode is Opcode.LOAD and ld.speculative and ld.imm == 4
    st = a.store(1, 2, offset=8)
    assert st.opcode is Opcode.STORE and st.srcs == (1, 2)


def test_terminator_emission():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    br = a.bnz(1, target="t", fallthrough="f2", branch_id=3)
    assert br.branch_id == 3
    assert a.block.terminator is br
    assert a.block.fallthrough == "f2"


def test_predict_resolve_emission():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    p = a.predict(target="t", fallthrough="nt", branch_id=1)
    assert p.opcode is Opcode.PREDICT and p.branch_id == 1

    b = fb.block("b")
    r = b.resolve_nz(5, target="fix", fallthrough="go", branch_id=1,
                     predicted_dir=False)
    assert r.opcode is Opcode.RESOLVE_NZ
    assert r.predicted_dir is False
    assert b.block.fallthrough == "go"


def test_call_ret_emission():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    c = a.call(target="fn", link=63, fallthrough="after")
    assert c.opcode is Opcode.CALL and c.dest == 63
    b = fb.block("b")
    r = b.ret(63)
    assert r.opcode is Opcode.RET and r.srcs == (63,)


def test_fresh_branch_ids_increment():
    fb = FunctionBuilder("f")
    assert fb.fresh_branch_id() == 0
    assert fb.fresh_branch_id() == 1


def test_data_helper():
    fb = FunctionBuilder("f")
    fb.data(10, [1, 2, 3])
    assert fb.function.data == {10: 1, 11: 2, 12: 3}


def test_build_validates():
    from repro.ir import IRError

    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.jmp("nowhere")
    with pytest.raises(IRError):
        fb.build()
