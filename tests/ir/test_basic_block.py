"""Basic-block invariants and successor semantics."""

import pytest

from repro.ir import BasicBlock, IRError
from repro.isa import Instruction, Opcode


def add():
    return Instruction(opcode=Opcode.ADD, dest=1, srcs=(2,), imm=1)


class TestAppend:
    def test_appends_straightline(self):
        block = BasicBlock(name="b")
        block.append(add())
        assert len(block) == 1

    def test_rejects_terminator_in_body(self):
        block = BasicBlock(name="b")
        with pytest.raises(IRError):
            block.append(Instruction(opcode=Opcode.JMP, target="x"))

    def test_set_terminator_rejects_straightline(self):
        block = BasicBlock(name="b")
        with pytest.raises(IRError):
            block.set_terminator(add())


class TestSuccessors:
    def test_fallthrough_only(self):
        block = BasicBlock(name="b", fallthrough="next")
        assert block.successors() == ["next"]

    def test_halt_has_none(self):
        block = BasicBlock(name="b")
        block.set_terminator(Instruction(opcode=Opcode.HALT))
        assert block.successors() == []

    def test_jmp(self):
        block = BasicBlock(name="b")
        block.set_terminator(Instruction(opcode=Opcode.JMP, target="t"))
        assert block.successors() == ["t"]

    def test_conditional_branch_taken_first(self):
        block = BasicBlock(name="b", fallthrough="f")
        block.set_terminator(
            Instruction(opcode=Opcode.BNZ, srcs=(1,), target="t")
        )
        assert block.successors() == ["t", "f"]

    def test_predict_has_both_paths(self):
        block = BasicBlock(name="b")
        block.set_terminator(
            Instruction(opcode=Opcode.PREDICT, target="taken", branch_id=0),
            fallthrough="not_taken",
        )
        assert block.successors() == ["taken", "not_taken"]

    def test_resolve_has_divert_and_confirm(self):
        block = BasicBlock(name="b", fallthrough="confirm")
        block.set_terminator(
            Instruction(
                opcode=Opcode.RESOLVE_NZ, srcs=(1,), target="correct",
                predicted_dir=False,
            )
        )
        assert block.successors() == ["correct", "confirm"]

    def test_ret_has_none(self):
        block = BasicBlock(name="b")
        block.set_terminator(Instruction(opcode=Opcode.RET, srcs=(63,)))
        assert block.successors() == []

    def test_call_returns_to_fallthrough(self):
        block = BasicBlock(name="b", fallthrough="after")
        block.set_terminator(
            Instruction(opcode=Opcode.CALL, dest=63, target="callee")
        )
        assert block.successors() == ["callee", "after"]


class TestIteration:
    def test_instructions_include_terminator(self):
        block = BasicBlock(name="b")
        block.append(add())
        block.set_terminator(Instruction(opcode=Opcode.HALT))
        ops = [inst.opcode for inst in block.instructions()]
        assert ops == [Opcode.ADD, Opcode.HALT]
