"""Liveness analysis: the legality oracle for speculative renaming."""

from repro.ir import (
    FunctionBuilder,
    analyze_liveness,
    block_use_def,
    defs,
    registers_referenced,
    registers_written,
    uses,
)
from repro.isa import Instruction, Opcode


def add(dest, *srcs, imm=None):
    return Instruction(opcode=Opcode.ADD, dest=dest, srcs=srcs, imm=imm)


class TestUseDef:
    def test_uses_and_defs(self):
        i = add(3, 1, 2)
        assert uses(i) == frozenset({1, 2})
        assert defs(i) == frozenset({3})

    def test_store_has_no_def(self):
        store = Instruction(opcode=Opcode.STORE, srcs=(1, 2))
        assert defs(store) == frozenset()
        assert uses(store) == frozenset({1, 2})

    def test_block_use_def_upward_exposure(self):
        # r1 is defined before use -> not upward-exposed; r2 is.
        insts = [add(1, 2), add(3, 1)]
        used, defined = block_use_def(insts)
        assert used == {2}
        assert defined == {1, 3}


def diamond():
    """A defines r10 used in C only; B defines r11 read in merge."""
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(10, 7)
    a.li(1, 1)
    a.bnz(1, target="c", fallthrough="b", branch_id=0)
    b = fb.block("b")
    b.li(11, 8)
    b.jmp("m")
    c = fb.block("c")
    c.add(11, 10, imm=0)  # uses r10
    c.block.fallthrough = "m"
    m = fb.block("m")
    m.add(12, 11, imm=0)  # uses r11 from either side
    m.halt()
    return fb.build()


class TestLiveness:
    def test_value_live_into_taken_path_only(self):
        func = diamond()
        result = analyze_liveness(func)
        assert 10 in result.live_in["c"]
        assert 10 not in result.live_in["b"]

    def test_merged_value_live_out_of_both_sides(self):
        func = diamond()
        result = analyze_liveness(func)
        assert 11 in result.live_out["b"]
        assert 11 in result.live_out["c"]
        assert 11 in result.live_in["m"]

    def test_nothing_live_out_of_exit(self):
        func = diamond()
        result = analyze_liveness(func)
        assert result.live_out["m"] == frozenset()

    def test_loop_liveness_reaches_fixed_point(self):
        fb = FunctionBuilder("loop")
        init = fb.block("init")
        init.li(1, 0)
        init.li(2, 10)
        init.block.fallthrough = "body"
        body = fb.block("body")
        body.add(1, 1, imm=1)  # r1 live around the loop
        body.cmp_lt(3, 1, 2)  # r2 live around the loop
        body.bnz(3, target="body", fallthrough="done", branch_id=0)
        done = fb.block("done")
        done.halt()
        func = fb.build()
        result = analyze_liveness(func)
        assert 1 in result.live_in["body"]
        assert 2 in result.live_in["body"]
        assert 1 in result.live_out["body"]


class TestWholeFunction:
    def test_registers_written(self):
        func = diamond()
        assert registers_written(func) == {10, 1, 11, 12}

    def test_registers_referenced_includes_reads(self):
        func = diamond()
        refs = registers_referenced(func)
        assert {10, 1, 11, 12} <= refs
