"""Dependence DAG construction and hoist-legality analysis."""

from hypothesis import given, strategies as st

from repro.ir import available_above, build_depgraph
from repro.isa import Instruction, Opcode

ALL_REGS = set(range(64))


def add(dest, *srcs, imm=None):
    return Instruction(opcode=Opcode.ADD, dest=dest, srcs=srcs, imm=imm)


def load(dest, base, offset=0):
    return Instruction(opcode=Opcode.LOAD, dest=dest, srcs=(base,), imm=offset)


def store(src, base, offset=0):
    return Instruction(opcode=Opcode.STORE, srcs=(src, base), imm=offset)


class TestEdges:
    def test_raw(self):
        g = build_depgraph([add(1, 2), add(3, 1)])
        assert 1 in g.successors(0)

    def test_war(self):
        # inst0 reads r1, inst1 writes r1 -> 1 must stay after 0.
        g = build_depgraph([add(2, 1), add(1, 3)])
        assert 1 in g.successors(0)

    def test_waw(self):
        g = build_depgraph([add(1, 2), add(1, 3)])
        assert 1 in g.successors(0)

    def test_independent_ops_unordered(self):
        g = build_depgraph([add(1, 2), add(3, 4)])
        assert g.successors(0) == set()
        assert g.predecessors(1) == set()

    def test_loads_reorder_freely(self):
        g = build_depgraph([load(1, 10), load(2, 10)])
        assert g.successors(0) == set()

    def test_store_orders_against_later_load(self):
        g = build_depgraph([store(1, 10), load(2, 11)])
        assert 1 in g.successors(0)

    def test_load_then_store_ordered(self):
        g = build_depgraph([load(2, 11), store(1, 10)])
        assert 1 in g.successors(0)

    def test_store_store_ordered(self):
        g = build_depgraph([store(1, 10), store(2, 11)])
        assert 1 in g.successors(0)


class TestCriticalPath:
    def test_chain_lengths(self):
        body = [load(1, 10), add(2, 1), add(3, 2)]
        g = build_depgraph(body)
        lengths = g.critical_path_lengths()
        assert lengths == [6, 2, 1]  # load(4)+add(1)+add(1)

    def test_roots(self):
        g = build_depgraph([add(1, 2), add(3, 1), add(4, 5)])
        assert set(g.roots()) == {0, 2}


class TestAvailableAbove:
    def test_simple_prefix(self):
        body = [load(1, 10), add(2, 1), store(2, 10)]
        assert available_above(body, ALL_REGS) == [0, 1]

    def test_store_ends_upper_portion(self):
        """Fig. 5c: the hoistable region is strictly the upper portion."""
        body = [load(1, 10), store(1, 10), add(2, 3)]
        assert available_above(body, ALL_REGS) == [0]

    def test_unavailable_source_blocks(self):
        # r1 defined by a skipped instruction (not in defined_above).
        body = [add(1, 2), add(3, 1)]
        assert available_above(body, {2}) == [0, 1]
        assert available_above(body, set()) == []

    def test_chained_availability(self):
        body = [add(1, 2), add(3, 1), add(4, 3)]
        assert available_above(body, {2}) == [0, 1, 2]

    def test_war_with_skipped_instruction_blocks(self):
        # inst0 unavailable (reads r9 which is not defined above); inst1
        # writes r9, which inst0 reads -> hoisting inst1 would break inst0.
        body = [add(1, 9), add(9, 2)]
        result = available_above(body, {2})
        assert 1 not in result

    def test_waw_with_skipped_instruction_blocks(self):
        # inst0 writes r5 but is unavailable; inst1 also writes r5.
        body = [add(5, 9), add(5, 2)]
        result = available_above(body, {2})
        assert 1 not in result

    def test_read_of_skipped_write_blocks(self):
        # inst0 unavailable, writes r5; inst1 reads r5 -> must not hoist.
        body = [add(5, 9), add(6, 5)]
        assert available_above(body, {2, 5}) == []

    @given(st.lists(st.tuples(st.integers(1, 6), st.integers(1, 6)),
                    min_size=0, max_size=12))
    def test_hoisted_set_is_dependence_closed(self, pairs):
        """Property: every source of a hoisted instruction is defined
        above or by an earlier hoisted instruction."""
        body = [add(d, s) for d, s in pairs]
        defined_above = {1, 2, 3}
        chosen = available_above(body, set(defined_above))
        produced = set(defined_above)
        for index in chosen:
            for src in body[index].srcs:
                assert src in produced
            produced.add(body[index].dest)
