"""Function-level structure: layout, insertion, validation, cloning."""

import pytest

from repro.ir import BasicBlock, Function, FunctionBuilder, IRError
from repro.isa import Instruction, Opcode


def simple_function():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.block.fallthrough = "b"
    b = fb.block("b")
    b.halt()
    return fb.build()


class TestLayout:
    def test_entry_is_first_block(self):
        func = simple_function()
        assert func.entry.name == "a"

    def test_layout_order(self):
        func = simple_function()
        assert func.layout() == ["a", "b"]
        assert func.layout_index("b") == 1

    def test_add_block_after(self):
        func = simple_function()
        func.add_block(BasicBlock(name="mid", fallthrough="b"), after="a")
        assert func.layout() == ["a", "mid", "b"]

    def test_add_block_after_missing_raises(self):
        func = simple_function()
        with pytest.raises(IRError):
            func.add_block(BasicBlock(name="x"), after="zzz")

    def test_duplicate_block_raises(self):
        func = simple_function()
        with pytest.raises(IRError):
            func.add_block(BasicBlock(name="a"))

    def test_fresh_block_name(self):
        func = simple_function()
        assert func.fresh_block_name("c") == "c"
        assert func.fresh_block_name("a") == "a.1"
        func.add_block(BasicBlock(name="a.1", fallthrough="b"))
        assert func.fresh_block_name("a") == "a.2"


class TestValidate:
    def test_valid_function_passes(self):
        simple_function().validate()

    def test_missing_successor_fails(self):
        func = simple_function()
        func.block("a").fallthrough = "nowhere"
        with pytest.raises(IRError):
            func.validate()

    def test_block_without_exit_fails(self):
        func = Function(name="f")
        func.add_block(BasicBlock(name="only"))
        with pytest.raises(IRError):
            func.validate()


class TestClone:
    def test_clone_is_structurally_equal(self):
        func = simple_function()
        clone = func.clone()
        assert clone.layout() == func.layout()
        assert clone.static_instruction_count() == func.static_instruction_count()

    def test_clone_blocks_are_independent(self):
        func = simple_function()
        clone = func.clone()
        clone.block("a").append(
            Instruction(opcode=Opcode.ADD, dest=2, srcs=(1,), imm=1)
        )
        assert len(func.block("a")) != len(clone.block("a"))

    def test_clone_data_is_independent(self):
        func = simple_function()
        func.data[5] = 1
        clone = func.clone()
        clone.data[5] = 2
        assert func.data[5] == 1


class TestCounts:
    def test_static_instruction_count(self):
        func = simple_function()
        assert func.static_instruction_count() == 2  # li + halt

    def test_instructions_iterates_everything(self):
        func = simple_function()
        assert len(list(func.instructions())) == 2
