"""CFG analyses: edges, reachability, loops, forward-branch tests."""

from repro.ir import (
    FunctionBuilder,
    back_edges,
    conditional_branch_blocks,
    dominators,
    is_forward_branch,
    predecessor_map,
    reachable_blocks,
    successor_map,
)


def diamond_with_loop():
    """entry -> head -> {left,right} -> merge -> head (loop) -> exit."""
    fb = FunctionBuilder("g")
    entry = fb.block("entry")
    entry.li(1, 0)
    entry.block.fallthrough = "head"
    head = fb.block("head")
    head.cmp_lt(2, 1, imm=5)
    head.bnz(2, target="right", fallthrough="left", branch_id=0)
    left = fb.block("left")
    left.add(3, 3, imm=1)
    left.jmp("merge")
    right = fb.block("right")
    right.add(3, 3, imm=2)
    right.block.fallthrough = "merge"
    merge = fb.block("merge")
    merge.add(1, 1, imm=1)
    merge.cmp_lt(4, 1, imm=10)
    merge.bnz(4, target="head", fallthrough="exit", branch_id=1)
    exit_block = fb.block("exit")
    exit_block.halt()
    return fb.build()


class TestEdges:
    def test_successor_map(self):
        func = diamond_with_loop()
        succs = successor_map(func)
        assert succs["head"] == ["right", "left"]
        assert succs["merge"] == ["head", "exit"]
        assert succs["exit"] == []

    def test_predecessor_map(self):
        func = diamond_with_loop()
        preds = predecessor_map(func)
        assert sorted(preds["merge"]) == ["left", "right"]
        assert sorted(preds["head"]) == ["entry", "merge"]


class TestReachability:
    def test_all_reachable(self):
        func = diamond_with_loop()
        assert reachable_blocks(func) == set(func.layout())

    def test_dead_block_excluded(self):
        func = diamond_with_loop()
        from repro.ir import BasicBlock
        from repro.isa import Instruction, Opcode

        dead = BasicBlock(name="dead")
        dead.set_terminator(Instruction(opcode=Opcode.HALT))
        func.add_block(dead)
        assert "dead" not in reachable_blocks(func)


class TestLoops:
    def test_back_edge_found(self):
        func = diamond_with_loop()
        assert ("merge", "head") in back_edges(func)

    def test_forward_edges_are_not_back_edges(self):
        func = diamond_with_loop()
        edges = back_edges(func)
        assert ("head", "right") not in edges
        assert ("entry", "head") not in edges


class TestForwardBranch:
    def test_diamond_branch_is_forward(self):
        func = diamond_with_loop()
        assert is_forward_branch(func, func.block("head"))

    def test_loop_latch_is_backward(self):
        func = diamond_with_loop()
        assert not is_forward_branch(func, func.block("merge"))

    def test_non_branch_block(self):
        func = diamond_with_loop()
        assert not is_forward_branch(func, func.block("left"))

    def test_conditional_branch_blocks(self):
        func = diamond_with_loop()
        assert sorted(conditional_branch_blocks(func)) == ["head", "merge"]


class TestDominators:
    def test_entry_dominates_everything(self):
        func = diamond_with_loop()
        dom = dominators(func)
        for name in func.layout():
            assert "entry" in dom[name]

    def test_branch_sides_do_not_dominate_merge(self):
        func = diamond_with_loop()
        dom = dominators(func)
        assert "left" not in dom["merge"]
        assert "right" not in dom["merge"]
        assert "head" in dom["merge"]
