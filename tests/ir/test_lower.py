"""Lowering: layout, fall-through adjacency, and JMP materialisation."""

import pytest

from repro.ir import FunctionBuilder, IRError, lower
from repro.isa import Opcode
from repro.uarch import execute


def test_adjacent_fallthrough_needs_no_jmp():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.block.fallthrough = "b"
    b = fb.block("b")
    b.halt()
    program = lower(fb.build())
    assert [i.opcode for i in program.instructions] == [Opcode.LI, Opcode.HALT]


def test_nonadjacent_fallthrough_materialises_jmp():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.block.fallthrough = "c"  # skips b in layout
    b = fb.block("b")
    b.li(2, 2)
    b.block.fallthrough = "c"
    c = fb.block("c")
    c.halt()
    program = lower(fb.build())
    ops = [i.opcode for i in program.instructions]
    assert Opcode.JMP in ops
    # Execution still reaches HALT without touching block b's LI.
    result = execute(program)
    assert result.halted
    assert result.registers[2] == 0


def test_conditional_branch_fallthrough_jmp():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 0)
    a.bnz(1, target="t", fallthrough="f2", branch_id=0)
    t = fb.block("t")
    t.halt()
    f2 = fb.block("f2")
    f2.halt()
    program = lower(fb.build())
    # not-taken must reach f2 even though t is adjacent.
    result = execute(program)
    assert result.halted


def test_labels_point_to_block_starts():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.li(2, 2)
    a.block.fallthrough = "b"
    b = fb.block("b")
    b.halt()
    program = lower(fb.build())
    assert program.labels["a"] == 0
    assert program.labels["b"] == 2


def test_data_segment_propagates():
    fb = FunctionBuilder("f")
    fb.data(100, [7, 8])
    a = fb.block("a")
    a.halt()
    program = lower(fb.build())
    assert program.data[100] == 7
    assert program.data[101] == 8


def test_validate_catches_dangling_fallthrough():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.block.fallthrough = "ghost"
    with pytest.raises(IRError):
        lower(fb.function)


def test_final_block_without_exit_rejected():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)  # no terminator, no fallthrough
    with pytest.raises(IRError):
        lower(fb.function)


def test_program_name_matches_function():
    fb = FunctionBuilder("myfunc")
    a = fb.block("a")
    a.halt()
    assert lower(fb.build()).name == "myfunc"
