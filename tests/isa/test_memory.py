"""Functional memory: faults, speculative suppression, snapshots."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Memory, MemoryFault


class TestBasics:
    def test_default_zero(self):
        assert Memory().load(100) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store(7, 99)
        assert mem.load(7) == 99

    def test_len_counts_written_words(self):
        mem = Memory()
        mem.store(1, 1)
        mem.store(2, 2)
        assert len(mem) == 2

    def test_load_block(self):
        mem = Memory()
        mem.load_block(10, [5, 6, 7])
        assert [mem.load(10 + i) for i in range(3)] == [5, 6, 7]


class TestFaults:
    def test_load_below_zero_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(-1)

    def test_load_beyond_limit_faults(self):
        mem = Memory(limit=16)
        with pytest.raises(MemoryFault):
            mem.load(16)

    def test_store_beyond_limit_faults(self):
        mem = Memory(limit=16)
        with pytest.raises(MemoryFault):
            mem.store(99, 1)

    def test_speculative_load_suppresses_fault(self):
        """Section 2.2: non-faulting loads return a defined value instead
        of trapping, which is what makes hoisting above the resolution
        point legal."""
        mem = Memory(limit=16)
        assert mem.load(1 << 30, speculative=True) == 0
        assert mem.faults_suppressed == 1

    def test_speculative_load_of_valid_address_reads_normally(self):
        mem = Memory()
        mem.store(3, 8)
        assert mem.load(3, speculative=True) == 8
        assert mem.faults_suppressed == 0


class TestSnapshot:
    def test_snapshot_sorted_and_zero_free(self):
        mem = Memory()
        mem.store(5, 50)
        mem.store(2, 20)
        mem.store(9, 0)  # explicit zero is dropped
        assert mem.snapshot() == ((2, 20), (5, 50))

    @given(st.dictionaries(st.integers(0, 1000), st.integers(-100, 100),
                           max_size=20))
    def test_snapshot_matches_contents(self, contents):
        mem = Memory()
        for addr, value in contents.items():
            mem.store(addr, value)
        snapshot = dict(mem.snapshot())
        for addr, value in contents.items():
            if value != 0:
                assert snapshot[addr] == value
            else:
                assert addr not in snapshot
