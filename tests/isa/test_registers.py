"""Register file and 64-bit wrap semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    FIRST_TEMP_REGISTER,
    LINK_REGISTER,
    NUM_REGISTERS,
    RegisterFile,
    wrap_int,
)


class TestWrapInt:
    def test_small_values_unchanged(self):
        assert wrap_int(0) == 0
        assert wrap_int(123) == 123
        assert wrap_int(-5) == -5

    def test_wraps_at_63_bits(self):
        assert wrap_int(1 << 63) == -(1 << 63)
        assert wrap_int((1 << 63) - 1) == (1 << 63) - 1
        assert wrap_int(1 << 64) == 0

    @given(st.integers())
    def test_always_in_signed_64_range(self, value):
        wrapped = wrap_int(value)
        assert -(1 << 63) <= wrapped < (1 << 63)

    @given(st.integers(), st.integers())
    def test_addition_homomorphic_mod_2_64(self, a, b):
        assert wrap_int(wrap_int(a) + wrap_int(b)) == wrap_int(a + b)


class TestRegisterFile:
    def test_zero_initialised(self):
        regs = RegisterFile()
        assert all(regs.read(i) == 0 for i in range(NUM_REGISTERS))

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(5, 42)
        assert regs.read(5) == 42

    def test_write_wraps_integers(self):
        regs = RegisterFile()
        regs.write(1, 1 << 64)
        assert regs.read(1) == 0

    def test_floats_pass_through(self):
        regs = RegisterFile()
        regs.write(2, 3.5)
        assert regs.read(2) == 3.5

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        regs.write(0, 9)
        snap = regs.snapshot()
        regs.write(0, 10)
        assert snap[0] == 9

    def test_load_many(self):
        regs = RegisterFile()
        regs.load_many([1, 2, 3])
        assert [regs.read(i) for i in range(3)] == [1, 2, 3]

    def test_out_of_range_raises(self):
        regs = RegisterFile()
        with pytest.raises(IndexError):
            regs.read(NUM_REGISTERS)

    def test_register_space_layout(self):
        assert 0 < FIRST_TEMP_REGISTER < LINK_REGISTER < NUM_REGISTERS
        # At least a dozen speculation temporaries are reserved.
        assert LINK_REGISTER - FIRST_TEMP_REGISTER >= 12
