"""Textual assembly: print/parse round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    AsmSyntaxError,
    Instruction,
    Opcode,
    assemble,
    program_to_text,
    text_to_program,
)
from repro.uarch import execute


def roundtrip(program):
    return text_to_program(program_to_text(program), name=program.name)


class TestPrinting:
    def test_memory_operand_syntax(self):
        program = assemble(
            [
                Instruction(opcode=Opcode.LOAD, dest=1, srcs=(2,), imm=16),
                Instruction(opcode=Opcode.STORE, srcs=(3, 4), imm=8),
                Instruction(opcode=Opcode.HALT),
            ],
            {},
        )
        text = program_to_text(program)
        assert "load r1, [r2+16]" in text
        assert "store r3, [r4+8]" in text

    def test_annotations_rendered(self):
        program = assemble(
            [
                Instruction(opcode=Opcode.LOAD, dest=1, srcs=(2,), imm=0,
                            speculative=True, hoisted=True),
                Instruction(opcode=Opcode.RESOLVE_NZ, srcs=(5,), target=0,
                            branch_id=3, predicted_dir=True),
                Instruction(opcode=Opcode.HALT),
            ],
            {},
        )
        text = program_to_text(program)
        assert "load+" in text and "!" in text
        assert "b3" in text and "pT" in text

    def test_data_directives(self):
        program = assemble(
            [Instruction(opcode=Opcode.HALT)], {}, data={7: 42, 9: 1.5}
        )
        text = program_to_text(program)
        assert ".data 7 42" in text
        assert ".data 9 1.5" in text


class TestParsing:
    def test_labels_resolve(self):
        text = """
        start:
            jmp start
        """
        program = text_to_program(text)
        assert program.instructions[0].target == 0

    def test_comments_ignored(self):
        program = text_to_program("; comment\n    halt ; trailing\n")
        assert program.instructions[0].opcode is Opcode.HALT

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AsmSyntaxError):
            text_to_program("    frobnicate r1\n")

    def test_bad_immediate_raises(self):
        with pytest.raises(AsmSyntaxError):
            text_to_program("    add r1, r2, #lots\n")

    def test_duplicate_label_raises(self):
        with pytest.raises(AsmSyntaxError):
            text_to_program("a:\na:\n    halt\n")

    def test_malformed_data_raises(self):
        with pytest.raises(AsmSyntaxError):
            text_to_program(".data 5\n")


class TestRoundTrip:
    def test_decomposed_program_roundtrips_exactly(self):
        from repro.compiler import compile_baseline, compile_decomposed
        from repro.workloads import omnetpp_carray_add

        func = omnetpp_carray_add(iterations=64)
        baseline = compile_baseline(func)
        decomposed = compile_decomposed(func, profile=baseline.profile)
        recovered = roundtrip(decomposed.program)
        assert recovered.instructions == decomposed.program.instructions
        assert recovered.data == decomposed.program.data
        assert (
            execute(recovered).memory_snapshot()
            == execute(decomposed.program).memory_snapshot()
        )

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from([Opcode.ADD, Opcode.XOR, Opcode.MUL, Opcode.SEL,
                             Opcode.CMP_LT, Opcode.MOV]),
            min_size=1,
            max_size=10,
        ),
        regs=st.lists(st.integers(0, 63), min_size=3, max_size=3),
    )
    def test_arbitrary_alu_programs_roundtrip(self, ops, regs):
        insts = []
        for op in ops:
            srcs = tuple(regs[1:]) if op is not Opcode.SEL else (
                regs[0], regs[1], regs[2]
            )
            insts.append(
                Instruction(opcode=op, dest=regs[0], srcs=srcs, imm=7)
            )
        insts.append(Instruction(opcode=Opcode.HALT))
        program = assemble(insts, {})
        assert roundtrip(program).instructions == program.instructions
