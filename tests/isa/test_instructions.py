"""Instruction classification, latency, and control-flow helpers."""

import pytest

from repro.isa import (
    FuClass,
    INSTRUCTION_BYTES,
    Instruction,
    LATENCY,
    Opcode,
    branch_taken,
    resolve_diverts,
)


def inst(op, **kw):
    return Instruction(opcode=op, **kw)


class TestClassification:
    def test_alu_ops(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.MUL,
                   Opcode.MOV, Opcode.LI, Opcode.CMP_LT):
            assert inst(op, dest=1).is_alu

    def test_fp_ops(self):
        for op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            assert inst(op, dest=1).is_fp
            assert not inst(op, dest=1).is_alu

    def test_memory_ops(self):
        load = inst(Opcode.LOAD, dest=1, srcs=(2,))
        store = inst(Opcode.STORE, srcs=(1, 2))
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem and not store.is_load

    def test_control_ops(self):
        assert inst(Opcode.BNZ, srcs=(1,), target=0).is_cond_branch
        assert inst(Opcode.BZ, srcs=(1,), target=0).is_cond_branch
        assert inst(Opcode.RESOLVE_NZ, srcs=(1,), target=0).is_resolve
        assert inst(Opcode.RESOLVE_Z, srcs=(1,), target=0).is_resolve
        assert inst(Opcode.PREDICT, target=0).is_predict
        for op in (Opcode.JMP, Opcode.CALL, Opcode.RET, Opcode.PREDICT,
                   Opcode.BNZ, Opcode.RESOLVE_Z):
            assert inst(op, srcs=(1,), target=0).is_control

    def test_terminators_include_halt(self):
        assert inst(Opcode.HALT).is_terminator
        assert inst(Opcode.JMP, target=0).is_terminator
        assert not inst(Opcode.ADD, dest=1, srcs=(2,)).is_terminator

    def test_resolve_is_not_cond_branch(self):
        # A RESOLVE is always predicted not-taken, never via the BTB path.
        assert not inst(Opcode.RESOLVE_NZ, srcs=(1,), target=0).is_cond_branch


class TestFuClasses:
    def test_predict_consumes_no_backend_slot(self):
        assert inst(Opcode.PREDICT, target=0).fu_class is FuClass.NONE

    def test_nop_and_halt(self):
        assert inst(Opcode.NOP).fu_class is FuClass.NONE
        assert inst(Opcode.HALT).fu_class is FuClass.NONE

    def test_mem_class(self):
        assert inst(Opcode.LOAD, dest=1, srcs=(2,)).fu_class is FuClass.MEM
        assert inst(Opcode.STORE, srcs=(1, 2)).fu_class is FuClass.MEM

    def test_fp_class(self):
        assert inst(Opcode.FMUL, dest=1, srcs=(2, 3)).fu_class is FuClass.FP

    def test_branches_use_int_ports(self):
        assert inst(Opcode.BNZ, srcs=(1,), target=0).fu_class is FuClass.INT
        assert inst(Opcode.RESOLVE_Z, srcs=(1,), target=0).fu_class is FuClass.INT


class TestLatency:
    def test_defaults_and_overrides(self):
        assert inst(Opcode.ADD, dest=1, srcs=(2,)).latency == 1
        assert inst(Opcode.MUL, dest=1, srcs=(2,)).latency == 3
        assert inst(Opcode.DIV, dest=1, srcs=(2,)).latency == 12
        assert inst(Opcode.FADD, dest=1, srcs=(2,)).latency == 4
        assert inst(Opcode.FDIV, dest=1, srcs=(2,)).latency == 12

    def test_load_static_latency_is_l1_hit(self):
        # The scheduler's priority function relies on this.
        assert LATENCY[Opcode.LOAD] == 4
        assert inst(Opcode.LOAD, dest=1, srcs=(2,)).latency == 4

    def test_instruction_bytes(self):
        assert INSTRUCTION_BYTES == 4


class TestControlHelpers:
    @pytest.mark.parametrize("value,expected", [(0, False), (1, True), (-3, True)])
    def test_bnz(self, value, expected):
        assert branch_taken(Opcode.BNZ, value) is expected

    @pytest.mark.parametrize("value,expected", [(0, True), (1, False)])
    def test_bz(self, value, expected):
        assert branch_taken(Opcode.BZ, value) is expected

    def test_branch_taken_rejects_non_branches(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADD, 1)

    @pytest.mark.parametrize("value,expected", [(0, False), (1, True)])
    def test_resolve_nz(self, value, expected):
        assert resolve_diverts(Opcode.RESOLVE_NZ, value) is expected

    @pytest.mark.parametrize("value,expected", [(0, True), (1, False)])
    def test_resolve_z(self, value, expected):
        assert resolve_diverts(Opcode.RESOLVE_Z, value) is expected

    def test_resolve_diverts_rejects_non_resolves(self):
        with pytest.raises(ValueError):
            resolve_diverts(Opcode.BNZ, 1)


class TestImmutability:
    def test_with_target_returns_new_instruction(self):
        original = inst(Opcode.JMP, target="label")
        resolved = original.with_target(42)
        assert original.target == "label"
        assert resolved.target == 42

    def test_frozen(self):
        with pytest.raises(Exception):
            inst(Opcode.ADD, dest=1).dest = 2

    def test_reads_and_writes(self):
        i = inst(Opcode.ADD, dest=3, srcs=(1, 2))
        assert i.reads() == (1, 2)
        assert i.writes() == 3

    def test_str_includes_annotations(self):
        i = inst(
            Opcode.LOAD, dest=1, srcs=(2,), imm=4,
            speculative=True, hoisted=True, branch_id=7,
        )
        text = str(i)
        assert "load" in text and "+" in text and "h" in text and "b7" in text
