"""Program container: label resolution, size accounting, disassembly."""

import pytest

from repro.isa import (
    AssemblyError,
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    assemble,
)


def jmp(target):
    return Instruction(opcode=Opcode.JMP, target=target)


def halt():
    return Instruction(opcode=Opcode.HALT)


def add(dest, src, imm):
    return Instruction(opcode=Opcode.ADD, dest=dest, srcs=(src,), imm=imm)


class TestAssemble:
    def test_resolves_labels(self):
        program = assemble([jmp("end"), add(1, 1, 1), halt()], {"end": 2})
        assert program.instructions[0].target == 2

    def test_numeric_targets_pass_through(self):
        program = assemble([jmp(2), add(1, 1, 1), halt()], {})
        assert program.instructions[0].target == 2

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble([jmp("missing")], {})

    def test_data_segment_copied(self):
        data = {10: 5}
        program = assemble([halt()], {}, data=data)
        data[10] = 99
        assert program.data[10] == 5

    def test_static_size(self):
        program = assemble([add(1, 1, 1), halt()], {})
        assert program.static_size_bytes == 2 * INSTRUCTION_BYTES
        assert len(program) == 2


class TestDisassembly:
    def test_labels_shown(self):
        program = assemble(
            [add(1, 1, 1), jmp("loop"), halt()], {"loop": 0}
        )
        text = program.disassemble()
        assert "loop:" in text
        assert "-> loop" in text

    def test_label_at(self):
        program = assemble([add(1, 1, 1), halt()], {"start": 0})
        assert program.label_at(0) == "start"
        assert program.label_at(1) is None

    def test_windowed_disassembly(self):
        program = assemble([add(1, 1, i) for i in range(10)] + [halt()], {})
        text = program.disassemble(start=2, count=3)
        assert "#2" in text and "#4" in text and "#5" not in text
