"""The Decomposed Branch Buffer (Section 4, Figure 7)."""

import pytest

from repro.branchpred import HybridPredictor, Prediction
from repro.core import DecomposedBranchBuffer


def prediction(taken=True):
    return Prediction(taken=taken, meta=())


class RecordingPredictor:
    """Captures deferred updates for inspection."""

    def __init__(self):
        self.updates = []

    def update(self, pred, taken):
        self.updates.append((pred, taken))


class TestFifo:
    def test_insert_advances_tail(self):
        dbb = DecomposedBranchBuffer(entries=16)
        first = dbb.insert(prediction(), branch_id=1)
        second = dbb.insert(prediction(), branch_id=2)
        assert second == (first + 1) % 16
        assert dbb.tail == second

    def test_tail_wraps_circularly(self):
        dbb = DecomposedBranchBuffer(entries=4)
        indices = [dbb.insert(prediction(), branch_id=i) for i in range(6)]
        assert indices[4] == indices[0]
        assert dbb.read(indices[5]).branch_id == 5

    def test_read_returns_entry(self):
        dbb = DecomposedBranchBuffer()
        index = dbb.insert(prediction(taken=False), branch_id=9)
        entry = dbb.read(index)
        assert entry.branch_id == 9
        assert entry.prediction.taken is False

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DecomposedBranchBuffer(entries=10)

    def test_paper_default_size(self):
        assert DecomposedBranchBuffer().entries == 16


class TestResolve:
    def test_update_reaches_predictor_with_stored_meta(self):
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        stored = prediction(taken=True)
        index = dbb.insert(stored, branch_id=3)
        correct = dbb.resolve(index, actual_taken=True, predictor=rec)
        assert correct is True
        assert rec.updates == [(stored, True)]

    def test_mispredict_detected(self):
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        index = dbb.insert(prediction(taken=True), branch_id=3)
        assert dbb.resolve(index, actual_taken=False, predictor=rec) is False

    def test_real_predictor_trains_through_dbb(self):
        """End-to-end: deferred DBB updates train a real predictor."""
        predictor = HybridPredictor()
        dbb = DecomposedBranchBuffer()
        correct = 0
        for _ in range(200):
            pred = predictor.lookup(5)
            index = dbb.insert(pred, branch_id=5)
            correct += dbb.resolve(index, True, predictor)
        assert correct > 180  # converges to always-taken

    def test_occupancy_tracked(self):
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        a = dbb.insert(prediction(), 1)
        b = dbb.insert(prediction(), 2)
        assert dbb.max_outstanding == 2
        dbb.resolve(b, True, rec)
        dbb.resolve(a, True, rec)
        assert dbb.max_outstanding == 2


class TestExceptionalControlFlow:
    def test_invalidate_all_suppresses_updates(self):
        """Section 4: on interrupts/exceptions, entries can be invalidated
        so stale metadata never corrupts the predictor."""
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        index = dbb.insert(prediction(), branch_id=1)
        dbb.invalidate_all()
        assert dbb.resolve(index, True, rec) is True
        assert rec.updates == []
        assert dbb.suppressed_updates == 1

    def test_resolve_of_never_written_entry_suppressed(self):
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        assert dbb.resolve(7, True, rec) is True
        assert rec.updates == []

    def test_recover_tail(self):
        """Non-decomposed mispredicts restore the tail pointer the same
        way branch history is restored."""
        dbb = DecomposedBranchBuffer()
        index = dbb.insert(prediction(), 1)
        dbb.insert(prediction(), 2)
        dbb.recover_tail(index)
        assert dbb.tail == index

    def test_fresh_insert_after_invalidation_is_valid(self):
        dbb = DecomposedBranchBuffer()
        rec = RecordingPredictor()
        dbb.insert(prediction(), 1)
        dbb.invalidate_all()
        index = dbb.insert(prediction(), 2)
        dbb.resolve(index, True, rec)
        assert len(rec.updates) == 1
