"""Selection heuristic and the Figure 1 taxonomy."""

from repro.branchpred import BranchStats
from repro.core import (
    BranchClass,
    SelectionConfig,
    classify_branch,
    select_candidates,
)
from tests.conftest import build_diamond


def stats(bias, predictability, executions=1000, taken_majority=True):
    taken = round(bias * executions) if taken_majority else round(
        (1 - bias) * executions
    )
    return BranchStats(
        branch_id=0,
        executions=executions,
        taken=taken,
        correct=round(predictability * executions),
    )


class TestTaxonomy:
    def test_highly_biased_goes_superblock(self):
        assert classify_branch(stats(0.97, 0.98)) is BranchClass.SUPERBLOCK

    def test_unbiased_predictable_is_our_contribution(self):
        assert classify_branch(stats(0.60, 0.92)) is BranchClass.DECOMPOSE

    def test_unbiased_unpredictable_is_predication(self):
        assert classify_branch(stats(0.55, 0.56)) is BranchClass.PREDICATE

    def test_biased_but_unpredictable_is_rare(self):
        assert classify_branch(stats(0.95, 0.5)) is BranchClass.RARE

    def test_gap_below_5_percent_not_decomposed(self):
        """The paper's threshold: predictability must exceed bias by 5%."""
        assert classify_branch(stats(0.80, 0.83)) is BranchClass.PREDICATE
        assert classify_branch(stats(0.80, 0.86)) is BranchClass.DECOMPOSE

    def test_threshold_configurable(self):
        config = SelectionConfig(min_exposed_predictability=0.10)
        assert classify_branch(stats(0.80, 0.86), config) is BranchClass.PREDICATE


class TestSelectCandidates:
    def make_profile(self, func, bias, pred):
        branch_ids = set()
        for block in func.blocks.values():
            term = block.terminator
            if term is not None and term.is_cond_branch:
                branch_ids.add(term.branch_id)
        return {bid: stats(bias, pred) for bid in branch_ids}

    def test_selects_decompose_class_forward_branch(self):
        func = build_diamond([1, 0] * 50)
        profile = self.make_profile(func, bias=0.6, pred=0.92)
        report = select_candidates(func, profile)
        assert len(report.candidates) == 1
        assert report.candidates[0].block == "A"

    def test_loop_branch_never_selected(self):
        """Footnote 1: backward branches are excluded."""
        func = build_diamond([1, 0] * 50)
        profile = self.make_profile(func, bias=0.6, pred=0.92)
        report = select_candidates(func, profile)
        selected_blocks = {c.block for c in report.candidates}
        assert "tail" not in selected_blocks

    def test_counts_forward_branches(self):
        func = build_diamond([1, 0] * 50)
        profile = self.make_profile(func, bias=0.6, pred=0.92)
        report = select_candidates(func, profile)
        assert report.forward_branches == 1
        assert report.conditional_branches == 2  # diamond + loop latch
        assert report.pbc == 100.0

    def test_biased_branch_not_selected(self):
        func = build_diamond([1] * 100)
        profile = self.make_profile(func, bias=0.97, pred=0.99)
        report = select_candidates(func, profile)
        assert report.candidates == []

    def test_low_execution_count_filtered(self):
        func = build_diamond([1, 0] * 50)
        profile = {
            bid: stats(0.6, 0.92, executions=4)
            for bid in self.make_profile(func, 0.6, 0.92)
        }
        report = select_candidates(func, profile)
        assert report.candidates == []

    def test_unprofiled_branch_skipped(self):
        func = build_diamond([1, 0] * 50)
        report = select_candidates(func, {})
        assert report.candidates == []

    def test_structural_eligibility_shared_successor(self):
        """A branch whose successors have other predecessors must not be
        converted (trimming their prefix would corrupt other paths)."""
        from repro.ir import FunctionBuilder

        fb = FunctionBuilder("g")
        a = fb.block("a")
        a.li(1, 1)
        a.bnz(1, target="c", fallthrough="b", branch_id=0)
        b = fb.block("b")
        b.jmp("c")  # second predecessor of c
        c = fb.block("c")
        c.halt()
        func = fb.build()
        profile = {0: stats(0.6, 0.92)}
        report = select_candidates(func, profile)
        assert report.candidates == []
