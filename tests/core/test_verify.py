"""The independent transformation verifier."""

from dataclasses import replace

from repro.compiler import profile_function
from repro.core import (
    decompose_branch,
    select_candidates,
    transform_function,
    verify,
    verify_equivalence,
    verify_function,
)
from repro.isa import Opcode
from tests.conftest import build_diamond

PATTERN = [1, 1, 0, 1, 0, 0, 1, 0] * 24


def transformed_pair():
    func = build_diamond(PATTERN)
    profile = profile_function(func)
    selection = select_candidates(func, profile)
    transformed, _ = transform_function(func, selection.candidates)
    return func, transformed


class TestCleanTransform:
    def test_structural_check_passes(self):
        _, transformed = transformed_pair()
        report = verify_function(transformed)
        assert report.ok, report.errors
        assert report.predicts_checked == 1

    def test_differential_check_passes(self):
        original, transformed = transformed_pair()
        assert verify_equivalence(original, transformed).ok

    def test_full_verify_passes(self):
        original, transformed = transformed_pair()
        assert verify(original, transformed).ok

    def test_untransformed_function_trivially_ok(self):
        func = build_diamond(PATTERN)
        report = verify_function(func)
        assert report.ok and report.predicts_checked == 0


class TestBrokenTransformsCaught:
    def test_mismatched_branch_id(self):
        _, transformed = transformed_pair()
        for block in transformed.blocks.values():
            term = block.terminator
            if term is not None and term.is_resolve:
                block.terminator = replace(term, branch_id=999)
                break
        report = verify_function(transformed)
        assert not report.ok
        assert any("branch_id" in e for e in report.errors)

    def test_wrong_predicted_dir(self):
        _, transformed = transformed_pair()
        for block in transformed.blocks.values():
            term = block.terminator
            if term is not None and term.is_resolve:
                block.terminator = replace(
                    term, predicted_dir=not term.predicted_dir
                )
                break
        report = verify_function(transformed)
        assert not report.ok
        assert any("predicted_dir" in e for e in report.errors)

    def test_store_above_resolution_detected(self):
        from repro.isa import Instruction

        _, transformed = transformed_pair()
        # Inject a store into a resolution block.
        for name, block in transformed.blocks.items():
            term = block.terminator
            if term is not None and term.is_resolve:
                block.body.append(
                    Instruction(opcode=Opcode.STORE, srcs=(1, 4), imm=0)
                )
                break
        report = verify_function(transformed)
        assert not report.ok
        assert any("store above" in e for e in report.errors)

    def test_unmarked_speculative_load_detected(self):
        _, transformed = transformed_pair()
        for block in transformed.blocks.values():
            term = block.terminator
            if term is None or not term.is_resolve:
                continue
            for index, inst in enumerate(block.body):
                if inst.is_load and inst.hoisted:
                    block.body[index] = replace(inst, speculative=False)
                    break
            break
        report = verify_function(transformed)
        assert not report.ok
        assert any("non-faulting" in e for e in report.errors)

    def test_semantic_corruption_detected(self):
        original, transformed = transformed_pair()
        # Corrupt a correction block: drop its re-executed instructions.
        for name, block in transformed.blocks.items():
            if ".correct." in name and block.body:
                block.body = []
                break
        report = verify_equivalence(original, transformed)
        assert not report.ok
