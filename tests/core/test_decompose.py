"""Structure of the Decomposed Branch Transformation output (Fig. 5)."""

import pytest

from repro.core import TransformConfig, TransformError, decompose_branch
from repro.core.decompose import _resolution_slice
from repro.isa import Instruction, Opcode
from tests.conftest import build_diamond


def transformed_diamond(**config_kwargs):
    func = build_diamond([1, 0] * 40)
    decompose_branch(
        func, "A", config=TransformConfig(**config_kwargs)
    )
    func.validate()
    return func


class TestStructure:
    def test_branch_replaced_by_predict(self):
        func = transformed_diamond()
        term = func.block("A").terminator
        assert term.opcode is Opcode.PREDICT
        assert term.branch_id == 0

    def test_two_resolution_blocks_created(self):
        """Statically there are two resolve instructions per predict, one
        per predicted path (Section 2.1)."""
        func = transformed_diamond()
        resolves = [
            block.terminator
            for block in func.blocks.values()
            if block.terminator is not None and block.terminator.is_resolve
        ]
        assert len(resolves) == 2
        directions = {r.predicted_dir for r in resolves}
        assert directions == {True, False}
        assert all(r.branch_id == 0 for r in resolves)

    def test_predict_paths_lead_to_resolves(self):
        func = transformed_diamond()
        predict = func.block("A").terminator
        taken_path = func.block(predict.target)
        fall_path = func.block(func.block("A").fallthrough)
        assert taken_path.terminator.is_resolve
        assert fall_path.terminator.is_resolve
        assert taken_path.terminator.predicted_dir is True
        assert fall_path.terminator.predicted_dir is False

    def test_resolve_opcodes_mirror_branch_sense(self):
        """Original BNZ: on the not-taken path, divert iff cond != 0."""
        func = transformed_diamond()
        fall_path = func.block(func.block("A").fallthrough)
        predict = func.block("A").terminator
        taken_path = func.block(predict.target)
        assert fall_path.terminator.opcode is Opcode.RESOLVE_NZ
        assert taken_path.terminator.opcode is Opcode.RESOLVE_Z

    def test_compare_pushed_into_both_resolution_blocks(self):
        func = transformed_diamond()
        a_ops = [inst.opcode for inst in func.block("A").body]
        assert Opcode.CMP_NE not in a_ops  # pushed out of A
        for name in ("A.nt", "A.t"):
            ops = [inst.opcode for inst in func.block(name).body]
            assert Opcode.CMP_NE in ops

    def test_hoisted_loads_marked_speculative(self):
        func = transformed_diamond()
        for name in ("A.nt", "A.t"):
            hoisted_loads = [
                inst
                for inst in func.block(name).body
                if inst.is_load and inst.hoisted
            ]
            assert hoisted_loads
            assert all(inst.speculative for inst in hoisted_loads)

    def test_correction_blocks_at_function_end(self):
        """Recovery code lives off the hot path (separate pages)."""
        func = transformed_diamond()
        layout = func.layout()
        correct = [n for n in layout if ".correct." in n]
        assert len(correct) == 2
        assert layout[-2:] == correct

    def test_correction_blocks_reexecute_originals(self):
        func = transformed_diamond()
        for name in func.layout():
            if ".correct." not in name:
                continue
            block = func.block(name)
            assert block.terminator.opcode is Opcode.JMP
            for inst in block.body:
                assert not inst.hoisted
                if inst.is_load:
                    assert not inst.speculative

    def test_stores_stay_below_resolution(self):
        """Section 3: stores are pushed below the resolution point."""
        func = transformed_diamond()
        for name in ("A.nt", "A.t"):
            assert not any(i.is_store for i in func.block(name).body)

    def test_hoist_budget_respected(self):
        func = transformed_diamond(max_hoist_per_side=1)
        for name in ("A.nt", "A.t"):
            hoisted = [i for i in func.block(name).body if i.hoisted]
            assert len(hoisted) <= 1

    def test_push_down_can_be_disabled(self):
        func = transformed_diamond(push_down_slice=False)
        a_ops = [inst.opcode for inst in func.block("A").body]
        assert Opcode.CMP_NE in a_ops


class TestErrors:
    def test_non_branch_block_rejected(self):
        func = build_diamond([1, 0] * 10)
        with pytest.raises(TransformError):
            decompose_branch(func, "M")

    def test_missing_branch_id_rejected(self):
        from repro.ir import FunctionBuilder

        fb = FunctionBuilder("g")
        a = fb.block("a")
        a.li(1, 1)
        a.bnz(1, target="c", fallthrough="b")  # no branch_id
        fb.block("b").jmp("d")
        fb.block("c").block.fallthrough = "d"
        fb.block("d").halt()
        with pytest.raises(TransformError):
            decompose_branch(fb.build(), "a")


class TestResolutionSlice:
    def add(self, dest, *srcs, imm=None):
        return Instruction(opcode=Opcode.ADD, dest=dest, srcs=srcs, imm=imm)

    def cmp(self, dest, src):
        return Instruction(opcode=Opcode.CMP_NE, dest=dest, srcs=(src,), imm=0)

    def test_backward_closure_of_condition(self):
        body = [self.add(1, 2), self.add(3, 1), self.cmp(4, 3)]
        assert _resolution_slice(body, cond_reg=4) == [0, 1, 2]

    def test_unrelated_work_stays(self):
        body = [self.add(9, 8), self.cmp(4, 3)]
        assert _resolution_slice(body, cond_reg=4) == [1]

    def test_value_used_by_unpushed_consumer_not_pushed(self):
        # add r1 feeds both the cmp and a later unrelated use of r1.
        body = [self.add(1, 2), self.cmp(4, 1), self.add(9, 1)]
        slice_indices = _resolution_slice(body, cond_reg=4)
        assert 0 not in slice_indices

    def test_memory_ops_never_pushed(self):
        load = Instruction(opcode=Opcode.LOAD, dest=3, srcs=(2,), imm=0)
        body = [load, self.cmp(4, 3)]
        assert _resolution_slice(body, cond_reg=4) == [1]

    def test_war_against_remaining_instruction(self):
        # cmp reads r3; a later unpushed add writes r3's source r2 -- the
        # pushed set moving below it must not include the r2 reader.
        body = [self.add(3, 2), self.add(2, 9), self.cmp(4, 3)]
        slice_indices = _resolution_slice(body, cond_reg=4)
        assert 0 not in slice_indices
        assert 2 in slice_indices
