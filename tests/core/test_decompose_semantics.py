"""Differential semantics: the transformation must preserve architectural
results under *any* prediction stream -- correction code repairs every
misprediction.  This is the load-bearing correctness property of the whole
paper."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_baseline, compile_decomposed
from repro.core import TransformConfig, decompose_branch
from repro.ir import FunctionBuilder, lower
from repro.uarch import always_not_taken, always_taken, execute
from tests.conftest import build_diamond


def architectural_result(program, policy=always_not_taken):
    result = execute(program, predict_policy=policy, max_instructions=3_000_000)
    assert result.halted
    return result.memory_snapshot()


def policies_for(seed):
    rng = random.Random(seed)
    return [
        always_taken,
        always_not_taken,
        lambda _b: rng.random() < 0.5,
    ]


class TestDiamondEquivalence:
    @pytest.mark.parametrize("pattern", [
        [1] * 64,
        [0] * 64,
        [1, 0] * 32,
        [1, 1, 0] * 24,
        [0, 0, 0, 1] * 16,
    ])
    def test_all_outcome_patterns(self, pattern):
        func = build_diamond(pattern)
        reference = architectural_result(lower(func))
        decompose_branch(func.clone() if False else func, "A")
        transformed = lower(func)
        for policy in policies_for(1234):
            assert architectural_result(transformed, policy) == reference

    @pytest.mark.parametrize("hoist", [0, 1, 3, 12])
    def test_hoist_budgets(self, hoist):
        pattern = [1, 0, 0, 1, 1] * 20
        func = build_diamond(pattern)
        reference = architectural_result(lower(func))
        decompose_branch(
            func, "A", config=TransformConfig(max_hoist_per_side=hoist)
        )
        assert architectural_result(lower(func), always_taken) == reference

    def test_without_push_down(self):
        pattern = [1, 0] * 40
        func = build_diamond(pattern)
        reference = architectural_result(lower(func))
        decompose_branch(
            func, "A", config=TransformConfig(push_down_slice=False)
        )
        assert architectural_result(lower(func), always_taken) == reference


class TestPipelineEquivalence:
    def test_full_pipeline_on_diamond(self):
        func = build_diamond([1, 0, 1, 1, 0] * 30)
        baseline = compile_baseline(func)
        decomposed = compile_decomposed(func, profile=baseline.profile)
        reference = architectural_result(baseline.program)
        for policy in policies_for(99):
            assert architectural_result(decomposed.program, policy) == reference


def _random_hammock(draw_ops, n_blocks_data, seed):
    """Build a randomized multi-site hammock program.

    Each site's successor blocks get a random instruction soup drawn from
    hypothesis, exercising hoist legality, renaming, and correction-code
    generation on shapes the hand-written tests never cover.
    """
    rng = random.Random(seed)
    n_sites = len(n_blocks_data)
    fb = FunctionBuilder("random_hammock")
    iterations = 24
    # Data: per-site condition words.
    for s in range(n_sites):
        for i in range(iterations):
            fb.function.data[2000 + s * 64 + i] = rng.randint(0, 1)
    for addr in range(3000, 3200):
        fb.function.data[addr] = rng.randint(-50, 50)

    init = fb.block("init")
    init.li(1, 0)
    init.li(2, iterations)
    init.li(3, 0)
    init.block.fallthrough = "s0A"

    def emit_soup(bb, ops, salt):
        regs = list(range(8, 24))
        for k, op in enumerate(ops):
            kind = op % 5
            dst = regs[(salt + k) % len(regs)]
            src = regs[(salt + k * 3 + 1) % len(regs)]
            if kind == 0:
                bb.add(dst, src, imm=op)
            elif kind == 1:
                bb.xor(dst, src, imm=salt)
            elif kind == 2:
                bb.add(5, 1, imm=3000 + (op % 100))
                bb.load(dst, 5, offset=0)
            elif kind == 3:
                bb.store(src, 4, offset=600 + (op % 50))
            else:
                bb.mul(dst, src, imm=(op % 7) + 1)
        bb.add(3, 3, dst if ops else 3)
        bb.store(3, 4, offset=500 + salt)

    for s, (ops_b, ops_c) in enumerate(n_blocks_data):
        a = fb.block(f"s{s}A")
        a.add(4, 1, imm=2000 + s * 64)
        a.load(6, 4, 0)
        a.cmp_ne(7, 6, imm=0)
        a.bnz(7, target=f"s{s}C", fallthrough=f"s{s}B", branch_id=s)
        b = fb.block(f"s{s}B")
        emit_soup(b, ops_b, salt=2 * s)
        b.jmp(f"s{s}M")
        c = fb.block(f"s{s}C")
        emit_soup(c, ops_c, salt=2 * s + 1)
        c.block.fallthrough = f"s{s}M"
        m = fb.block(f"s{s}M")
        m.block.fallthrough = f"s{s + 1}A" if s + 1 < n_sites else "tail"

    tail = fb.block("tail")
    tail.add(1, 1, imm=1)
    tail.cmp_lt(9, 1, 2)
    tail.bnz(9, target="s0A", fallthrough="exit", branch_id=77)
    exit_block = fb.block("exit")
    exit_block.store(3, 4, offset=999)
    exit_block.halt()
    return fb.build()


@settings(max_examples=25, deadline=None)
@given(
    sites=st.lists(
        st.tuples(
            st.lists(st.integers(0, 1000), min_size=0, max_size=10),
            st.lists(st.integers(0, 1000), min_size=0, max_size=10),
        ),
        min_size=1,
        max_size=3,
    ),
    seed=st.integers(0, 10_000),
)
def test_random_hammocks_preserve_semantics(sites, seed):
    """Property: for arbitrary successor-block contents, decomposing every
    eligible branch preserves the final memory image under adversarial
    prediction policies."""
    func = _random_hammock(None, sites, seed)
    reference = architectural_result(lower(func))

    for s in range(len(sites)):
        try:
            decompose_branch(func, f"s{s}A")
        except Exception as error:  # pragma: no cover - diagnostic aid
            raise AssertionError(f"decompose failed on site {s}: {error}")
    func.validate()
    transformed = lower(func)

    rng = random.Random(seed)
    for policy in (always_taken, always_not_taken,
                   lambda _b: rng.random() < 0.5):
        assert architectural_result(transformed, policy) == reference
