"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["table2"],
            ["figure", "fig8"],
            ["predvbias", "int2006"],
            ["taxonomy"],
            ["sensitivity"],
            ["sideeffects"],
            ["ablations"],
            ["bench", "gcc"],
            ["timeline", "gcc"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_figure_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_scale_flags(self):
        args = build_parser().parse_args(
            ["--iterations", "100", "--seeds", "2", "table2"]
        )
        assert args.iterations == 100 and args.seeds == 2

    def test_robustness_flags(self):
        args = build_parser().parse_args(
            ["--job-timeout", "2.5", "--retries", "4",
             "--resume", "20260806-101500-abc123", "table2"]
        )
        assert args.job_timeout == 2.5
        assert args.retries == 4
        assert args.resume == "20260806-101500-abc123"
        args = build_parser().parse_args(["table2"])
        assert args.job_timeout is None
        assert args.retries is None
        assert args.resume is None


class TestExecution:
    @pytest.fixture(autouse=True)
    def _sandbox_results(self, tmp_path, monkeypatch):
        """Keep CLI runs from clobbering the committed results/ samples
        (run_manifest.json) or the shared artifact cache."""
        monkeypatch.setattr("repro.cli.RESULTS_DIR", tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / ".cache"))

    def test_bench_command(self, capsys):
        assert main(["--iterations", "120", "bench", "omnetpp"]) == 0
        out = capsys.readouterr().out
        assert "omnetpp" in out and "speedup" in out

    def test_timeline_command(self, capsys):
        assert main(["--iterations", "80", "timeline", "gcc",
                     "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_taxonomy_command(self, capsys):
        assert main(["--iterations", "80", "taxonomy", "int2006"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    @pytest.mark.faults
    def test_failed_job_exits_nonzero(self, capsys, monkeypatch):
        """An injected crash must surface as a FAILED line and exit 1
        instead of a traceback (graceful degradation end to end)."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0@seed=1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        code = main(
            ["--iterations", "90", "--jobs", "1", "--no-cache",
             "bench", "omnetpp"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "omnetpp: FAILED" in out
        assert "InjectedCrash" in out
