"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["table2"],
            ["figure", "fig8"],
            ["predvbias", "int2006"],
            ["taxonomy"],
            ["sensitivity"],
            ["sideeffects"],
            ["ablations"],
            ["bench", "gcc"],
            ["timeline", "gcc"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_figure_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_scale_flags(self):
        args = build_parser().parse_args(
            ["--iterations", "100", "--seeds", "2", "table2"]
        )
        assert args.iterations == 100 and args.seeds == 2


class TestExecution:
    def test_bench_command(self, capsys):
        assert main(["--iterations", "120", "bench", "omnetpp"]) == 0
        out = capsys.readouterr().out
        assert "omnetpp" in out and "speedup" in out

    def test_timeline_command(self, capsys):
        assert main(["--iterations", "80", "timeline", "gcc",
                     "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_taxonomy_command(self, capsys):
        assert main(["--iterations", "80", "taxonomy", "int2006"]) == 0
        assert "TOTAL" in capsys.readouterr().out
