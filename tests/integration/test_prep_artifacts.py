"""Persisted replay-prep slices: keying, invalidation, integrity,
cross-process/shm reuse, and the sidecar-aware cache housekeeping.

The prep cache is a *derived* layer: every test here can assert
bit-identical results because a lost or corrupted slice is never a
wrong answer, only a rebuild.  Everything points its cache at
``tmp_path`` via ``REPRO_CACHE_DIR`` (same convention as
``test_artifacts``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

import pytest

from repro.branchpred import GSharePredictor
from repro.experiments import RunConfig, cachectl, plane
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.harness import prepare_benchmark
from repro.uarch import replay_vec


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return ArtifactStore(cache_dir=tmp_path)


def _quick_programs(config=None):
    config = config or RunConfig.quick()
    baseline, decomposed = prepare_benchmark("h264ref", 1, config)
    return config, baseline.program, decomposed.program


def _prep_files(tmp_path):
    preps = tmp_path / "preps"
    if not preps.is_dir():
        return []
    return sorted(p for p in preps.iterdir() if p.suffix == ".prep")


class TestPrepPersistence:
    def test_replay_builds_and_persists_slice(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        mark = store.mark()
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = store.delta(mark)
        assert delta.get("prep_misses") == 1
        assert delta.get("prep_builds") == 1
        files = _prep_files(tmp_path)
        assert len(files) == 1
        assert (files[0].parent / (files[0].name + ".sum")).is_file()
        # Same store again: layers are already on the (LRU-cached)
        # trace object -- in-process memoisation is not a cache event.
        mark = store.mark()
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = store.delta(mark)
        assert not any(k.startswith("prep_") for k in delta)

    def test_fresh_store_warm_starts_from_disk(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        first = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        other = ArtifactStore(cache_dir=tmp_path)
        mark = other.mark()
        second = other.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = other.delta(mark)
        assert delta.get("prep_hits") == 1
        assert "prep_builds" not in delta
        assert "prep_misses" not in delta
        assert first.cycles == second.cycles
        assert first.stats == second.stats

    def test_ooo_shares_the_inorder_slice(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        other = ArtifactStore(cache_dir=tmp_path)
        mark = other.mark()
        other.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        other.simulate_ooo(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = other.delta(mark)
        # One attach serves both cores: the slice carries both BTB
        # working sets, so the OOO replay moves no prep counters.
        assert delta.get("prep_hits") == 1
        assert "prep_builds" not in delta
        assert len(_prep_files(tmp_path)) == 1

    def test_cached_prep_matches_scalar_oracle(
        self, store, tmp_path, monkeypatch
    ):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        warm = ArtifactStore(cache_dir=tmp_path)
        vec_io = warm.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        vec_ooo = warm.simulate_ooo(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert warm.counters.get("prep_hits") == 1
        monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
        oracle = ArtifactStore(cache_dir=tmp_path)
        ref_io = oracle.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        ref_ooo = oracle.simulate_ooo(
            baseline, machine, max_instructions=config.max_instructions
        )
        # The scalar path never touches the prep cache at all.
        assert not any(
            count
            for name, count in oracle.counters.items()
            if name.startswith("prep_")
        )
        assert vec_io.cycles == ref_io.cycles
        assert vec_io.stats == ref_io.stats
        assert vec_ooo.cycles == ref_ooo.cycles
        assert vec_ooo.stats == ref_ooo.stats


class TestPrepInvalidation:
    def _trace_and_key(self, store, config, baseline, machine):
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        trace = store.peek_trace(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert trace is not None
        key = replay_vec.prep_slice_key(baseline, trace, machine)
        assert key is not None
        return trace, key

    def test_predictor_change_changes_key_and_rebuilds(
        self, store, tmp_path
    ):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace, key = self._trace_and_key(
            store, config, baseline, machine
        )
        gshare = machine.with_predictor(GSharePredictor)
        other_key = replay_vec.prep_slice_key(baseline, trace, gshare)
        assert other_key is not None and other_key != key
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        fresh.simulate_inorder(
            baseline, gshare, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        # A foreign predictor means a live per-branch pass: its own
        # slice, built once, alongside the recorded-mode one.
        assert delta.get("prep_builds") == 1
        assert "prep_hits" not in delta
        assert len(_prep_files(tmp_path)) == 2

    def test_width_change_shares_the_slice(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace, key = self._trace_and_key(
            store, config, baseline, machine
        )
        wide = config.machine_for(8)
        assert replay_vec.prep_slice_key(baseline, trace, wide) == key
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        fresh.simulate_inorder(
            baseline, wide, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("prep_hits") == 1
        assert "prep_builds" not in delta
        assert len(_prep_files(tmp_path)) == 1

    def test_geometry_change_changes_key(self, store):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace, key = self._trace_and_key(
            store, config, baseline, machine
        )
        smaller_btb = dataclasses.replace(
            machine, btb_entries=machine.btb_entries // 2
        )
        assert (
            replay_vec.prep_slice_key(baseline, trace, smaller_btb)
            != key
        )
        smaller_ras = dataclasses.replace(
            machine, ras_entries=machine.ras_entries // 2
        )
        assert (
            replay_vec.prep_slice_key(baseline, trace, smaller_ras)
            != key
        )

    def test_trace_content_drives_key(self, store):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace, key = self._trace_and_key(
            store, config, baseline, machine
        )
        shorter = config.max_instructions // 2
        store.simulate_inorder(
            baseline, machine, max_instructions=shorter
        )
        other = store.peek_trace(
            baseline, machine, max_instructions=shorter
        )
        assert other is not None
        assert other.content_digest() != trace.content_digest()
        assert (
            replay_vec.prep_slice_key(baseline, other, machine) != key
        )

    def test_schema_bump_forces_rebuild(
        self, store, tmp_path, monkeypatch
    ):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert len(_prep_files(tmp_path)) == 1
        monkeypatch.setattr(
            replay_vec, "PREP_SCHEMA", replay_vec.PREP_SCHEMA + 1
        )
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("prep_misses") == 1
        assert delta.get("prep_builds") == 1
        assert len(_prep_files(tmp_path)) == 2


class TestPrepIntegrity:
    def _seed(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        result = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        (blob_path,) = _prep_files(tmp_path)
        return config, baseline, machine, result, blob_path

    def test_torn_blob_is_quarantined_and_rebuilt(
        self, store, tmp_path
    ):
        config, baseline, machine, result, blob_path = self._seed(
            store, tmp_path
        )
        blob = blob_path.read_bytes()
        blob_path.write_bytes(blob[: len(blob) // 2])
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        second = fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("prep_quarantined") == 1
        assert delta.get("prep_builds") == 1
        assert result.cycles == second.cycles
        assert result.stats == second.stats
        quarantine = tmp_path / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())
        # The rebuild re-persisted a good slice.
        assert len(_prep_files(tmp_path)) == 1

    def test_valid_digest_bad_container_is_quarantined(
        self, store, tmp_path
    ):
        config, baseline, machine, result, blob_path = self._seed(
            store, tmp_path
        )
        # Bytes that verify against their sidecar but are not a prep
        # container (a cache poisoned at write time, not in transit).
        garbage = b"not a prep container" * 4
        blob_path.write_bytes(garbage)
        sidecar = blob_path.parent / (blob_path.name + ".sum")
        sidecar.write_text(hashlib.sha256(garbage).hexdigest())
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        second = fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("prep_quarantined") == 1
        assert delta.get("prep_builds") == 1
        assert result.cycles == second.cycles
        assert result.stats == second.stats


@pytest.mark.skipif(
    not plane.shm_available(), reason="no multiprocessing.shared_memory"
)
class TestPrepPlane:
    @pytest.fixture
    def prefix(self, monkeypatch):
        value = plane.new_prefix()
        monkeypatch.setenv(plane.PREFIX_ENV, value)
        yield value
        plane.cleanup_run(value)

    def test_shm_prep_shared_without_disk(
        self, store, tmp_path, monkeypatch, prefix
    ):
        # Disk persistence off: the only way a sibling store can skip
        # the build is the run-scoped shared-memory plane.
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        first = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert store.counters.get("shm_prep_publishes") == 1
        assert not _prep_files(tmp_path)
        sibling = ArtifactStore(cache_dir=tmp_path)
        mark = sibling.mark()
        second = sibling.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = sibling.delta(mark)
        assert delta.get("shm_attaches") == 1
        assert delta.get("prep_hits") == 1
        assert delta.get("shm_prep_attaches") == 1
        assert "prep_builds" not in delta
        assert first.cycles == second.cycles
        assert first.stats == second.stats
        # Trace and prep segments both live under the run prefix, so
        # the engine's end-of-run sweep collects them together.
        assert len(plane.list_segments(prefix)) == 2

    def test_disk_hit_republishes_to_plane(
        self, store, tmp_path, prefix
    ):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        key = None
        for path in _prep_files(tmp_path):
            key = path.stem
        assert key is not None
        plane.cleanup_run(prefix)
        plane.register_run(prefix)
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("prep_hits") == 1
        assert delta.get("shm_prep_publishes") == 1
        assert plane.attach_prep(key) is not None


class TestCacheCtlSidecars:
    def _blob(self, tmp_path, section, name, payload):
        directory = tmp_path / section
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        path.write_bytes(payload)
        sidecar = directory / (name + ".sum")
        sidecar.write_text(hashlib.sha256(payload).hexdigest())
        return path, sidecar

    def test_scan_folds_sidecar_into_blob_entry(self, tmp_path):
        path, sidecar = self._blob(
            tmp_path, "traces", "k.trace", b"x" * 1000
        )
        report = cachectl.scan(tmp_path)
        stats = report["traces"]
        assert stats.files == 1
        assert stats.bytes == 1000 + sidecar.stat().st_size
        assert [entry[2] for entry in stats.entries] == [path]

    def test_scan_preps_section(self, tmp_path):
        self._blob(tmp_path, "preps", "k.prep", b"y" * 64)
        report = cachectl.scan(tmp_path)
        assert report["preps"].files == 1
        assert report["preps"].bytes > 64

    def test_orphaned_sidecar_is_its_own_entry(self, tmp_path):
        path, sidecar = self._blob(
            tmp_path, "traces", "k.trace", b"x" * 100
        )
        path.unlink()
        report = cachectl.scan(tmp_path)
        stats = report["traces"]
        assert stats.files == 1
        assert [entry[2] for entry in stats.entries] == [sidecar]
        # ...and prune can finally collect it.
        removed = cachectl.prune(tmp_path, max_age_days=0.0)
        assert removed["traces"][0] == 1
        assert not sidecar.exists()

    def test_prune_removes_blob_and_sidecar_as_unit(self, tmp_path):
        path, sidecar = self._blob(
            tmp_path, "traces", "k.trace", b"x" * 1000
        )
        old = 1_000_000.0
        os.utime(path, (old, old))
        removed = cachectl.prune(tmp_path, max_age_days=1.0)
        files, nbytes = removed["traces"]
        assert files == 2
        assert nbytes == 1000 + 64  # sidecar counted in the budget
        assert not path.exists() and not sidecar.exists()

    def test_size_budget_counts_sidecars(self, tmp_path):
        # Two 1000-byte blobs plus their 64-byte sidecars: a 2 KiB
        # budget that ignored sidecars would keep both.
        a, _ = self._blob(tmp_path, "traces", "a.trace", b"a" * 1000)
        self._blob(tmp_path, "traces", "b.trace", b"b" * 1000)
        os.utime(a, (1_000_000.0, 1_000_000.0))
        removed = cachectl.prune(
            tmp_path, max_size_mb=2000 / (1024 * 1024)
        )
        assert removed["traces"][0] == 2  # blob + sidecar of oldest
        assert not a.exists()

    def test_queue_scan_skips_directories(self, tmp_path):
        run_dir = tmp_path / "queue" / "run-1"
        run_dir.mkdir(parents=True)
        lease = run_dir / "job.lease"
        lease.write_text("{}")
        report = cachectl.scan(tmp_path)
        stats = report["queue"]
        assert stats.files == 1
        assert [entry[2] for entry in stats.entries] == [lease]
        # Pruning everything must not try to unlink the directory.
        removed = cachectl.prune(
            tmp_path, max_age_days=0.0, sections=("queue",)
        )
        assert removed["queue"][0] == 1
        assert run_dir.is_dir() and not lease.exists()


class TestCacheVerify:
    def _blob(self, tmp_path, section, name, payload):
        directory = tmp_path / section
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        path.write_bytes(payload)
        sidecar = directory / (name + ".sum")
        sidecar.write_text(hashlib.sha256(payload).hexdigest())
        return path, sidecar

    def test_clean_cache_verifies_ok(self, tmp_path):
        self._blob(tmp_path, "traces", "a.trace", b"a" * 100)
        self._blob(tmp_path, "preps", "b.prep", b"b" * 100)
        report = cachectl.verify(tmp_path)
        assert report.checked == 2
        assert report.ok == 2
        assert not report.mismatched and not report.orphaned

    def test_mismatch_and_orphan_detected(self, tmp_path):
        bad, _ = self._blob(tmp_path, "traces", "a.trace", b"a" * 100)
        bad.write_bytes(b"tampered")
        gone, sidecar = self._blob(
            tmp_path, "preps", "b.prep", b"b" * 100
        )
        gone.unlink()
        report = cachectl.verify(tmp_path)
        assert report.mismatched == [bad]
        assert report.orphaned == [sidecar]
        assert not report.quarantined  # report-only by default
        assert bad.exists()
        text = cachectl.render_verify(report)
        assert "MISMATCH" in text and "ORPHAN" in text

    def test_quarantine_moves_mismatches(self, tmp_path):
        bad, sidecar = self._blob(
            tmp_path, "traces", "a.trace", b"a" * 100
        )
        bad.write_bytes(b"tampered")
        report = cachectl.verify(tmp_path, quarantine=True)
        assert report.quarantined == [bad]
        assert not bad.exists() and not sidecar.exists()
        quarantine = tmp_path / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())

    def test_sidecarless_store_blob_counted_unverified(self, tmp_path):
        directory = tmp_path / "traces"
        directory.mkdir(parents=True)
        (directory / "old.trace").write_bytes(b"pre-sidecar")
        report = cachectl.verify(tmp_path)
        assert report.checked == 0
        assert report.unverified == 1

    def test_cli_cache_verify(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._blob(tmp_path, "traces", "a.trace", b"a" * 100)
        assert main(["cache", "verify"]) == 0
        assert "1 ok" in capsys.readouterr().out
        bad, _ = self._blob(tmp_path, "traces", "b.trace", b"b" * 100)
        bad.write_bytes(b"tampered")
        with pytest.raises(SystemExit) as exc:
            main(["cache", "verify"])
        assert exc.value.code == 1
        assert bad.exists()  # report-only without --quarantine
        with pytest.raises(SystemExit):
            main(["cache", "verify", "--quarantine"])
        assert not bad.exists()
        assert main(["cache", "verify"]) == 0
