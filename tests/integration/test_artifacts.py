"""The shared artifact store: capture-once semantics, integrity,
quarantine, cache housekeeping, and group scheduling.

These run at quick scale; everything points its cache at ``tmp_path``
via ``REPRO_CACHE_DIR`` (the engine exports the same variable around
``map()`` so worker processes agree).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.branchpred import HybridPredictor
from repro.experiments import ExperimentEngine, RunConfig
from repro.experiments.artifacts import (
    ArtifactStore,
    default_store,
    get_store,
)
from repro.experiments.harness import (
    combine_seed_results,
    prepare_benchmark,
    run_seed,
)
from repro.uarch import MachineConfig


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return ArtifactStore(cache_dir=tmp_path)


def _quick_programs(config=None):
    config = config or RunConfig.quick()
    baseline, decomposed = prepare_benchmark("h264ref", 1, config)
    return config, baseline.program, decomposed.program


class TestCaptureOnce:
    def test_second_simulation_replays(self, store):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        mark = store.mark()
        first = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert store.delta(mark).get("trace_captures") == 1
        mark = store.mark()
        second = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = store.delta(mark)
        assert delta.get("trace_replays") == 1
        assert "trace_captures" not in delta
        assert first.cycles == second.cycles
        assert first.stats == second.stats

    def test_width_change_is_a_replay(self, store):
        config, baseline, _ = _quick_programs()
        store.simulate_inorder(
            baseline,
            config.machine_for(2),
            max_instructions=config.max_instructions,
        )
        mark = store.mark()
        store.simulate_inorder(
            baseline,
            config.machine_for(8),
            max_instructions=config.max_instructions,
        )
        assert store.delta(mark).get("trace_replays") == 1

    def test_fresh_store_loads_from_disk(self, store, tmp_path):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        other = ArtifactStore(cache_dir=tmp_path)
        mark = other.mark()
        other.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert other.delta(mark).get("trace_replays") == 1

    def test_replay_disabled_env(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_REPLAY", "0")
        config, baseline, _ = _quick_programs()
        mark = store.mark()
        store.simulate_inorder(
            baseline,
            config.machine_for(4),
            max_instructions=config.max_instructions,
        )
        assert store.delta(mark) == {}


class TestIntegrity:
    def test_truncated_trace_quarantined_and_recaptured(
        self, store, tmp_path
    ):
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        traces = list((tmp_path / "traces").glob("*.trace"))
        assert len(traces) == 1
        blob = traces[0].read_bytes()
        traces[0].write_bytes(blob[: len(blob) // 2])

        # A fresh store (cold LRU) hits the corrupt file: it must
        # quarantine it and transparently recapture.
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        result = fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("trace_quarantined") == 1
        assert delta.get("trace_captures") == 1
        assert "trace_replays" not in delta
        assert list((tmp_path / "quarantine").iterdir())
        assert result.stats.committed > 0
        # The recaptured artifact is valid again.
        mark = fresh.mark()
        fresh2 = ArtifactStore(cache_dir=tmp_path)
        fresh2.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert fresh2.counters["trace_replays"] == 1

    def test_corrupt_trace_fault_kind(
        self, store, tmp_path, monkeypatch
    ):
        """The ``corrupt_trace`` fault plan truncates stored traces,
        driving the quarantine + recapture path end to end."""
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt_trace:1")
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        fresh.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = fresh.delta(mark)
        assert delta.get("trace_quarantined") == 1
        assert delta.get("trace_captures") == 1


class TestSweepCapturesOnce:
    def test_two_point_width_sweep_one_capture_per_program(
        self, tmp_path
    ):
        """A two-width sweep performs exactly one capture per
        (benchmark, seed, program variant), proven by the manifest's
        schema-4 artifact counters."""
        import dataclasses

        config = dataclasses.replace(RunConfig.quick(), widths=(2, 4))
        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        )
        engine.run_benchmark("h264ref", config)
        manifest = engine.manifest(config)
        artifacts = manifest["totals"]["artifacts"]
        # One REF seed, two program variants (baseline + decomposed):
        # 2 captures at the first width, 2 replays at the second.
        assert artifacts["trace_captures"] == 2
        assert artifacts["trace_replays"] == 2
        assert artifacts["profile_misses"] == 1

    def test_warm_cache_run_skips_all_work(self, tmp_path):
        config = RunConfig.quick()
        ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        ).run_benchmark("h264ref", config)
        second = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        )
        second.run_benchmark("h264ref", config)
        # Result-cache hits: the artifact layer never even runs.
        assert second.cache_hits == len(config.ref_seeds)
        assert second.artifact_totals().get("trace_captures", 0) == 0


class TestSeedSharing:
    def test_seed_jobs_share_profile_and_baseline_trace(
        self, tmp_path, monkeypatch
    ):
        """Satellite: run_seed's TRAIN profile flows through the
        content-addressed store, so a second seed reuses it (and the
        baseline trace) instead of recomputing."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = RunConfig.quick()
        store = get_store()
        run_seed("h264ref", 1, config)
        mark = store.mark()
        result = run_seed("h264ref", 2, config)
        delta = store.delta(mark)
        # TRAIN profile shared; baseline program identical across REF
        # seeds only if the workload's data segment is -- but the
        # profile artifact must not be recomputed either way.
        assert delta.get("profile_hits", 0) >= 1
        assert "profile_misses" not in delta
        assert result["artifacts"]

    def test_combine_asserts_compile_divergence(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = RunConfig.quick()
        seed = run_seed("h264ref", 1, config)
        import dataclasses

        config2 = dataclasses.replace(config, ref_seeds=(1, 2))
        other = dict(seed, seed=2, converted=seed["converted"] + 1)
        with pytest.raises(AssertionError, match="h264ref"):
            combine_seed_results("h264ref", config2, [seed, other])
        other = dict(
            seed,
            seed=2,
            forward_branches=seed["forward_branches"] + 3,
        )
        with pytest.raises(
            AssertionError, match="diverged across REF seeds"
        ):
            combine_seed_results("h264ref", config2, [seed, other])


class TestProfileMemo:
    def test_repeat_lookups_stop_touching_disk(self, store, tmp_path):
        """A predictor ladder hits the same measured profile many
        times; after the first disk read the bounded memo serves it."""
        config, baseline, _ = _quick_programs()
        first = store.profile(
            baseline, config.max_instructions, HybridPredictor
        )

        # A fresh store (cold memo) loads the artifact from disk once.
        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        second = fresh.profile(
            baseline, config.max_instructions, HybridPredictor
        )
        assert fresh.delta(mark).get("profile_hits") == 1
        assert second == first  # BranchStats is a frozen dataclass

        # Deleting the JSON artifact proves the repeat lookup never
        # goes back to disk: the memo alone must serve it.
        for path in (tmp_path / "profiles").glob("*.json"):
            path.unlink()
        mark = fresh.mark()
        third = fresh.profile(
            baseline, config.max_instructions, HybridPredictor
        )
        assert fresh.delta(mark).get("profile_hits") == 1
        assert "profile_misses" not in fresh.delta(mark)
        assert third == first

    def test_load_profile_absent_is_silent(self, store):
        assert store.load_profile("00" * 32) is None
        assert store.counters["profile_hits"] == 0
        assert store.counters["profile_misses"] == 0


class TestDefaultStoreRerooting:
    def test_equivalent_env_paths_keep_the_store(
        self, tmp_path, monkeypatch
    ):
        """The engine exports REPRO_CACHE_DIR around every map call;
        spelling the same root differently must not discard the
        process store (and its warm memos)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = default_store()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path) + os.sep)
        assert default_store() is first
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path / ".." / tmp_path.name)
        )
        assert default_store() is first
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_store() is not first


class TestGroupScheduling:
    def test_group_followers_wait_for_leader(self, tmp_path):
        """With groups, the leader job finishes before any follower of
        its group starts (so the leader's artifacts are on disk)."""
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=False
        )
        results = engine.map(
            _stamp_job,
            [("g", 0.2), ("g", 0.0), ("g", 0.0), ("solo", 0.0)],
            labels=["lead", "f1", "f2", "solo"],
            groups=["g", "g", "g", "other"],
        )
        lead, f1, f2, solo = results
        assert f1["start"] >= lead["end"]
        assert f2["start"] >= lead["end"]

    def test_groups_preserve_order_and_results(self, tmp_path):
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=False
        )
        results = engine.map(
            _ident_job,
            list(range(6)),
            groups=["a", "b", "a", "b", "a", "b"],
        )
        assert results == [0, 2, 4, 6, 8, 10]


def _stamp_job(payload):
    _, sleep_s = payload
    start = time.time()
    if sleep_s:
        time.sleep(sleep_s)
    return {"start": start, "end": time.time()}


def _ident_job(payload):
    return payload * 2


class TestCacheCtl:
    def test_scan_and_prune(self, tmp_path):
        from repro.experiments import cachectl

        (tmp_path / "traces").mkdir()
        (tmp_path / "runs").mkdir()
        old = tmp_path / "traces" / "old.trace"
        new = tmp_path / "traces" / "new.trace"
        old.write_bytes(b"x" * 1000)
        new.write_bytes(b"y" * 1000)
        import os

        stale = time.time() - 10 * 86400
        os.utime(old, (stale, stale))
        (tmp_path / "runs" / "r1.jsonl").write_text("{}\n")

        report = cachectl.scan(tmp_path)
        assert report["traces"].files == 2
        assert report["traces"].bytes == 2000
        assert report["runs"].files == 1

        removed = cachectl.prune(tmp_path, max_age_days=5)
        assert removed["traces"] == (1, 1000)
        assert not old.exists() and new.exists()

        removed = cachectl.prune(tmp_path, max_size_mb=0.0)
        assert not new.exists()
        assert not (tmp_path / "runs" / "r1.jsonl").exists()

    def test_prune_without_limits_is_noop(self, tmp_path):
        from repro.experiments import cachectl

        (tmp_path / "traces").mkdir()
        keep = tmp_path / "traces" / "keep.trace"
        keep.write_bytes(b"z")
        removed = cachectl.prune(tmp_path)
        assert all(v == (0, 0) for v in removed.values())
        assert keep.exists()

    def test_artifact_counters_reads_schema4(self, tmp_path):
        from repro.experiments import cachectl

        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 4,
                    "totals": {"artifacts": {"trace_replays": 7}},
                }
            )
        )
        assert cachectl.artifact_counters(path) == {
            "trace_replays": 7
        }
        path.write_text(json.dumps({"schema": 3, "totals": {}}))
        assert cachectl.artifact_counters(path) is None
        assert cachectl.artifact_counters(tmp_path / "nope.json") is None

    def test_cli_cache_command(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "traces").mkdir()
        (tmp_path / "traces" / "t.trace").write_bytes(b"x" * 10)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "traces" in out and "1 files" in out
        assert main(["cache", "--prune", "--max-size-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned traces: 1 files" in out
        assert not (tmp_path / "traces" / "t.trace").exists()


class TestTraceLru:
    """In-process hot-trace LRU: replacement, byte accounting, the
    ``REPRO_TRACE_LRU_MB`` knob, and mtime refresh on disk hits."""

    @staticmethod
    def _trace_for(program, machine, budget):
        from repro.uarch import InOrderCore, Trace, TraceCapture
        from repro.uarch.trace import predictor_id

        capture = TraceCapture()
        result = InOrderCore(machine).run(
            program, max_instructions=budget, capture=capture
        )
        return Trace.from_bytes(
            capture.finish(
                program,
                result,
                budget,
                predictor_id(machine.predictor_factory),
            ).to_bytes()
        )

    def test_reput_replaces_object_and_recharges(self, store):
        """A re-put under an existing key (transparent recapture) must
        swap in the fresh Trace and keep byte accounting exact."""
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        stale = self._trace_for(baseline, machine, 2_000)
        fresh = self._trace_for(baseline, machine, config.max_instructions)
        assert stale.nbytes() != fresh.nbytes()
        store._lru_put("k", stale)
        store._lru_put("k", fresh)
        assert store._lru_get("k") is fresh
        assert store._trace_lru_bytes == fresh.nbytes()

    def test_eviction_subtracts_put_time_charge(self, store, monkeypatch):
        """A trace whose footprint grows *after* the put (replay prep
        attaching) must not drive the accounting negative on evict."""
        from repro.experiments.artifacts import ArtifactStore
        from repro.uarch import replay_inorder

        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace = self._trace_for(baseline, machine, config.max_instructions)
        monkeypatch.setenv("REPRO_TRACE_LRU_MB", "0.01")
        tiny = ArtifactStore(cache_dir=store.cache_dir)
        tiny._lru_put("a", trace)
        charged = trace.nbytes()
        replay_inorder(baseline, trace, machine)  # attaches prep
        assert trace.nbytes() > charged
        other = self._trace_for(baseline, machine, 2_000)
        tiny._lru_put("b", other)  # evicts "a" (over budget)
        assert tiny._lru_get("a") is None
        assert tiny._lru_get("b") is other
        assert tiny._trace_lru_bytes == other.nbytes()

    def test_oversized_single_trace_does_not_wedge(self, store, monkeypatch):
        """One trace larger than the whole budget stays resident (the
        len > 1 guard) instead of wedging the eviction loop."""
        from repro.experiments.artifacts import ArtifactStore

        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        trace = self._trace_for(baseline, machine, config.max_instructions)
        monkeypatch.setenv("REPRO_TRACE_LRU_MB", "0.000001")
        tiny = ArtifactStore(cache_dir=store.cache_dir)
        assert 0 < tiny._lru_budget < trace.nbytes()
        tiny._lru_put("big", trace)
        assert tiny._lru_get("big") is trace
        assert tiny._trace_lru_bytes == trace.nbytes()

    def test_lru_disabled_bypasses_memory_not_disk(self, tmp_path, monkeypatch):
        """``REPRO_TRACE_LRU_MB=0``: no in-process caching, but disk
        persistence and the hit/miss counters still behave."""
        from repro.experiments.artifacts import ArtifactStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_LRU_MB", "0")
        store = ArtifactStore(cache_dir=tmp_path)
        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        mark = store.mark()
        first = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        assert store.delta(mark).get("trace_captures") == 1
        assert not store._trace_lru
        assert store._trace_lru_bytes == 0
        mark = store.mark()
        second = store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        delta = store.delta(mark)
        assert delta.get("trace_replays") == 1
        assert delta.get("trace_hits") == 1
        assert "trace_captures" not in delta
        assert not store._trace_lru
        assert first.stats == second.stats

    def test_lru_budget_defaults_when_unset(self, tmp_path, monkeypatch):
        from repro.experiments.artifacts import ArtifactStore, _env_lru_bytes

        monkeypatch.delenv("REPRO_TRACE_LRU_MB", raising=False)
        assert _env_lru_bytes() == 256 * 1024 * 1024
        store = ArtifactStore(cache_dir=tmp_path)
        assert store._lru_budget == 256 * 1024 * 1024

    def test_prune_keeps_recently_hit_traces(self, store, tmp_path):
        """A disk hit refreshes mtime, so age-based pruning spares
        traces a long-running sweep is actively replaying."""
        import os

        from repro.experiments import cachectl
        from repro.experiments.artifacts import ArtifactStore

        config, baseline, _ = _quick_programs()
        machine = config.machine_for(4)
        store.simulate_inorder(
            baseline, machine, max_instructions=config.max_instructions
        )
        [path] = (tmp_path / "traces").glob("*.trace")
        stale = time.time() - 10 * 86400
        os.utime(path, (stale, stale))

        # A fresh store (empty memory layer) replays from disk: hot.
        other = ArtifactStore(cache_dir=tmp_path)
        assert other.load_trace(path.stem) is not None

        removed = cachectl.prune(tmp_path, max_age_days=5)
        assert removed["traces"] == (0, 0)
        assert path.exists()
