"""Cross-model agreement: the cycle-level timing model and the
timing-free functional executor must produce identical architectural
results -- the timing layer must never change *what* executes.

Randomised over program shapes with hypothesis."""

import random

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_baseline, compile_decomposed
from repro.ir import FunctionBuilder, lower
from repro.uarch import InOrderCore, MachineConfig, execute
from tests.conftest import build_diamond


def _random_program(ops, seed):
    """A loop over a soup of arithmetic/memory/diamond constructs."""
    rng = random.Random(seed)
    fb = FunctionBuilder("soup")
    for i in range(64):
        fb.function.data[500 + i] = rng.randint(0, 1)
        fb.function.data[600 + i] = rng.randint(-9, 9)

    init = fb.block("init")
    init.li(1, 0)
    init.li(2, 20)
    init.li(3, 0)
    init.block.fallthrough = "body"

    body = fb.block("body")
    body.add(4, 1, imm=500)
    body.load(5, 4, 0)
    regs = list(range(8, 20))
    for k, op in enumerate(ops):
        dst = regs[(k * 5 + op) % len(regs)]
        src = regs[(k * 3 + 1) % len(regs)]
        kind = op % 6
        if kind == 0:
            body.add(dst, src, imm=op)
        elif kind == 1:
            body.mul(dst, src, imm=(op % 5) + 1)
        elif kind == 2:
            body.load(dst, 4, offset=100 + (op % 32))
        elif kind == 3:
            body.store(src, 4, offset=200 + (op % 32))
        elif kind == 4:
            body.xor(dst, src, imm=op)
        else:
            body.shr(dst, src, imm=op % 7)
    body.add(3, 3, regs[0])
    body.cmp_ne(6, 5, imm=0)
    body.bnz(6, target="taken", fallthrough="fall", branch_id=0)

    fall = fb.block("fall")
    fall.add(3, 3, imm=1)
    fall.store(3, 4, offset=300)
    fall.jmp("merge")

    taken = fb.block("taken")
    taken.add(3, 3, imm=2)
    taken.store(3, 4, offset=300)
    taken.block.fallthrough = "merge"

    merge = fb.block("merge")
    merge.add(1, 1, imm=1)
    merge.cmp_lt(7, 1, 2)
    merge.bnz(7, target="body", fallthrough="done", branch_id=1)

    done = fb.block("done")
    done.store(3, 4, offset=400)
    done.halt()
    return fb.build()


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(st.integers(0, 500), min_size=0, max_size=16),
    seed=st.integers(0, 1000),
)
def test_timing_model_matches_functional_executor(ops, seed):
    func = _random_program(ops, seed)
    program = lower(func)
    functional = execute(program)
    timed = InOrderCore(MachineConfig.paper_default()).run(program)
    assert timed.stats.halted and functional.halted
    assert timed.memory_snapshot() == functional.memory_snapshot()
    assert timed.registers[3] == functional.registers[3]


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(st.integers(0, 500), min_size=0, max_size=12),
    seed=st.integers(0, 1000),
    width=st.sampled_from([2, 4, 8]),
)
def test_width_never_changes_architecture(ops, seed, width):
    func = _random_program(ops, seed)
    program = lower(func)
    reference = execute(program).memory_snapshot()
    timed = InOrderCore(MachineConfig.paper_default(width)).run(program)
    assert timed.memory_snapshot() == reference


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_decomposed_timing_model_matches_functional_reference(seed):
    """Transformed programs in the *timing* model (real predictor, DBB,
    squash/redirect) still land on the baseline's architectural state."""
    rng = random.Random(seed)
    pattern = [rng.randint(0, 1) for _ in range(160)]
    func = build_diamond(pattern)
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)
    reference = execute(baseline.program).memory_snapshot()
    timed = InOrderCore(MachineConfig.paper_default()).run(
        decomposed.program
    )
    assert timed.memory_snapshot() == reference
