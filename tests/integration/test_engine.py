"""The parallel experiment engine: determinism, caching, observability.

These run at quick scale so the parallel path (2+ worker processes) is
exercised on every pytest run.
"""

import dataclasses
import json

import pytest

from repro.core import SelectionConfig
from repro.experiments import ExperimentEngine, RunConfig
from repro.experiments.engine import code_version, fingerprint


def _outcomes_equal(a, b) -> bool:
    return (
        a.name == b.name
        and a.speedups == b.speedups
        and vars(a.metrics) == vars(b.metrics)
        and a.converted == b.converted
        and a.forward_branches == b.forward_branches
    )


class TestDeterminism:
    def test_parallel_matches_serial(self):
        """jobs=1 and jobs=4 produce identical BenchmarkOutcomes."""
        config = RunConfig.quick()
        names = ["h264ref", "omnetpp"]
        serial = ExperimentEngine(jobs=1, use_cache=False).run_benchmarks(
            names, config
        )
        parallel = ExperimentEngine(jobs=4, use_cache=False).run_benchmarks(
            names, config
        )
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert _outcomes_equal(a, b)

    def test_table2_metrics_pinned_to_4wide(self):
        """Every Table 2 column comes from the 4-wide runs, so adding
        other widths to the sweep must not change the metrics."""
        multi = dataclasses.replace(RunConfig.quick(), widths=(2, 4, 8))
        only4 = dataclasses.replace(RunConfig.quick(), widths=(4,))
        engine = ExperimentEngine(jobs=1, use_cache=False)
        a = engine.run_benchmark("omnetpp", multi)
        b = engine.run_benchmark("omnetpp", only4)
        assert vars(a.metrics) == vars(b.metrics)
        assert a.speedups[4] == b.speedups[4]


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        config = RunConfig.quick()
        first_engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        )
        first = first_engine.run_benchmark("h264ref", config)
        assert first_engine.cache_misses == len(config.ref_seeds)
        assert first_engine.cache_hits == 0

        second_engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        )
        second = second_engine.run_benchmark("h264ref", config)
        assert second_engine.cache_hits == len(config.ref_seeds)
        assert second_engine.cache_misses == 0
        assert _outcomes_equal(first, second)

    def test_config_field_edit_invalidates(self, tmp_path):
        config = RunConfig.quick()
        ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        ).run_benchmark("h264ref", config)

        changed = dataclasses.replace(
            config,
            selection=SelectionConfig(min_exposed_predictability=0.07),
        )
        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True
        )
        engine.run_benchmark("h264ref", changed)
        assert engine.cache_hits == 0
        assert engine.cache_misses == len(changed.ref_seeds)

    def test_fingerprint_covers_nested_configs(self):
        a = fingerprint(RunConfig.quick())
        b = fingerprint(
            dataclasses.replace(
                RunConfig.quick(),
                transform=dataclasses.replace(
                    RunConfig.quick().transform, max_hoist_per_side=3
                ),
            )
        )
        assert a != b
        json.dumps(a)  # must be JSON-serialisable

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestObservability:
    def test_manifest_written(self, tmp_path):
        config = RunConfig.quick()
        seen = []
        engine = ExperimentEngine(
            jobs=1,
            cache_dir=tmp_path,
            use_cache=True,
            progress=lambda done, total, label: seen.append(
                (done, total, label)
            ),
        )
        engine.run_benchmark("h264ref", config)
        assert seen and seen[-1][0] == seen[-1][1] == len(config.ref_seeds)

        path = tmp_path / "run_manifest.json"
        engine.write_manifest(path, config=config)
        manifest = json.loads(path.read_text())
        assert manifest["totals"]["jobs"] == len(config.ref_seeds)
        assert manifest["totals"]["cache_misses"] == len(config.ref_seeds)
        assert manifest["totals"]["simulated_cycles"] > 0
        assert manifest["totals"]["wall_s"] > 0
        assert manifest["engine"]["code_version"] == code_version()
        assert manifest["config"]["__class__"] == "RunConfig"
        for record in manifest["jobs"]:
            assert record["cache"] in ("hit", "miss")
            assert "h264ref" in record["label"]

    def test_manifest_schema4_health_fields(self, tmp_path):
        """Schema >= 4 fields: per-job status/attempts/error plus run
        identity, robustness knobs, health totals, artifact counters."""
        config = RunConfig.quick()
        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True, run_id="m3",
            retries=1, job_timeout=30.0,
        )
        engine.run_benchmark("h264ref", config)
        manifest = engine.manifest(config)
        assert manifest["schema"] == 8
        block = manifest["engine"]
        assert block["run_id"] == "m3"
        assert block["resume"] is False
        assert block["retries"] == 1
        assert block["job_timeout_s"] == 30.0
        assert block["fault_inject"] is None
        totals = manifest["totals"]
        assert totals["ok"] == totals["jobs"] == len(config.ref_seeds)
        assert totals["failed"] == totals["timeout"] == 0
        assert totals["skipped"] == totals["retries_used"] == 0
        assert totals["journal_hits"] == totals["quarantined"] == 0
        # v4: per-job artifact counters aggregate into the totals.
        assert totals["artifacts"].get("trace_captures", 0) > 0
        for record in manifest["jobs"]:
            assert record["status"] == "ok"
            assert record["attempts"] == 1
            assert record["error"] is None
            assert isinstance(record["artifacts"], dict)
        # Every completed job was checkpointed as it finished.
        journal = tmp_path / "runs" / "m3.jsonl"
        assert len(journal.read_text().splitlines()) == len(
            config.ref_seeds
        )

    def test_manifest_reports_simulated_kips(self, tmp_path):
        config = RunConfig.quick()
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        engine.run_benchmark("h264ref", config)
        path = tmp_path / "run_manifest.json"
        engine.write_manifest(path, config=config)
        manifest = json.loads(path.read_text())
        assert manifest["totals"]["committed_instructions"] > 0
        assert manifest["totals"]["sim_kips"] > 0
        for record in manifest["jobs"]:
            assert record["committed_instructions"] > 0
            assert record["sim_kips"] > 0

    def test_profile_env_writes_summaries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_benchmark("h264ref", RunConfig.quick())
        assert len(engine.profiles) == 1
        label, text = engine.profiles[0]
        assert "h264ref" in label
        assert "cumulative" in text

        engine.write_manifest(tmp_path / "run_manifest.json")
        profile_path = tmp_path / "run_manifest.profile.txt"
        assert "cumulative" in profile_path.read_text()

    def test_profile_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_benchmark("h264ref", RunConfig.quick())
        assert engine.profiles == []


class TestQuickConfig:
    def test_quick_scales_every_budget(self):
        full, quick = RunConfig(), RunConfig.quick()
        assert quick.iterations < full.iterations
        assert len(quick.ref_seeds) < len(full.ref_seeds)
        assert quick.max_instructions < full.max_instructions
        # The instruction budget shrinks in step with the iteration count,
        # so "quick" can never simulate a full-length program.
        assert quick.max_instructions / full.max_instructions == pytest.approx(
            quick.iterations / full.iterations, rel=0.05
        )
