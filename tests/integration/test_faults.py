"""Engine robustness under faults: isolation, retries, checkpoints.

Every scenario the supervision layer claims to survive is exercised
here at quick scale with ``jobs=2``, driven either by real misbehaving
workers (raise / ``os._exit`` / sleep) or by the deterministic
fault-injection harness (``REPRO_FAULT_INJECT``) -- no flaky sleeps,
no random kill signals.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments import ExperimentEngine, RunConfig
from repro.experiments.engine import CACHE_SCHEMA, MANIFEST_SCHEMA
from repro.experiments.faults import FaultPlan, parse_plan

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def _fault_free_fast_retries(monkeypatch):
    """No backoff sleeps, and no fault plan leaking in from the caller's
    environment; tests that want injection set REPRO_FAULT_INJECT."""
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_HANG_S", raising=False)


# -- engine-mappable workers (top level so they pickle) --------------------

def _square_job(payload) -> dict:
    return {
        "value": payload * payload,
        "simulated_cycles": 10,
        "committed_instructions": 10,
    }


def _odd_boom_job(payload) -> dict:
    """Deterministic worker exception on odd payloads."""
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return {"value": payload}


def _die_once_job(payload) -> dict:
    """Kills its worker process the first time each payload runs
    (simulating an OOM kill); succeeds on the retry.  The marker file
    is how an attempt survives the process death."""
    marker_dir, value = payload
    marker = pathlib.Path(marker_dir) / f"{value}.died"
    if not marker.exists():
        marker.write_text("died")
        os._exit(3)
    return {"value": value}


def _always_die_job(payload) -> dict:
    os._exit(3)


def _sleep_job(payload) -> dict:
    time.sleep(payload)
    return {"value": payload}


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = parse_plan("crash:0.2,hang:0.1,corrupt_cache:0.1@seed=7")
        assert plan.rates == {
            "crash": 0.2, "hang": 0.1, "corrupt_cache": 0.1,
        }
        assert plan.seed == 7
        assert parse_plan(plan.spec()) == plan

    def test_parse_rejects_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError):
            parse_plan("meteor:0.5")
        with pytest.raises(ValueError):
            parse_plan("crash:1.5")
        assert parse_plan("") is None
        assert parse_plan("   ") is None

    def test_decide_is_deterministic_and_seeded(self):
        plan = FaultPlan({"crash": 0.5}, seed=7)
        labels = [f"job{i}" for i in range(64)]
        first = [plan.decide("crash", label, 0) for label in labels]
        again = [plan.decide("crash", label, 0) for label in labels]
        assert first == again
        assert any(first) and not all(first)  # rate 0.5 actually mixes
        other = FaultPlan({"crash": 0.5}, seed=8)
        assert first != [plan_decide for plan_decide in (
            other.decide("crash", label, 0) for label in labels
        )]

    def test_rate_extremes(self):
        always = FaultPlan({"crash": 1.0}, seed=1)
        never = FaultPlan({"crash": 0.0}, seed=1)
        for label in ("a", "b", "c"):
            assert always.decide("crash", label, 0)
            assert not never.decide("crash", label, 0)

    def test_plane_fault_kinds_parse(self):
        plan = parse_plan("shm_leak:1.0,batch_die:0.5@seed=3")
        assert plan.rates == {"shm_leak": 1.0, "batch_die": 0.5}
        assert parse_plan(plan.spec()) == plan


class TestWorkerExceptionIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raise_is_recorded_not_raised(self, jobs):
        engine = ExperimentEngine(jobs=jobs, use_cache=False, retries=2)
        results = engine.map(
            _odd_boom_job, [0, 1, 2, 3],
            labels=[f"boom{i}" for i in range(4)],
        )
        assert results == [{"value": 0}, None, {"value": 2}, None]
        statuses = [r["status"] for r in engine.records]
        assert statuses == ["ok", "failed", "ok", "failed"]
        failed = engine.failures
        assert len(failed) == 2
        for record in failed:
            # Deterministic failures are never retried.
            assert record["attempts"] == 1
            assert record["error"]["type"] == "ValueError"
            assert "odd payload" in record["error"]["message"]
            assert "ValueError" in record["error"]["traceback"]


class TestBrokenPool:
    def test_dead_worker_is_retried_and_succeeds(self, tmp_path):
        payloads = [(str(tmp_path), i) for i in range(4)]
        engine = ExperimentEngine(jobs=2, use_cache=False, retries=2)
        results = engine.map(
            _die_once_job, payloads,
            labels=[f"die{i}" for i in range(4)],
        )
        assert results == [{"value": i} for i in range(4)]
        assert all(r["status"] == "ok" for r in engine.records)
        # Every payload died exactly once, so at least the direct victim
        # of each pool death carries a charged retry.
        assert max(r["attempts"] for r in engine.records) >= 2

    def test_retries_exhausted_records_broken_pool(self):
        engine = ExperimentEngine(jobs=2, use_cache=False, retries=1)
        results = engine.map(
            _always_die_job, [0], labels=["hopeless"]
        )
        assert results == [None]
        (record,) = engine.records
        assert record["status"] == "failed"
        assert record["attempts"] == 2  # initial try + 1 retry
        assert record["error"]["type"] == "BrokenProcessPool"

    def test_mid_batch_death_spares_other_jobs(self, tmp_path):
        """A pool death mid-batch must not lose the independent jobs
        that were merely co-resident in the dying pool."""
        payloads = [(str(tmp_path), 0), (str(tmp_path), 1)]
        engine = ExperimentEngine(jobs=2, use_cache=False, retries=3)
        results = engine.map(
            _die_once_job, payloads, labels=["a", "b"]
        )
        assert results == [{"value": 0}, {"value": 1}]


class TestTimeouts:
    def test_watchdog_kills_overrunning_job(self):
        engine = ExperimentEngine(
            jobs=2, use_cache=False, retries=0, job_timeout=0.5
        )
        start = time.monotonic()
        results = engine.map(
            _sleep_job, [30.0, 0.05], labels=["slow", "fast"]
        )
        elapsed = time.monotonic() - start
        assert results[0] is None and results[1] == {"value": 0.05}
        assert [r["status"] for r in engine.records] == ["timeout", "ok"]
        assert engine.records[0]["error"]["type"] == "TimeoutError"
        assert elapsed < 10.0  # nowhere near the 30s sleep

    def test_injected_hang_hits_the_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:1.0@seed=3")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
        engine = ExperimentEngine(
            jobs=2, use_cache=False, retries=0, job_timeout=0.4
        )
        results = engine.map(_sleep_job, [0.0, 0.0], labels=["a", "b"])
        assert results == [None, None]
        assert all(r["status"] == "timeout" for r in engine.records)

    def test_injected_hang_serial_degrades_to_timeout_status(
        self, monkeypatch
    ):
        """jobs=1 cannot host a real hang (it would hang the test), so
        the harness degrades it to an InjectedHang exception which the
        engine still classifies as a timeout."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:1.0@seed=3")
        engine = ExperimentEngine(jobs=1, use_cache=False)
        results = engine.map(_sleep_job, [0.0], labels=["a"])
        assert results == [None]
        assert engine.records[0]["status"] == "timeout"


class TestCacheIntegrity:
    def _seed_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        (result,) = engine.map(_square_job, [3], labels=["sq3"])
        (entry,) = tmp_path.glob("*.json")
        return result, entry

    def _reload(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        (result,) = engine.map(_square_job, [3], labels=["sq3"])
        return engine, result

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda text: text[: len(text) // 2],          # truncated JSON
            lambda text: json.dumps({"schema": 999, "result": {}}),
            lambda text: json.dumps({"schema": CACHE_SCHEMA}),  # no result
            lambda text: json.dumps(
                {"schema": CACHE_SCHEMA, "result": "not-a-dict"}
            ),
        ],
        ids=["truncated", "stale-schema", "missing-result", "bad-result"],
    )
    def test_bad_entry_quarantined_and_recomputed(self, tmp_path, mangle):
        first, entry = self._seed_cache(tmp_path)
        entry.write_text(mangle(entry.read_text()))
        engine, second = self._reload(tmp_path)
        assert second == first
        assert engine.cache_quarantined == 1
        assert engine.cache_hits == 0 and engine.cache_misses == 1
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [entry.name]

    def test_injected_corruption_round_trip(self, tmp_path, monkeypatch):
        """corrupt_cache faults poison the write; the validated read
        quarantines the damage and recomputes bit-identical results."""
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "corrupt_cache:1.0@seed=1"
        )
        first, entry = self._seed_cache(tmp_path)
        with pytest.raises(ValueError):
            json.loads(entry.read_text())  # really was corrupted
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        engine, second = self._reload(tmp_path)
        assert second == first == {
            "value": 9, "simulated_cycles": 10,
            "committed_instructions": 10,
        }
        assert engine.cache_quarantined == 1


class TestCrashInjectionSmoke:
    """Fast smoke of the whole loop: injected crashes at a fixed seed
    fail exactly the planned jobs, and nothing else."""

    def test_exactly_the_planned_jobs_fail(self, monkeypatch):
        spec = "crash:0.5@seed=7"
        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        plan = parse_plan(spec)
        labels = [f"smoke{i}" for i in range(6)]
        engine = ExperimentEngine(jobs=2, use_cache=False, retries=2)
        results = engine.map(_square_job, list(range(6)), labels=labels)
        expected = [plan.decide("crash", label, 0) for label in labels]
        assert any(expected) and not all(expected)
        observed = [r["status"] == "failed" for r in engine.records]
        assert observed == expected
        for record, crashed in zip(engine.records, expected):
            if crashed:
                assert record["error"]["type"] == "InjectedCrash"
                assert record["attempts"] == 1  # deterministic: no retry
        assert [r is None for r in results] == expected


class TestBatchDispatchFaults:
    """Fused follower batches under injection: a worker death between
    batch points loses only the unfinished tail (the spool absorbs the
    completed prefix), and every point still checkpoints individually."""

    def test_batch_die_retries_only_unfinished_points(
        self, tmp_path, monkeypatch
    ):
        spec = "batch_die:0.4@seed=11"
        payloads = list(range(10))
        labels = [f"bd{i}" for i in payloads]
        groups = ["g1"] * 5 + ["g2"] * 5
        # Leaders (the first pending member of each group) run solo and
        # cannot batch_die; the seed is chosen so at least one follower
        # does on its first attempt.
        plan = parse_plan(spec)
        followers = labels[1:5] + labels[6:]
        assert any(plan.decide("batch_die", l, 0) for l in followers)

        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=True,
            run_id="bd", retries=3,
        )
        results = engine.map(
            _square_job, payloads, labels=labels, groups=groups
        )
        assert results == [
            {
                "value": i * i,
                "simulated_cycles": 10,
                "committed_instructions": 10,
            }
            for i in payloads
        ]
        assert all(r["status"] == "ok" for r in engine.records)
        assert engine.batches >= 2
        # The deaths charged retries to the unfinished points only;
        # leaders (and spool-absorbed prefix points) stay at 1 attempt.
        assert max(r["attempts"] for r in engine.records) >= 2
        assert min(r["attempts"] for r in engine.records) == 1
        # Per-point checkpointing survives batching: one journal line
        # per sweep point, none duplicated.
        journal = tmp_path / "runs" / "bd.jsonl"
        assert len(journal.read_text().splitlines()) == 10
        # Settled (and recovered) batches remove their spools.
        assert list((tmp_path / "batches").glob("*.jsonl")) == []


class TestInterruptResume:
    def _interrupting_engine(self, tmp_path, after):
        calls = []

        def progress(done, total, label):
            calls.append(label)
            if done == after:
                raise KeyboardInterrupt

        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=True,
            run_id="test-run", progress=progress,
        )
        return engine

    def test_interrupt_checkpoints_then_resume_finishes(self, tmp_path):
        payloads = list(range(5))
        labels = [f"sq{i}" for i in payloads]

        engine = self._interrupting_engine(tmp_path, after=2)
        engine.manifest_path = tmp_path / "partial_manifest.json"
        with pytest.raises(KeyboardInterrupt):
            engine.map(_square_job, payloads, labels=labels)

        # Completed jobs hit the cache and journal the moment they
        # finished; the interrupted rest is recorded as skipped.
        assert [r["status"] for r in engine.records] == [
            "ok", "ok", "skipped", "skipped", "skipped",
        ]
        assert len(list(tmp_path.glob("*.json"))) == 2 + 1  # + manifest
        journal = tmp_path / "runs" / "test-run.jsonl"
        entries = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        assert [e["label"] for e in entries] == ["sq0", "sq1"]
        assert all(e["status"] == "ok" for e in entries)

        partial = json.loads(engine.manifest_path.read_text())
        assert partial["schema"] == MANIFEST_SCHEMA
        assert partial["totals"]["ok"] == 2
        assert partial["totals"]["skipped"] == 3

        # Resume replays the journal (cache off, to prove the journal
        # alone suffices) and re-runs only the unfinished jobs.
        resumed = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=False,
            run_id="test-run", resume=True,
        )
        results = resumed.map(_square_job, payloads, labels=labels)
        assert results == [
            {
                "value": i * i,
                "simulated_cycles": 10,
                "committed_instructions": 10,
            }
            for i in payloads
        ]
        assert resumed.journal_hits == 2
        assert resumed.cache_misses == 3
        replayed = [
            r["cache"] for r in resumed.records
        ]
        assert replayed == ["journal", "journal", "miss", "miss", "miss"]

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        journal = tmp_path / "runs" / "torn.jsonl"
        journal.parent.mkdir(parents=True)
        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=False,
            run_id="probe",
        )
        key = engine._cache_key(_square_job, 2)
        good = json.dumps(
            {"key": key, "status": "ok", "result": {"value": 4},
             "wall_s": 0.0}
        )
        journal.write_text(good + "\n" + '{"key": "abc", "stat')
        resumed = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=False,
            run_id="torn", resume=True,
        )
        (result,) = resumed.map(_square_job, [2], labels=["sq2"])
        # Torn line ignored; the good line belongs to run "torn".
        assert result["value"] == 4
        assert resumed.journal_hits == 1


class TestFusedDivergence:
    """``fused_diverge`` faults corrupt one lane's accumulators inside
    a fused sweep pass.  Lane validation must detect the damage, throw
    the whole pass away, replay the sweep per-point (bit-identical to
    an undisturbed run), and count the degradation so the manifest
    records it."""

    def _sweep_setup(self, tmp_path, monkeypatch):
        import dataclasses as dc

        from repro.experiments.artifacts import ArtifactStore
        from repro.experiments.harness import prepare_benchmark

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = dc.replace(RunConfig.quick(), widths=(2, 4, 8))
        baseline, _ = prepare_benchmark(
            "h264ref", config.ref_seeds[0], config
        )
        machines = [config.machine_for(w) for w in config.widths]
        return config, baseline.program, machines

    def test_detection_falls_back_per_point(self, tmp_path, monkeypatch):
        import dataclasses as dc

        from repro.experiments.artifacts import ArtifactStore

        config, program, machines = self._sweep_setup(
            tmp_path, monkeypatch
        )
        store = ArtifactStore(cache_dir=tmp_path)
        clean = store.simulate_inorder_sweep(
            program, machines, max_instructions=config.max_instructions
        )
        # Cold store: capture absorbs the first width, the remaining
        # two lanes score in one fused pass.
        assert store.counters["fused_passes"] == 1
        assert store.counters["fused_points"] == 2
        assert store.counters["fused_diverges"] == 0

        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "fused_diverge:1.0@seed=5"
        )
        faulted = ArtifactStore(cache_dir=tmp_path)
        degraded = faulted.simulate_inorder_sweep(
            program, machines, max_instructions=config.max_instructions
        )
        # Warm trace: all three lanes fuse, the injected lane trips
        # validation, and the pass degrades to per-point replay.
        assert faulted.counters["fused_diverges"] == 1
        assert faulted.counters["fused_fallbacks"] == 1
        assert faulted.counters["fused_passes"] == 0
        for a, b in zip(clean, degraded):
            assert dc.asdict(a.stats) == dc.asdict(b.stats)
            assert a.registers == b.registers
            assert a.memory.snapshot() == b.memory.snapshot()

    def test_manifest_records_degradation(self, tmp_path, monkeypatch):
        import dataclasses as dc

        # Three widths so a fused pass still happens after trace
        # capture absorbs the first one.
        config = dc.replace(RunConfig.quick(), widths=(2, 4, 8))
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "fused_diverge:1.0@seed=5"
        )
        engine = ExperimentEngine(
            jobs=1, cache_dir=tmp_path, use_cache=False, run_id="fd"
        )
        outcomes = engine.run_benchmarks(["h264ref"], config)
        assert all(o.ok for o in outcomes)
        manifest = engine.manifest(config)
        art = manifest["totals"]["artifacts"]
        assert art.get("fused_diverges", 0) >= 1
        assert art.get("fused_fallbacks", 0) >= 1
        assert manifest["totals"]["fused_passes"] == 0
        assert manifest["totals"]["fused_points"] == 0

        # The degraded sweep is invisible in the numbers: a clean run
        # scores identically.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        clean = ExperimentEngine(jobs=1, use_cache=False).run_benchmarks(
            ["h264ref"], config
        )
        clean_manifest_free = clean  # same shapes, no faults
        for a, b in zip(outcomes, clean_manifest_free):
            assert a.ok and b.ok
            assert a.speedups == b.speedups
            assert vars(a.metrics) == vars(b.metrics)


class TestBenchmarkSweepAcceptance:
    """The ISSUE acceptance scenario at quick scale: a crash-injected
    sweep marks exactly the planned failures in a schema-3 manifest,
    and --resume with faults off re-runs only the failed jobs,
    producing results identical to an undisturbed run."""

    def test_faulted_sweep_then_resume_matches_clean_run(
        self, tmp_path, monkeypatch
    ):
        config = RunConfig.quick()
        names = ["h264ref", "omnetpp"]
        spec = "crash:0.5@seed=2"  # fails omnetpp@seed1, spares h264ref
        plan = parse_plan(spec)
        labels = [
            f"{name}@seed{seed}"
            for name in names for seed in config.ref_seeds
        ]
        expected_failures = [
            label for label in labels
            if plan.decide("crash", label, 0)
        ]
        assert expected_failures  # seed chosen so the fault fires

        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=True,
            run_id="sweep", retries=2,
        )
        outcomes = engine.run_benchmarks(names, config)
        manifest = engine.manifest(config)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["engine"]["fault_inject"] == plan.spec()
        failed_labels = [
            r["label"] for r in manifest["jobs"]
            if r["status"] != "ok"
        ]
        assert failed_labels == expected_failures
        by_name = dict(zip(names, outcomes))
        assert by_name["h264ref"].ok
        assert not by_name["omnetpp"].ok
        assert by_name["omnetpp"].status == "failed"
        assert "InjectedCrash" in by_name["omnetpp"].error

        # Resume with faults off: only the failed job re-runs.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        resumed = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=False,
            run_id="sweep", resume=True,
        )
        resumed_outcomes = resumed.run_benchmarks(names, config)
        assert resumed.journal_hits == len(labels) - len(expected_failures)
        assert resumed.cache_misses == len(expected_failures)

        clean = ExperimentEngine(jobs=1, use_cache=False).run_benchmarks(
            names, config
        )
        for a, b in zip(resumed_outcomes, clean):
            assert a.ok and b.ok
            assert a.name == b.name
            assert a.speedups == b.speedups
            assert vars(a.metrics) == vars(b.metrics)
            assert a.converted == b.converted
