"""Experiment runners in quick mode: shapes, not magnitudes."""

import pytest

from repro.experiments import RunConfig, run_benchmark
from repro.experiments.ablations import (
    dbb_occupancy,
    hoist_depth_sweep,
    push_down_ablation,
    selection_threshold_sweep,
)
from repro.experiments.pred_vs_bias import run as run_pred_vs_bias
from repro.experiments.sensitivity import LADDER, run as run_sensitivity
from repro.experiments.side_effects import run_icache, run_issue_increase
from repro.experiments.speedups import FIGURES, run_figure
from repro.experiments.taxonomy import run as run_taxonomy
from repro.core import BranchClass

QUICK = RunConfig.quick()


class TestHarness:
    def test_run_benchmark_shape(self):
        outcome = run_benchmark("h264ref", QUICK)
        assert outcome.name == "h264ref"
        assert 4 in outcome.speedups
        assert outcome.converted > 0
        assert outcome.forward_branches == 12
        assert outcome.metrics.pbc > 0
        assert len(outcome.metrics.row()) == 9

    def test_best_input_at_least_mean(self):
        config = RunConfig(iterations=250, ref_seeds=(1, 2))
        outcome = run_benchmark("perlbench", config)
        assert outcome.best_input_speedup(4) >= outcome.mean_speedup(4) - 1e-9


class TestFigures:
    def test_figure_table_complete(self):
        assert set(FIGURES) == {
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"
        }

    def test_fig8_quick(self):
        config = RunConfig(iterations=200, ref_seeds=(1,), widths=(4,))
        figure = run_figure("fig8", config)
        assert len(figure.series[4]) == 12
        text = figure.render()
        assert "int2006" in text and "geomean" in text

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")


class TestPredVsBias:
    def test_curves_have_expected_shape(self):
        curve = run_pred_vs_bias("int2006", stream_length=600)
        assert len(curve.ranks) == 75
        # Head: high bias, curves close together.
        assert curve.bias[0] > 0.9
        assert abs(curve.predictability[0] - curve.bias[0]) < 0.05
        # Tail: bias dives, predictability stays above it.
        assert curve.bias[-1] < 0.75
        assert curve.predictability[-1] > curve.bias[-1]
        assert curve.crossover_rank() is not None

    def test_fp_suite_also_shaped(self):
        curve = run_pred_vs_bias("fp2006", stream_length=600)
        assert curve.predictability[-1] > curve.bias[-1]


class TestTaxonomy:
    def test_census_covers_all_quadrants_sanely(self):
        result = run_taxonomy("int2006", config=QUICK)
        totals = result.totals()
        assert totals[BranchClass.SUPERBLOCK] > 0
        assert totals[BranchClass.DECOMPOSE] > 0
        assert totals[BranchClass.PREDICATE] > 0
        text = result.render()
        assert "TOTAL" in text


class TestSensitivity:
    def test_ladder_ordering(self):
        names = [name for name, _ in LADDER]
        assert names[0] == "bimodal" and names[-1] == "isl-tage-64KB"

    def test_quick_run_produces_points(self):
        result = run_sensitivity(benchmarks=("astar",), config=QUICK)
        assert len(result.points) == len(LADDER)
        # Quick runs are too short for the big predictors to warm up, so
        # only structural sanity is asserted here; the ordering claim is
        # exercised at full scale by the benchmark harness.
        for point in result.points:
            assert 0.0 <= point.mispredict_rate <= 100.0
        assert isinstance(result.slope("astar"), float)
        assert "sensitivity" in result.render().lower()


class TestSideEffects:
    def test_issue_increase_small(self):
        result = run_issue_increase(QUICK, suites=("int2006",))
        assert len(result.values) == 12
        # The paper reports small overheads (INT under ~1-3%).
        assert result.mean_increase() < 10.0
        assert result.mean_increase() > -1.0

    def test_icache_study(self):
        result = run_icache(QUICK)
        assert len(result.shrink_slowdowns) == 12
        # <0.5% geomean in the paper; allow simulator slack.
        assert result.geomean_slowdown() < 2.0
        assert 0 < result.mean_piscs() < 25.0
        assert "6.1" in result.render()


class TestAblations:
    def test_hoist_depth_monotone_tendency(self):
        sweep = hoist_depth_sweep("omnetpp", depths=(0, 12), config=QUICK)
        assert sweep[0][1] <= sweep[1][1] + 0.5

    def test_threshold_sweep_counts(self):
        sweep = selection_threshold_sweep(
            "h264ref", thresholds=(0.01, 0.30), config=QUICK
        )
        assert sweep[0][1] >= sweep[1][1]  # looser threshold converts more

    def test_push_down_variants_run(self):
        result = push_down_ablation("omnetpp", config=QUICK)
        assert set(result) == {"with-push-down", "without"}

    def test_dbb_occupancy_small(self):
        occupancy = dbb_occupancy("h264ref", sizes=(16,), config=QUICK)
        assert occupancy[0][1] <= 16
