"""Verifier sweep over real SPEC-calibrated workloads.

For a representative slice of the benchmark table, run the full
experimental pipeline and then the independent verifier: structural
predict/resolve invariants plus differential execution under adversarial
prediction policies."""

import pytest

from repro.compiler import compile_baseline, compile_decomposed
from repro.core import verify
from repro.workloads import spec_benchmark

#: One benchmark per interesting class: high-PBC INT, chase-heavy INT,
#: DRAM-bound INT, FP, SPEC2000.
SWEEP = ("h264ref", "omnetpp", "mcf", "wrf", "vortex00", "art00")


@pytest.mark.parametrize("name", SWEEP)
def test_transformed_benchmark_verifies(name):
    # 600 iterations (the paper-default scale): enough profiling signal
    # for every sweep member's selection heuristic to fire (mcf/wrf
    # candidates are borderline).
    spec = spec_benchmark(name, iterations=600)
    func = spec.build(seed=1)
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)
    if decomposed.transform.converted == 0:
        pytest.skip(f"{name}: nothing converted at this scale")
    report = verify(func, decomposed.function)
    assert report.ok, report.errors
    assert report.predicts_checked == decomposed.transform.converted
