"""The warm-worker execution plane: shared-memory traces, batched
dispatch, and the leak-proof segment lifecycle.

Unit-level tests drive ``repro.experiments.plane`` directly under a
hand-set run prefix; engine-level tests run real 2-process pools whose
workers share a tiny trace through the artifact store, so publish /
attach, batch fusion, respawn remapping, and run-end cleanup are
exercised the same way production sweeps exercise them.
"""

from __future__ import annotations

import json
import os
import pathlib
from array import array

import pytest

from repro.experiments import ExperimentEngine
from repro.experiments import plane
from repro.experiments.artifacts import ArtifactStore, default_store
from repro.experiments.engine import MANIFEST_SCHEMA
from repro.uarch.trace import Trace

pytestmark = pytest.mark.skipif(
    not plane.shm_available(), reason="no multiprocessing.shared_memory"
)

#: Content-style keys (any 64 hex chars); one per artifact group.
KEY_A = "ab" * 32
KEY_B = "cd" * 32


@pytest.fixture(autouse=True)
def _clean_plane_env(monkeypatch):
    """No fault plans, knobs, or prefixes leaking in from the caller's
    environment; tests that want them set them explicitly."""
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    for name in (
        "REPRO_FAULT_INJECT", "REPRO_SHM", "REPRO_BATCH", plane.PREFIX_ENV,
    ):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture
def prefix(monkeypatch):
    """A fresh run-scoped prefix, activated the way the engine does it
    (via the environment) and always swept at teardown."""
    value = plane.new_prefix()
    monkeypatch.setenv(plane.PREFIX_ENV, value)
    yield value
    plane.cleanup_run(value)


def _tiny_trace(events: int = 64, name: str = "plane-test") -> Trace:
    """A hand-built trace with distinctive values in every column."""
    meta = {
        "schema": 1,
        "program": KEY_A,
        "name": name,
        "budget": events,
        "predictor": None,
        "has_decomposed": False,
        "committed": events,
        "halted": True,
        "faults_suppressed": 0,
        "registers": [0] * 8,
        "memory": [[16, 42]],
    }
    branches = events // 2
    loads = events // 4
    return Trace(
        meta,
        pcs=array("i", range(events)),
        branch_pred=bytearray(i % 2 for i in range(branches)),
        branch_taken=bytearray((i + 1) % 2 for i in range(branches)),
        predict_taken=bytearray(i % 3 == 0 for i in range(branches)),
        resolve_diverted=bytearray(i % 5 == 0 for i in range(branches)),
        load_addrs=array("q", (i * 8 for i in range(loads))),
        load_suppressed=bytearray(loads),
        store_addrs=array("q", (i * 16 for i in range(loads))),
        ret_targets=array("i", [3, 1]),
    )


# -- engine-mappable workers (top level so they pickle) --------------------

def _trace_sharing_job(payload) -> dict:
    """Load-or-capture the group's shared trace through the store."""
    key, value = payload
    store = default_store()
    trace = store.load_trace(key)
    if trace is None:
        trace = _tiny_trace(name=key[:8])
        store.store_trace(key, trace)
    return {
        "value": value * value,
        "committed": int(trace.meta["committed"]),
        "simulated_cycles": 10,
        "committed_instructions": 10,
    }


def _fragile_trace_job(payload) -> dict:
    """Shares a trace, then dies once per payload (the marker-file
    pattern from test_faults) to force a pool respawn."""
    marker_dir, key, value, die_once = payload
    result = _trace_sharing_job((key, value))
    if die_once:
        marker = pathlib.Path(marker_dir) / f"{value}.died"
        if not marker.exists():
            marker.write_text("died")
            os._exit(3)
    return result


class TestSegmentRoundtrip:
    def test_publish_then_attach_is_bit_identical(self, prefix):
        trace = _tiny_trace()
        name = plane.publish_trace(KEY_A, trace)
        assert name == plane.segment_name(prefix, KEY_A)
        assert plane.list_segments(prefix) == [name]

        attached = plane.attach_trace(KEY_A)
        assert attached is not None
        assert attached.meta == trace.meta
        # Same serialised container byte-for-byte: every column and the
        # meta block survived the shared-memory round trip.
        assert attached.to_bytes() == trace.to_bytes()

    def test_create_race_loser_returns_none(self, prefix):
        assert plane.publish_trace(KEY_A, _tiny_trace()) is not None
        assert plane.publish_trace(KEY_A, _tiny_trace()) is None
        assert len(plane.list_segments(prefix)) == 1

    def test_absent_key_attaches_as_none(self, prefix):
        assert plane.attach_trace(KEY_B) is None

    def test_unready_segment_reads_as_absent(self, prefix):
        """A segment created but not yet published (no magic) must look
        absent, not corrupt: the reader falls back to disk."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            name=plane.segment_name(prefix, KEY_A), create=True, size=64
        )
        plane._unregister(shm)
        shm.close()
        assert plane.attach_trace(KEY_A) is None

    def test_knob_disables_the_plane(self, prefix, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert plane.active_prefix() is None
        assert plane.publish_trace(KEY_A, _tiny_trace()) is None
        assert plane.attach_trace(KEY_A) is None
        assert plane.list_segments(prefix) == []

    def test_cleanup_unlinks_but_attached_views_survive(self, prefix):
        trace = _tiny_trace()
        plane.publish_trace(KEY_A, trace)
        attached = plane.attach_trace(KEY_A)
        assert plane.cleanup_run(prefix) == 1
        assert plane.list_segments(prefix) == []
        # Linux keeps the mapping valid for attached processes after
        # the unlink; the trace's columns must remain readable.
        assert int(attached.column("pcs").sum()) == sum(range(64))
        assert attached.to_bytes() == trace.to_bytes()


class TestStoreIntegration:
    def test_store_publishes_and_fresh_store_attaches(
        self, prefix, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = ArtifactStore(cache_dir=tmp_path)
        trace = _tiny_trace()
        store.store_trace(KEY_A, trace)
        assert store.counters["shm_publishes"] == 1
        assert plane.list_segments(prefix) == [
            plane.segment_name(prefix, KEY_A)
        ]

        # A different process's store (modelled by a fresh instance with
        # a cold LRU) maps the segment instead of re-inflating the disk
        # container.
        other = ArtifactStore(cache_dir=tmp_path)
        mark = other.mark()
        loaded = other.load_trace(KEY_A)
        delta = other.delta(mark)
        assert delta.get("shm_attaches") == 1
        assert delta.get("trace_hits") == 1
        assert loaded.to_bytes() == trace.to_bytes()

    def test_disk_hit_republishes_after_sweep(
        self, prefix, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        trace = _tiny_trace()
        ArtifactStore(cache_dir=tmp_path).store_trace(KEY_A, trace)
        plane.cleanup_run(prefix)

        fresh = ArtifactStore(cache_dir=tmp_path)
        mark = fresh.mark()
        reloaded = fresh.load_trace(KEY_A)
        # The disk hit repopulated the plane for subsequent siblings.
        assert fresh.delta(mark).get("shm_publishes") == 1
        assert plane.list_segments(prefix) != []
        assert reloaded.to_bytes() == trace.to_bytes()


class TestBatchedDispatch:
    def _sweep(self, cache_dir, monkeypatch, batch, shm, **engine_kw):
        """Two 3-point artifact groups over a 2-process pool."""
        monkeypatch.setenv("REPRO_BATCH", batch)
        monkeypatch.setenv("REPRO_SHM", shm)
        engine = ExperimentEngine(
            jobs=2, cache_dir=cache_dir, use_cache=True, **engine_kw
        )
        keys = [KEY_A, KEY_B]
        payloads = [(keys[i // 3], i) for i in range(6)]
        groups = [keys[i // 3] for i in range(6)]
        labels = [f"pt{i}" for i in range(6)]
        results = engine.map(
            _trace_sharing_job, payloads, labels=labels, groups=groups
        )
        return engine, results

    def test_batched_matches_per_job_bit_for_bit(
        self, tmp_path, monkeypatch
    ):
        batched, a = self._sweep(tmp_path / "a", monkeypatch, "1", "1")
        plain, b = self._sweep(tmp_path / "b", monkeypatch, "0", "0")
        assert all(r is not None for r in a)
        assert a == b  # plane on+batched == plane off+per-job

        # Per group: the leader runs solo, the 2 followers fuse.
        assert batched.batches == 2
        assert batched.batch_points == 4
        assert any(r["batched"] for r in batched.records)
        assert plain.batches == 0
        assert not any(r["batched"] for r in plain.records)
        assert plain.last_shm_prefix is None

    def test_chunk_cap_splits_groups(self, tmp_path, monkeypatch):
        """REPRO_BATCH=N caps fused chunks; 1-element chunks degrade
        to plain submissions and are not counted as batches."""
        engine, results = self._sweep(tmp_path, monkeypatch, "2", "1")
        assert all(r is not None for r in results)
        # 2 followers per group fit one 2-chunk exactly.
        assert engine.batches == 2
        assert engine.batch_points == 4

    def test_manifest_schema5_plane_fields(self, tmp_path, monkeypatch):
        engine, _ = self._sweep(tmp_path, monkeypatch, "1", "1")
        manifest = engine.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA == 8
        totals = manifest["totals"]
        assert totals["batches"] == 2
        assert totals["batch_points"] == 4
        # One publish per group leader, aggregated from the worker-side
        # counters the envelopes carried home.
        assert totals["artifacts"].get("shm_publishes", 0) == 2
        assert totals["shm_segments_cleaned"] == 2
        workers = manifest["workers"]
        assert workers and all(v["jobs"] >= 1 for v in workers.values())
        assert sum(v["jobs"] for v in workers.values()) == 6
        for record in manifest["jobs"]:
            assert isinstance(record["worker_pid"], int)
            assert record["batched"] in (True, False)

    def test_resume_replays_batched_points_individually(
        self, tmp_path, monkeypatch
    ):
        engine, first = self._sweep(
            tmp_path, monkeypatch, "1", "1", run_id="wp"
        )
        journal = tmp_path / "runs" / "wp.jsonl"
        entries = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        # Batched or not, every point checkpoints as its own line.
        assert len(entries) == 6
        assert all(e["status"] == "ok" for e in entries)

        monkeypatch.setenv("REPRO_BATCH", "1")
        resumed = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=False,
            run_id="wp", resume=True,
        )
        keys = [KEY_A, KEY_B]
        payloads = [(keys[i // 3], i) for i in range(6)]
        second = resumed.map(
            _trace_sharing_job, payloads,
            labels=[f"pt{i}" for i in range(6)],
            groups=[keys[i // 3] for i in range(6)],
        )
        assert second == first
        assert resumed.journal_hits == 6
        assert resumed.batches == 0  # nothing left to dispatch


class TestShmLifecycle:
    def test_run_end_unlinks_every_segment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path, use_cache=True)
        payloads = [(KEY_A, i) for i in range(4)]
        engine.map(
            _trace_sharing_job, payloads,
            labels=[f"p{i}" for i in range(4)], groups=[KEY_A] * 4,
        )
        assert engine.last_shm_prefix is not None
        assert plane.list_segments(engine.last_shm_prefix) == []
        assert engine.shm_segments_cleaned == 1
        # Settled batches also removed their spools.
        assert list((tmp_path / "batches").glob("*.jsonl")) == []

    def test_worker_death_respawn_remaps(self, tmp_path, monkeypatch):
        """A respawned worker has a cold LRU; the published segment
        survives the pool death and the retry maps it zero-copy."""
        payloads = [
            (str(tmp_path), KEY_A, 0, False),
            (str(tmp_path), KEY_A, 1, True),
        ]
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path / "cache", use_cache=False,
            retries=3,
        )
        results = engine.map(
            _fragile_trace_job, payloads,
            labels=["lead", "frail"], groups=[KEY_A, KEY_A],
        )
        assert [r["value"] for r in results] == [0, 1]
        assert all(r["status"] == "ok" for r in engine.records)
        counters = [r["artifacts"] or {} for r in engine.records]
        assert sum(c.get("shm_publishes", 0) for c in counters) >= 1
        assert sum(c.get("shm_attaches", 0) for c in counters) >= 1
        assert plane.list_segments(engine.last_shm_prefix) == []

    def test_interrupt_unlinks_segments(self, tmp_path, monkeypatch):
        def progress(done, total, label):
            if done == 1:
                raise KeyboardInterrupt

        monkeypatch.setenv("REPRO_BATCH", "1")
        engine = ExperimentEngine(
            jobs=2, cache_dir=tmp_path, use_cache=True, progress=progress,
        )
        payloads = [(KEY_A, i) for i in range(4)]
        with pytest.raises(KeyboardInterrupt):
            engine.map(
                _trace_sharing_job, payloads,
                labels=[f"p{i}" for i in range(4)], groups=[KEY_A] * 4,
            )
        # The group leader finished (and published) before the
        # interrupt; the finally-path sweep still unlinked everything.
        assert engine.last_shm_prefix is not None
        assert plane.list_segments(engine.last_shm_prefix) == []
        assert engine.shm_segments_cleaned >= 1

    def test_injected_leak_swept_at_run_end(self, tmp_path, monkeypatch):
        """shm_leak faults abandon a never-ready sibling segment per
        publish -- the namespace sweep must reclaim those too."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "shm_leak:1.0@seed=1")
        monkeypatch.setenv("REPRO_BATCH", "1")
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path, use_cache=True)
        keys = [KEY_A, KEY_B]
        payloads = [(keys[i // 2], i) for i in range(4)]
        results = engine.map(
            _trace_sharing_job, payloads,
            labels=[f"p{i}" for i in range(4)],
            groups=[keys[i // 2] for i in range(4)],
        )
        assert all(r is not None for r in results)
        assert plane.list_segments(engine.last_shm_prefix) == []
        # 2 published traces + 2 abandoned strays, all reclaimed.
        assert engine.shm_segments_cleaned == 4
