"""Seeded chaos tests for the pluggable execution backends.

Everything the queue backend and the blob-store protocol claim to
survive is exercised here deterministically: lease expiry and reclaim,
vanished workers and failover, duplicate completions, torn transfers,
and the circuit breaker that degrades a dead queue to the local pool.
Fault decisions come from ``REPRO_FAULT_INJECT`` seeds (no random kill
signals); small lease TTLs keep the reclaim paths fast.
"""

import os

import pytest

from repro.experiments import ExperimentEngine, RunConfig
from repro.experiments.backends import env_backend
from repro.experiments.engine import MANIFEST_SCHEMA
from repro.experiments.faults import parse_plan
from repro.experiments.store import (
    FileStore,
    QUARANTINE_CAP,
    quarantine_file,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _fast_chaos_env(monkeypatch):
    """Tight queue/store timings and no fault plan leaking in from the
    caller's environment; tests that want injection set the knobs."""
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_QUEUE_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    monkeypatch.setenv("REPRO_LEASE_TTL", "0.4")
    monkeypatch.setenv("REPRO_QUEUE_POLL", "0.02")
    monkeypatch.setenv("REPRO_STORE_BACKOFF", "0.01")


# -- engine-mappable workers (top level so they pickle) --------------------

def _square_job(payload) -> dict:
    return {
        "value": payload * payload,
        "simulated_cycles": 10,
        "committed_instructions": 10,
    }


def _queue_engine(tmp_path, retries=4, jobs=2) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=jobs, cache_dir=tmp_path, use_cache=False,
        retries=retries, backend="queue",
    )


def _squares(n):
    return [
        {
            "value": i * i,
            "simulated_cycles": 10,
            "committed_instructions": 10,
        }
        for i in range(n)
    ]


class TestStoreProtocol:
    def test_put_get_round_trip_with_sidecar(self, tmp_path):
        store = FileStore(tmp_path)
        assert store.put("traces/a.bin", b"payload")
        assert store.contains("traces/a.bin")
        assert (tmp_path / "traces" / "a.bin.sum").is_file()
        assert store.get("traces/a.bin") == b"payload"
        store.delete("traces/a.bin")
        assert not store.contains("traces/a.bin")
        assert not (tmp_path / "traces" / "a.bin.sum").exists()
        assert store.get("traces/a.bin") is None

    def test_pre_sidecar_blob_served_unverified(self, tmp_path):
        (tmp_path / "old.bin").write_bytes(b"legacy")
        store = FileStore(tmp_path)
        assert store.get("old.bin") == b"legacy"

    def test_tampered_blob_quarantined_and_missed(self, tmp_path):
        store = FileStore(tmp_path)
        store.put("t.bin", b"original-bytes")
        (tmp_path / "t.bin").write_bytes(b"tampered-bytes")
        assert store.get("t.bin") is None
        assert store.counters["verify_failures"] == 1
        assert [p.name for p in (tmp_path / "quarantine").iterdir()] \
            == ["t.bin"]
        # The sidecar went with it, so a recapture starts clean.
        assert store.put("t.bin", b"recaptured")
        assert store.get("t.bin") == b"recaptured"

    def test_torn_put_detected_on_read_then_recaptured(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "torn_put:1.0@seed=1")
        store = FileStore(tmp_path)
        assert store.put("torn.bin", b"X" * 64)  # digest full, blob half
        assert (tmp_path / "torn.bin").stat().st_size == 32
        assert store.get("torn.bin") is None  # tear detected
        assert store.counters["verify_failures"] == 1
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert store.put("torn.bin", b"X" * 64)
        assert store.get("torn.bin") == b"X" * 64

    def test_quarantine_uniquifies_collisions(self, tmp_path):
        qdir = tmp_path / "q"
        for round_no in range(3):
            victim = tmp_path / "same-name.bin"
            victim.write_text(f"round {round_no}")
            assert quarantine_file(qdir, victim) is not None
        names = sorted(p.name for p in qdir.iterdir())
        assert len(names) == 3  # nothing clobbered
        assert "same-name.bin" in names
        assert all(n.startswith("same-name.bin") for n in names)

    def test_quarantine_retention_cap(self, tmp_path):
        qdir = tmp_path / "q"
        for i in range(QUARANTINE_CAP + 5):
            victim = tmp_path / f"victim{i:03d}.bin"
            victim.write_text("x")
            quarantine_file(qdir, victim)
        assert len(list(qdir.iterdir())) == QUARANTINE_CAP


class TestQueueBackendClean:
    def test_two_worker_run_completes_and_reports_health(self, tmp_path):
        engine = _queue_engine(tmp_path)
        results = engine.map(
            _square_job, list(range(6)),
            labels=[f"q{i}" for i in range(6)],
        )
        assert results == _squares(6)
        assert all(r["status"] == "ok" for r in engine.records)
        assert engine.backend_degraded == 0
        totals = engine.backend_totals
        assert totals["jobs_submitted"] == 6
        assert totals["completions"] == 6
        assert totals["leases_granted"] >= 6
        assert totals["jobs_done"] == 6
        assert len(engine.backend_workers) == 2
        manifest = engine.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA == 8
        assert manifest["engine"]["backend"] == "queue"
        assert manifest["backend"]["name"] == "queue"
        assert manifest["backend"]["degraded"] == 0
        assert manifest["backend"]["totals"] == totals
        # The run directory is torn down on a clean close.
        assert list((tmp_path / "queue").iterdir()) == []

    def test_env_knob_selects_backend(self, tmp_path, monkeypatch):
        assert env_backend() == "local"
        monkeypatch.setenv("REPRO_BACKEND", "queue")
        assert env_backend() == "queue"
        assert ExperimentEngine(jobs=2, cache_dir=tmp_path).backend \
            == "queue"
        monkeypatch.setenv("REPRO_BACKEND", "carrier-pigeon")
        with pytest.raises(ValueError):
            env_backend()
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=2, backend="carrier-pigeon")


class TestLeaseExpiry:
    def test_dropped_leases_are_reclaimed(self, tmp_path, monkeypatch):
        spec = "lease_expire:0.5@seed=5"
        labels = [f"lq{i}" for i in range(8)]
        plan = parse_plan(spec)
        dropped = [l for l in labels if plan.decide("lease_expire", l, 0)]
        assert dropped and len(dropped) < len(labels)

        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        # lq0 (deterministically) drops its lease five attempts in a
        # row at this seed; the budget must outlast the streak.
        engine = _queue_engine(tmp_path, retries=6)
        results = engine.map(_square_job, list(range(8)), labels=labels)
        assert results == _squares(8)
        assert all(r["status"] == "ok" for r in engine.records)
        assert engine.backend_degraded == 0
        totals = engine.backend_totals
        assert totals["leases_dropped"] >= len(dropped)
        # Every dropped lease was reclaimed by a surviving worker (or
        # resubmitted by the parent); nothing lost, nothing duplicated.
        assert totals["leases_reclaimed"] \
            + totals.get("jobs_resubmitted", 0) >= len(dropped)
        assert totals["completions"] == 8


class TestWorkerVanish:
    def test_vanished_workers_fail_over(self, tmp_path, monkeypatch):
        # Seed chosen so the (deterministic) death count stays inside
        # the respawn budget: the queue must fail over, not degrade.
        spec = "worker_vanish:0.4@seed=13"
        labels = [f"vq{i}" for i in range(8)]
        plan = parse_plan(spec)
        vanished = [
            l for l in labels if plan.decide("worker_vanish", l, 0)
        ]
        assert vanished and len(vanished) < len(labels)

        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        engine = _queue_engine(tmp_path)
        results = engine.map(_square_job, list(range(8)), labels=labels)
        assert results == _squares(8)
        assert all(r["status"] == "ok" for r in engine.records)
        assert engine.backend_degraded == 0
        totals = engine.backend_totals
        assert totals["worker_deaths"] >= len(vanished)
        assert totals["worker_respawns"] >= 1
        assert totals["completions"] == 8


class TestDuplicateCompletion:
    def test_first_durable_result_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "dup_complete:1.0@seed=1"
        )
        engine = _queue_engine(tmp_path)
        results = engine.map(
            _square_job, list(range(6)),
            labels=[f"dup{i}" for i in range(6)],
        )
        assert results == _squares(6)
        # One record per job -- the duplicate publishes were discarded
        # at the durable os.link boundary, not absorbed twice.
        assert len(engine.records) == 6
        assert all(r["status"] == "ok" for r in engine.records)
        totals = engine.backend_totals
        assert totals["dup_discards"] == 6
        assert totals["completions"] == 6


class TestCircuitBreaker:
    def test_dead_queue_degrades_to_local_pool(
        self, tmp_path, monkeypatch
    ):
        """Every queue worker dies after claiming (vanish at rate 1.0,
        which also holds across retry attempts), so the respawn budget
        runs out and the breaker trips; the engine must finish every
        job on the local pool and record the degradation."""
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "worker_vanish:1.0@seed=1"
        )
        monkeypatch.setenv("REPRO_QUEUE_WORKERS", "1")
        engine = _queue_engine(tmp_path, retries=10)
        results = engine.map(
            _square_job, list(range(4)),
            labels=[f"cb{i}" for i in range(4)],
        )
        assert results == _squares(4)
        assert all(r["status"] == "ok" for r in engine.records)
        assert engine.backend_degraded == 1
        assert engine.backend_totals["worker_deaths"] >= 1
        manifest = engine.manifest()
        assert manifest["backend"]["degraded"] == 1

    def test_spawnless_queue_with_no_workers_degrades(
        self, tmp_path, monkeypatch
    ):
        """REPRO_QUEUE_WORKERS=0 means "external workers will join";
        when none shows up within the grace window the breaker trips
        and the local pool finishes the sweep."""
        monkeypatch.setenv("REPRO_QUEUE_WORKERS", "0")
        monkeypatch.setenv("REPRO_QUEUE_GRACE_S", "0.3")
        engine = _queue_engine(tmp_path)
        results = engine.map(
            _square_job, list(range(3)),
            labels=[f"ng{i}" for i in range(3)],
        )
        assert results == _squares(3)
        assert engine.backend_degraded == 1
        assert all(r["status"] == "ok" for r in engine.records)


class TestBackendEquivalence:
    def test_local_and_queue_produce_identical_results(self, tmp_path):
        payloads = list(range(6))
        labels = [f"eq{i}" for i in range(6)]
        local = ExperimentEngine(
            jobs=2, cache_dir=tmp_path / "l", use_cache=False,
            backend="local",
        )
        queue = _queue_engine(tmp_path / "q")
        local_results = local.map(_square_job, payloads, labels=labels)
        queue_results = queue.map(_square_job, payloads, labels=labels)
        assert local_results == queue_results == _squares(6)
        strip = lambda r: {
            k: r[k] for k in ("label", "status", "attempts", "cache")
        }
        assert [strip(r) for r in local.records] \
            == [strip(r) for r in queue.records]
        assert local.manifest()["engine"]["backend"] == "local"
        assert queue.manifest()["engine"]["backend"] == "queue"


class TestChaosSweepAcceptance:
    """The ISSUE acceptance scenario: a two-worker queue sweep under
    combined lease-expiry and worker-vanish injection completes with
    zero lost or duplicated jobs, its manifest health counters prove
    reclaim/failover actually happened, and the numbers match a clean
    local-backend run exactly."""

    def test_faulted_queue_sweep_matches_clean_local_run(
        self, tmp_path, monkeypatch
    ):
        config = RunConfig.quick()
        names = ["h264ref", "omnetpp"]

        clean = ExperimentEngine(
            jobs=2, cache_dir=tmp_path / "clean", use_cache=False,
            backend="local",
        )
        clean_outcomes = clean.run_benchmarks(names, config)
        assert all(o.ok for o in clean_outcomes)

        # Seed chosen so both kinds (deterministically) fire on the two
        # sweep labels while staying inside the retry/respawn budgets.
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            "lease_expire:0.4,worker_vanish:0.3@seed=16",
        )
        chaos = _queue_engine(tmp_path / "chaos", retries=4)
        chaos_outcomes = chaos.run_benchmarks(names, config)
        manifest = chaos.manifest(config)

        # Zero lost, zero duplicated: one ok record per sweep job.
        assert all(r["status"] == "ok" for r in chaos.records)
        assert len(chaos.records) == len(clean.records)
        totals = manifest["backend"]["totals"]
        assert totals["completions"] == len(chaos.records)
        # The health counters prove the chaos actually bit: hosts died
        # AND leases were silently dropped, and everything failed over.
        assert totals["worker_deaths"] >= 1
        assert totals.get("leases_dropped", 0) >= 1
        assert totals.get("leases_reclaimed", 0) \
            + totals.get("jobs_resubmitted", 0) \
            + totals["worker_respawns"] >= 1

        for a, b in zip(chaos_outcomes, clean_outcomes):
            assert a.ok and b.ok
            assert a.name == b.name
            assert a.speedups == b.speedups
            assert vars(a.metrics) == vars(b.metrics)
            assert a.converted == b.converted
