"""End-to-end behaviour: the headline result on controlled workloads."""

import pytest

from repro import quick_comparison
from repro.compiler import compile_baseline, compile_decomposed
from repro.uarch import InOrderCore, MachineConfig
from repro.workloads import BranchSiteSpec, WorkloadSpec, omnetpp_carray_add


def favourable_spec(iterations=1200):
    """A workload squarely in the paper's sweet spot: one unbiased,
    highly-predictable branch with plenty of hoistable MLP."""
    return WorkloadSpec(
        name="sweetspot",
        suite="test",
        sites=[BranchSiteSpec(bias=0.6, predictability=0.95)],
        iterations=iterations,
        loads_not_taken=4,
        loads_taken=4,
        loads_cond_block=1,
        alu_per_block=3,
        hoist_barrier_frac=0.9,
        cold_code_factor=0.0,
    )


class TestHeadlineResult:
    def test_decomposition_speeds_up_the_sweet_spot(self):
        outcome = quick_comparison(favourable_spec().build(seed=1))
        assert outcome.speedup_percent > 4.0

    def test_architectural_equivalence_in_timing_model(self):
        outcome = quick_comparison(favourable_spec(600).build(seed=1))
        assert (
            outcome.baseline.memory_snapshot()
            == outcome.decomposed.memory_snapshot()
        )

    def test_figure6_kernel_benefits(self):
        outcome = quick_comparison(omnetpp_carray_add(iterations=1024))
        assert outcome.speedup_percent > 0.5

    def test_unpredictable_branch_not_converted_no_harm(self):
        """Predication-class branch: selection skips it, so the
        'transformed' binary is the baseline and costs nothing."""
        spec = WorkloadSpec(
            name="unpred",
            suite="test",
            sites=[BranchSiteSpec(bias=0.55, predictability=0.55,
                                  patterned=False)],
            iterations=400,
            cold_code_factor=0.0,
        )
        func = spec.build(seed=1)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        assert dec.transform.converted == 0
        outcome = quick_comparison(func)
        assert abs(outcome.speedup_percent) < 1.5


class TestWidthSensitivity:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_all_widths_preserve_semantics_and_finish(self, width):
        func = favourable_spec(400).build(seed=1)
        outcome = quick_comparison(
            func, config=MachineConfig.paper_default(width)
        )
        assert outcome.baseline.stats.halted
        assert (
            outcome.baseline.memory_snapshot()
            == outcome.decomposed.memory_snapshot()
        )

    def test_wider_machines_run_faster_baselines(self):
        func = favourable_spec(400).build(seed=1)
        cycles = {}
        for width in (2, 8):
            result = InOrderCore(MachineConfig.paper_default(width)).run(
                compile_baseline(func).program
            )
            cycles[width] = result.cycles
        assert cycles[8] < cycles[2]


class TestMispredictionEconomy:
    def test_low_predictability_erodes_gain(self):
        """Same bias, worse predictability -> smaller (or negative) win;
        the selection threshold exists for a reason."""
        def spd(predictability):
            spec = favourable_spec(800)
            spec.sites = [
                BranchSiteSpec(bias=0.6, predictability=predictability)
            ]
            spec.name = f"p{predictability}"
            return quick_comparison(spec.build(seed=1)).speedup_percent

        assert spd(0.95) > spd(0.78)
