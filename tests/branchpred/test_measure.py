"""Bias/predictability measurement (the Figures 2/3 instrument)."""

from hypothesis import given, settings, strategies as st

from repro.branchpred import (
    BranchStats,
    measure_stream,
    measure_trace,
    misses_per_kilo_instruction,
)


class TestBranchStats:
    def test_bias_is_majority_fraction(self):
        stats = BranchStats(branch_id=0, executions=10, taken=3, correct=8)
        assert stats.bias == 0.7

    def test_predictability(self):
        stats = BranchStats(branch_id=0, executions=10, taken=3, correct=8)
        assert stats.predictability == 0.8

    def test_exposed_predictability(self):
        stats = BranchStats(branch_id=0, executions=10, taken=3, correct=8)
        assert abs(stats.exposed_predictability - 0.1) < 1e-12

    def test_empty_stats(self):
        stats = BranchStats(branch_id=0, executions=0, taken=0, correct=0)
        assert stats.bias == 1.0 and stats.predictability == 1.0

    @given(st.integers(1, 500), st.integers(0, 500))
    def test_bias_at_least_half(self, executions, taken):
        taken = min(taken, executions)
        stats = BranchStats(
            branch_id=0, executions=executions, taken=taken, correct=0
        )
        assert 0.5 <= stats.bias <= 1.0


class TestMeasureStream:
    def test_patterned_stream_predictable_beyond_bias(self):
        outcomes = [True, True, False] * 300
        stats = measure_stream(0, outcomes)
        assert stats.predictability > stats.bias

    def test_counts(self):
        outcomes = [True] * 6 + [False] * 4
        stats = measure_stream(0, outcomes)
        assert stats.executions == 10 and stats.taken == 6


class TestMeasureTrace:
    def test_warmup_excluded_from_stats(self):
        trace = [(0, True)] * 100
        stats = measure_trace(trace, warmup_fraction=0.5)
        assert stats[0].executions == 50

    def test_multiple_sites_separated(self):
        trace = [(0, True), (1, False)] * 50
        stats = measure_trace(trace, warmup_fraction=0.0)
        assert stats[0].taken == 50
        assert stats[1].taken == 0

    def test_shared_predictor_sees_interleaving(self):
        # Warmed-up steady state on trivially-biased branches ~ 100%.
        trace = [(0, True), (1, True)] * 200
        stats = measure_trace(trace)
        assert stats[0].predictability > 0.95
        assert stats[1].predictability > 0.95


class TestMppki:
    def test_zero_instructions(self):
        assert misses_per_kilo_instruction([], 0) == 0.0

    def test_arithmetic(self):
        stats = [BranchStats(branch_id=0, executions=100, taken=50, correct=90)]
        assert misses_per_kilo_instruction(stats, 10_000) == 1.0
