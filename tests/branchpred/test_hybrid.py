"""The PTLSim-style 3-table hybrid (Table 1's default predictor)."""

from repro.branchpred import BimodalPredictor, GSharePredictor, HybridPredictor


def accuracy(predictor, outcomes, branch_id=0):
    return sum(
        predictor.predict_and_train(branch_id, o) for o in outcomes
    ) / len(outcomes)


def test_storage_is_24kb():
    predictor = HybridPredictor()
    assert predictor.storage_bits == 24 * 1024 * 8


def test_biased_branch()  :
    assert accuracy(HybridPredictor(), [True] * 64 + [False] * 4 + [True] * 64) > 0.9


def test_patterned_branch_beats_bimodal():
    outcomes = [True, True, False, False] * 200
    assert accuracy(HybridPredictor(), outcomes) > accuracy(
        BimodalPredictor(), outcomes
    )


def test_chooser_prefers_working_component():
    """A pattern gshare nails but bimodal cannot: the chooser must route
    to gshare and overall accuracy should approach gshare-alone."""
    outcomes = [True, False] * 300
    hybrid = accuracy(HybridPredictor(), outcomes)
    gshare = accuracy(GSharePredictor(), outcomes)
    assert hybrid > 0.85
    assert abs(hybrid - gshare) < 0.1


def test_history_repair_on_mispredict():
    p = HybridPredictor(entries=64, history_bits=6)
    prediction = p.lookup(5)
    p.update(prediction, not prediction.taken)
    assert (p._history & 1) == int(not prediction.taken)


def test_deferred_updates_through_dbb_flow():
    """Lookups pile up before their updates arrive (decomposed branches)."""
    p = HybridPredictor()
    pending = [(p.lookup(3), bool(i % 3)) for i in range(16)]
    for prediction, outcome in pending:
        p.update(prediction, outcome)
    # Still functional afterwards.
    assert 0.0 <= accuracy(p, [True] * 32, branch_id=4) <= 1.0


def test_entries_must_be_power_of_two():
    import pytest

    with pytest.raises(ValueError):
        HybridPredictor(entries=1000)
