"""PAg local predictor and branch-trace persistence."""

import pytest

from repro.branchpred import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    LocalPredictor,
    compare_predictors,
    load_trace,
    replay,
    save_trace,
)


def accuracy(predictor, outcomes, branch_id=0):
    return sum(
        predictor.predict_and_train(branch_id, o) for o in outcomes
    ) / len(outcomes)


class TestLocalPredictor:
    def test_learns_own_period_regardless_of_interleaving(self):
        """The PAg advantage: another branch's outcomes cannot pollute a
        site's local history."""
        predictor = LocalPredictor()
        pattern_a = [True, False, False]
        hits_a = 0
        for i in range(900):
            # Branch 7 is pure noise for gshare's global history.
            predictor.predict_and_train(7, bool(i & 4))
            hits_a += predictor.predict_and_train(1, pattern_a[i % 3])
        assert hits_a / 900 > 0.9

    def test_biased_branch(self):
        assert accuracy(LocalPredictor(), [True] * 200) > 0.95

    def test_power_of_two_validation(self):
        with pytest.raises(ValueError):
            LocalPredictor(history_entries=100)
        with pytest.raises(ValueError):
            LocalPredictor(pattern_entries=100)

    def test_history_repair(self):
        p = LocalPredictor(history_bits=4)
        prediction = p.lookup(3)
        p.update(prediction, not prediction.taken)
        slot = 3 & (1024 - 1)
        assert (p._histories[slot] & 1) == int(not prediction.taken)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = [(0, True), (1, False), (0, True)]
        path = tmp_path / "t.trace"
        assert save_trace(trace, path) == 3
        assert load_trace(path) == trace

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n3 1\n# mid\n4 0\n")
        assert load_trace(path) == [(3, True), (4, False)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("3 maybe\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_measures(self, tmp_path):
        trace = [(0, True)] * 100
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        stats = replay(load_trace(path), HybridPredictor)
        assert stats[0].predictability > 0.9

    def test_compare_predictors_ranks_correctly(self):
        # Period-2 pattern: history predictors dominate bimodal.
        trace = [(0, bool(i & 1)) for i in range(800)]
        scores = compare_predictors(
            trace,
            {
                "bimodal": BimodalPredictor,
                "gshare": GSharePredictor,
                "local": LocalPredictor,
            },
        )
        assert scores["gshare"] > scores["bimodal"]
        assert scores["local"] > scores["bimodal"]
