"""Static / bimodal / gshare predictors."""

from repro.branchpred import (
    BimodalPredictor,
    GSharePredictor,
    StaticTakenPredictor,
)


def accuracy(predictor, outcomes, branch_id=0):
    correct = sum(
        predictor.predict_and_train(branch_id, o) for o in outcomes
    )
    return correct / len(outcomes)


class TestStatic:
    def test_always_taken(self):
        p = StaticTakenPredictor(taken=True)
        assert p.lookup(0).taken is True
        p.update(p.lookup(0), False)  # update is a no-op
        assert p.lookup(0).taken is True

    def test_accuracy_equals_taken_rate(self):
        outcomes = [True] * 70 + [False] * 30
        assert accuracy(StaticTakenPredictor(), outcomes) == 0.70


class TestBimodal:
    def test_learns_a_biased_branch(self):
        outcomes = [True] * 100
        assert accuracy(BimodalPredictor(), outcomes) > 0.95

    def test_hysteresis_survives_single_flip(self):
        p = BimodalPredictor()
        for _ in range(10):
            p.update(p.lookup(0), True)
        p.update(p.lookup(0), False)  # one anomaly
        assert p.lookup(0).taken is True  # 2-bit counter holds

    def test_separate_sites_independent(self):
        p = BimodalPredictor()
        for _ in range(10):
            p.update(p.lookup(0), True)
            p.update(p.lookup(1), False)
        assert p.lookup(0).taken is True
        assert p.lookup(1).taken is False

    def test_power_of_two_required(self):
        import pytest

        with pytest.raises(ValueError):
            BimodalPredictor(entries=1000)


class TestGShare:
    def test_learns_alternating_pattern_bimodal_cannot(self):
        outcomes = [True, False] * 200
        gshare = accuracy(GSharePredictor(), outcomes)
        bimodal = accuracy(BimodalPredictor(), outcomes)
        assert gshare > 0.9
        assert gshare > bimodal

    def test_learns_period_4_pattern(self):
        outcomes = [True, True, True, False] * 200
        assert accuracy(GSharePredictor(), outcomes) > 0.9

    def test_history_speculatively_updated(self):
        p = GSharePredictor()
        before = p.history
        prediction = p.lookup(0)
        assert p.history == ((before << 1) | int(prediction.taken)) & ((1 << 14) - 1)

    def test_history_repaired_on_mispredict(self):
        p = GSharePredictor(entries=64, history_bits=6)
        prediction = p.lookup(0)
        actual = not prediction.taken
        p.update(prediction, actual)
        # History must reflect the true outcome, not the prediction.
        assert (p.history & 1) == int(actual)

    def test_meta_survives_deferred_update(self):
        """The DBB depends on updates being valid long after lookup."""
        p = GSharePredictor()
        pending = [p.lookup(0) for _ in range(4)]
        for prediction in pending:
            p.update(prediction, True)  # trains without raising
        assert accuracy(p, [True] * 50) > 0.9
