"""TAGE and the ISL-TAGE-like predictor (Section 5.3 ladder top)."""

import random

from repro.branchpred import (
    GSharePredictor,
    HybridPredictor,
    IslTagePredictor,
    TagePredictor,
)


def accuracy(predictor, outcomes, branch_id=0):
    return sum(
        predictor.predict_and_train(branch_id, o) for o in outcomes
    ) / len(outcomes)


class TestTage:
    def test_biased_branch(self):
        assert accuracy(TagePredictor(), [True] * 300) > 0.95

    def test_short_pattern(self):
        outcomes = [True, False, False] * 300
        assert accuracy(TagePredictor(), outcomes) > 0.85

    def test_long_period_pattern_beats_gshare(self):
        """A period-48 pattern exceeds gshare's useful history but fits
        TAGE's longer tagged components."""
        pattern = [i % 48 < 31 for i in range(48)]
        outcomes = pattern * 40
        tage = accuracy(TagePredictor(), outcomes)
        gshare = accuracy(GSharePredictor(), outcomes)
        assert tage >= gshare - 0.02

    def test_allocation_on_mispredict(self):
        predictor = TagePredictor(table_bits=6, tag_bits=6)
        outcomes = [bool(i & 1) for i in range(200)]
        first = accuracy(predictor, outcomes)
        second = accuracy(predictor, outcomes)
        assert second >= first  # learned entries persist

    def test_deferred_update_does_not_crash(self):
        predictor = TagePredictor()
        pending = [predictor.lookup(7) for _ in range(8)]
        for prediction in pending:
            predictor.update(prediction, True)


class TestIslTage:
    def test_loop_predictor_learns_fixed_trip_count(self):
        """A loop taken exactly 7 times then not taken -- the classic case
        global history alone struggles with at long trip counts."""
        outcomes = ([True] * 7 + [False]) * 120
        isl = accuracy(IslTagePredictor(), outcomes)
        assert isl > 0.9

    def test_ladder_ordering_on_hard_stream(self):
        """On a mixed stream, ISL-TAGE should do at least as well as the
        hybrid (the paper's Section 5.3 premise)."""
        rng = random.Random(7)
        pattern = [True] * 5 + [False] * 2
        outcomes = []
        for i in range(1400):
            bit = pattern[i % len(pattern)]
            if rng.random() < 0.05:
                bit = not bit
            outcomes.append(bit)
        isl = accuracy(IslTagePredictor(), outcomes)
        hybrid = accuracy(HybridPredictor(), outcomes)
        assert isl >= hybrid - 0.03

    def test_statistical_corrector_inverts_chronically_wrong_sites(self):
        """If TAGE is persistently wrong on a site, the corrector flips."""
        predictor = IslTagePredictor()
        outcomes = [True] * 400
        final_accuracy = accuracy(predictor, outcomes, branch_id=11)
        assert final_accuracy > 0.9
