"""Branch target buffer and return-address stack."""

import pytest

from repro.branchpred import BranchTargetBuffer, ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16)
        assert btb.lookup(100) is None
        btb.insert(100, 200)
        assert btb.lookup(100) == 200
        assert btb.hits == 1 and btb.misses == 1

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(entries=16)
        btb.insert(4, 40)
        btb.insert(4 + 16, 50)  # same index, different tag
        assert btb.lookup(4) is None
        assert btb.lookup(4 + 16) == 50

    def test_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=100)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=8)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(entries=8)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped

    def test_len(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(1)
        assert len(ras) == 1
