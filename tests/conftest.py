"""Shared test helpers: small hand-built programs and IR fragments."""

from __future__ import annotations

import pytest

from repro.ir import FunctionBuilder
from repro.isa import Instruction, Opcode, assemble


def build_diamond(
    bias_data,
    iterations=None,
    hoistable_loads=2,
    branch_id=0,
):
    """A minimal profiled hammock: loop over a data-driven diamond.

    ``bias_data`` is the per-iteration branch condition (sequence of 0/1).
    Block B (not taken) adds 1, block C (taken) adds 2; a store in the
    merge makes every decision architecturally visible.
    """
    iterations = iterations if iterations is not None else len(bias_data)
    fb = FunctionBuilder("diamond")
    fb.data(1000, bias_data)

    init = fb.block("init")
    init.li(1, 0)  # i
    init.li(2, iterations)
    init.li(3, 0)  # acc
    init.block.fallthrough = "A"

    a = fb.block("A")
    a.add(4, 1, imm=1000)
    a.load(5, 4, 0)  # cond word
    for j in range(hoistable_loads):
        a.load(10 + j, 4, offset=100 + j)
    a.cmp_ne(6, 5, imm=0)
    a.bnz(6, target="C", fallthrough="B", branch_id=branch_id)

    b = fb.block("B")
    for j in range(hoistable_loads):
        b.load(12 + j, 4, offset=200 + j)
    b.add(3, 3, imm=1)
    b.store(3, 4, offset=500)
    b.jmp("M")

    c = fb.block("C")
    for j in range(hoistable_loads):
        c.load(12 + j, 4, offset=300 + j)
    c.add(3, 3, imm=2)
    c.store(3, 4, offset=500)
    c.block.fallthrough = "M"

    m = fb.block("M")
    m.block.fallthrough = "tail"

    tail = fb.block("tail")
    tail.add(1, 1, imm=1)
    tail.cmp_lt(7, 1, 2)
    tail.bnz(7, target="A", fallthrough="exit", branch_id=branch_id + 100)

    exit_block = fb.block("exit")
    exit_block.store(3, 4, offset=999)
    exit_block.halt()

    return fb.build()


def tiny_program(*instructions, labels=None, data=None):
    """Assemble a handful of instructions, appending HALT."""
    insts = list(instructions) + [Instruction(opcode=Opcode.HALT)]
    return assemble(insts, labels or {}, data=data or {})


@pytest.fixture
def diamond_function():
    pattern = [1, 0, 1, 1, 0, 1, 0, 0] * 16
    return build_diamond(pattern)
