"""SPEC benchmark parameter tables."""

import pytest

from repro.core import BranchClass, classify_branch
from repro.branchpred import BranchStats
from repro.workloads import (
    BENCHMARKS,
    SUITES,
    site_population,
    spec_benchmark,
    suite_benchmarks,
)


class TestTables:
    def test_all_table2_int_benchmarks_present(self):
        expected = {
            "h264ref", "perlbench", "astar", "omnetpp", "xalancbmk",
            "sjeng", "gobmk", "gcc", "mcf", "bzip2", "hmmer", "libquantum",
        }
        assert set(SUITES["int2006"]) == expected

    def test_all_table2_fp_benchmarks_present(self):
        assert len(SUITES["fp2006"]) == 17
        assert "wrf" in SUITES["fp2006"] and "leslie3d" in SUITES["fp2006"]

    def test_spec2000_suites_full(self):
        assert len(SUITES["int2000"]) == 12
        assert len(SUITES["fp2000"]) == 14

    def test_published_values_preserved(self):
        row = BENCHMARKS["h264ref"].paper
        assert row.spd == 23.1 and row.pbc == 50.2 and row.mppki == 6.7
        row = BENCHMARKS["mcf"].paper
        assert row.aspcb == 107.2 and row.piscs == 6.8

    def test_spec2000_rows_marked_text_derived(self):
        assert BENCHMARKS["vortex00"].paper.from_text
        assert not BENCHMARKS["h264ref"].paper.from_text

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            spec_benchmark("nonesuch")
        with pytest.raises(KeyError):
            suite_benchmarks("int1995")


class TestSitePopulations:
    def test_candidate_fraction_tracks_pbc(self):
        bench = BENCHMARKS["h264ref"]  # PBC 50.2%
        sites = site_population(bench)
        candidates = [s for s in sites if s.heavy]
        assert abs(len(candidates) / len(sites) - 0.502) < 0.15

    def test_low_pbc_has_few_candidates(self):
        bench = BENCHMARKS["hmmer"]  # PBC 10.3%
        candidates = [s for s in site_population(bench) if s.heavy]
        assert len(candidates) <= 2

    def test_candidates_designed_in_decompose_quadrant(self):
        for name in ("h264ref", "omnetpp", "wrf"):
            for site in site_population(BENCHMARKS[name]):
                if not site.heavy:
                    continue
                stats = BranchStats(
                    branch_id=0,
                    executions=1000,
                    taken=round(site.bias * 1000),
                    correct=round(site.predictability * 1000),
                )
                assert classify_branch(stats) is BranchClass.DECOMPOSE

    def test_population_deterministic(self):
        a = site_population(BENCHMARKS["gcc"])
        b = site_population(BENCHMARKS["gcc"])
        assert a == b

    def test_permuted_names_get_distinct_streams(self):
        # The shuffle seed hashes the name order-sensitively: anagram
        # benchmark names must not collide onto the same site ordering
        # (a plain character sum would).
        from dataclasses import replace

        base = BENCHMARKS["gcc"]
        a = site_population(replace(base, name="abc"))
        b = site_population(replace(base, name="cba"))
        assert a != b


class TestSpecMapping:
    def test_aspcb_maps_to_cond_miss(self):
        assert spec_benchmark("mcf").cond_miss == "dram"  # 107 + huge D$
        assert spec_benchmark("omnetpp").cond_miss == "l3"  # 79.8, high D$
        assert spec_benchmark("gcc").cond_miss == "l2"  # 29.5
        assert spec_benchmark("h264ref").cond_miss == "none"  # 21.6

    def test_hoistable_mlp_gate(self):
        # libquantum: ALPBB 0.8 -> no cold loads despite 'mid' D-cache.
        assert spec_benchmark("libquantum").cold_loads_per_block == 0
        # omnetpp passes every gate.
        assert spec_benchmark("omnetpp").cold_loads_per_block > 0

    def test_phi_maps_to_barrier(self):
        assert spec_benchmark("bwaves").hoist_barrier_frac < 0.15
        assert spec_benchmark("hmmer").hoist_barrier_frac > 0.9

    def test_pdih_maps_to_hoist_cap(self):
        assert spec_benchmark("leslie3d").hoist_cap == 1
        assert spec_benchmark("wrf").hoist_cap == 12

    def test_fp_benchmarks_emit_fp(self):
        assert spec_benchmark("wrf").fp_fraction > 0
        assert spec_benchmark("gcc").fp_fraction == 0

    def test_iterations_parameter_respected(self):
        assert spec_benchmark("gcc", iterations=128).iterations == 128

    def test_builds_runnable_program(self):
        from repro.ir import lower
        from repro.uarch import execute

        spec = spec_benchmark("bzip2", iterations=48)
        result = execute(lower(spec.build(seed=0)), max_instructions=200_000)
        assert result.halted
