"""Branch-outcome processes: the bias/predictability decoupling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branchpred import measure_stream
from repro.workloads import BranchSiteSpec, empirical_bias, generate_outcomes


class TestSpecValidation:
    def test_bias_range_enforced(self):
        with pytest.raises(ValueError):
            BranchSiteSpec(bias=0.4, predictability=0.9)
        with pytest.raises(ValueError):
            BranchSiteSpec(bias=1.1, predictability=0.9)

    def test_predictability_range_enforced(self):
        with pytest.raises(ValueError):
            BranchSiteSpec(bias=0.6, predictability=1.5)


class TestTransitionFormula:
    @given(
        bias=st.floats(0.52, 0.95),
        pred=st.floats(0.55, 0.99),
    )
    def test_probabilities_valid(self, bias, pred):
        spec = BranchSiteSpec(bias=bias, predictability=max(pred, bias))
        stay_major, stay_minor = spec.transition_probabilities()
        assert 0.0 <= stay_major <= 1.0
        assert 0.0 <= stay_minor <= 1.0

    def test_closed_form_example(self):
        """b=0.6, p=0.9 -> stay_major=11/12, stay_minor=7/8."""
        spec = BranchSiteSpec(bias=0.6, predictability=0.9)
        stay_major, stay_minor = spec.transition_probabilities()
        assert abs(stay_major - 11 / 12) < 1e-9
        assert abs(stay_minor - 7 / 8) < 1e-9


class TestGeneratedStreams:
    def test_deterministic_per_site_and_seed(self):
        spec = BranchSiteSpec(bias=0.6, predictability=0.9)
        a = generate_outcomes(spec, 500, site_key=7, input_seed=1)
        b = generate_outcomes(spec, 500, site_key=7, input_seed=1)
        assert a == b

    def test_different_inputs_differ(self):
        spec = BranchSiteSpec(bias=0.6, predictability=0.9)
        a = generate_outcomes(spec, 500, site_key=7, input_seed=1)
        b = generate_outcomes(spec, 500, site_key=7, input_seed=2)
        assert a != b

    def test_bias_approximates_target(self):
        spec = BranchSiteSpec(bias=0.6, predictability=0.9)
        outcomes = generate_outcomes(spec, 20_000, site_key=3)
        assert abs(empirical_bias(outcomes) - 0.6) < 0.06

    def test_majority_direction_honoured(self):
        spec = BranchSiteSpec(
            bias=0.8, predictability=0.9, majority_taken=False
        )
        outcomes = generate_outcomes(spec, 5_000, site_key=4)
        taken_rate = sum(outcomes) / len(outcomes)
        assert taken_rate < 0.5

    def test_iid_stream_predictability_collapses_to_bias(self):
        spec = BranchSiteSpec(bias=0.6, predictability=0.6, patterned=False)
        outcomes = generate_outcomes(spec, 8_000, site_key=5)
        stats = measure_stream(0, outcomes)
        assert stats.predictability < stats.bias + 0.05

    def test_patterned_stream_opens_the_gap(self):
        """The paper's whole opportunity: predictability >> bias."""
        spec = BranchSiteSpec(bias=0.58, predictability=0.92)
        outcomes = generate_outcomes(spec, 8_000, site_key=6)
        stats = measure_stream(0, outcomes)
        assert stats.exposed_predictability > 0.15

    @settings(max_examples=15, deadline=None)
    @given(
        bias=st.sampled_from([0.55, 0.6, 0.65, 0.7]),
        pred=st.sampled_from([0.85, 0.9, 0.94]),
        seed=st.integers(0, 100),
    )
    def test_markov_predict_last_accuracy_matches_target(
        self, bias, pred, seed
    ):
        """Property: 'predict the last outcome' achieves ~p on the chain
        (the design equation of the process)."""
        spec = BranchSiteSpec(bias=bias, predictability=pred)
        outcomes = generate_outcomes(spec, 6_000, site_key=seed)
        hits = sum(
            outcomes[i] == outcomes[i - 1] for i in range(1, len(outcomes))
        )
        accuracy = hits / (len(outcomes) - 1)
        assert abs(accuracy - pred) < 0.05
