"""The mcf-style pointer-chase kernel (the transformation's boundary case)."""

from repro.compiler import compile_baseline, compile_decomposed
from repro.ir import lower
from repro.uarch import InOrderCore, MachineConfig, always_taken, execute
from repro.workloads import MCF_SITE, mcf_pointer_chase


class TestKernelShape:
    def test_builds_and_halts(self):
        func = mcf_pointer_chase(iterations=128)
        func.validate()
        result = execute(lower(func))
        assert result.halted

    def test_chase_is_serial(self):
        """The walk block's first load feeds its own base register."""
        func = mcf_pointer_chase(iterations=64)
        first = func.block("walk").body[0]
        assert first.is_load
        assert first.dest == first.srcs[0]

    def test_guard_branch_statistics(self):
        from repro.compiler import profile_function

        func = mcf_pointer_chase(iterations=600)
        profile = profile_function(func)
        stats = profile[0]
        assert 0.5 <= stats.bias <= 0.8
        assert stats.exposed_predictability > 0.05

    def test_branch_converts(self):
        func = mcf_pointer_chase(iterations=600)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        assert dec.transform.converted == 1


class TestBoundaryBehaviour:
    def test_semantics_preserved(self):
        func = mcf_pointer_chase(iterations=256)
        reference = execute(lower(func)).memory_snapshot()
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        assert execute(dec.program).memory_snapshot() == reference
        assert (
            execute(dec.program, predict_policy=always_taken).memory_snapshot()
            == reference
        )

    def test_serial_chase_resists_the_transformation(self):
        """The paper's mcf lesson: with the miss chain on the critical
        path, decomposition neither helps much nor hurts much."""
        func = mcf_pointer_chase(iterations=400)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        machine = MachineConfig.paper_default()
        base_run = InOrderCore(machine).run(base.program)
        dec_run = InOrderCore(machine).run(dec.program)
        speedup = 100.0 * (base_run.cycles / dec_run.cycles - 1.0)
        assert -3.0 < speedup < 6.0

    def test_long_resolution_stalls(self):
        """ASPCB lands in mcf's published league (big)."""
        func = mcf_pointer_chase(iterations=400)
        base = compile_baseline(func)
        run = InOrderCore(MachineConfig.paper_default()).run(base.program)
        assert run.stats.aspcb > 80.0
