"""Synthetic workload generator: structure, semantics, calibration."""

import pytest

from repro.ir import lower
from repro.uarch import execute
from repro.workloads import (
    BranchSiteSpec,
    RESULT_BASE,
    WorkloadSpec,
    build_workload,
    dynamic_instructions_per_iteration,
)


def small_spec(**kw):
    defaults = dict(
        name="unit",
        suite="test",
        sites=[
            BranchSiteSpec(bias=0.6, predictability=0.9),
            BranchSiteSpec(bias=0.95, predictability=0.97, heavy=False),
        ],
        iterations=64,
        cold_code_factor=0.0,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestValidation:
    def test_footprint_power_of_two(self):
        with pytest.raises(ValueError):
            small_spec(footprint_words=300)

    def test_bad_miss_levels_rejected(self):
        with pytest.raises(ValueError):
            small_spec(cond_miss="l7")
        with pytest.raises(ValueError):
            small_spec(cold_miss="none")

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            build_workload(small_spec(sites=[]))


class TestStructure:
    def test_builds_and_validates(self):
        func = small_spec().build(seed=0)
        func.validate()
        assert "s0A" in func.blocks and "s1A" in func.blocks

    def test_one_forward_branch_per_site(self):
        func = small_spec().build(seed=0)
        for s in range(2):
            term = func.block(f"s{s}A").terminator
            assert term.is_cond_branch
            assert term.branch_id == s

    def test_loop_latch_is_backward(self):
        from repro.ir import is_forward_branch

        func = small_spec().build(seed=0)
        assert not is_forward_branch(func, func.block("tail"))
        for s in range(2):
            assert is_forward_branch(func, func.block(f"s{s}A"))

    def test_runs_to_completion(self):
        program = lower(small_spec().build(seed=0))
        result = execute(program)
        assert result.halted
        # Every site stored its result; the final accumulator too.
        memory = dict(result.memory_snapshot())
        assert RESULT_BASE + 1023 in memory

    def test_outcome_data_drives_branches(self):
        spec = small_spec()
        program = lower(spec.build(seed=0))
        from repro.uarch import collect_branch_trace

        trace = collect_branch_trace(program)
        site0 = [taken for bid, taken in trace if bid == 0]
        assert len(site0) == spec.iterations
        assert any(site0) and not all(site0)  # genuinely unbiased

    def test_different_seeds_same_structure_different_data(self):
        spec = small_spec()
        f0, f1 = spec.build(seed=0), spec.build(seed=1)
        assert f0.layout() == f1.layout()
        assert f0.data != f1.data


class TestHeavyGating:
    def test_heavy_sites_carry_chase(self):
        spec = small_spec(cond_miss="l3", cold_loads_per_block=1)
        func = spec.build(seed=0)
        heavy_ops = [i.opcode.name for i in func.block("s0A").body]
        light_ops = [i.opcode.name for i in func.block("s1A").body]
        # Heavy site 0 has the extra chase load; light site 1 does not.
        assert heavy_ops.count("LOAD") > light_ops.count("LOAD")

    def test_light_successors_have_no_cold_loads(self):
        spec = small_spec(cold_loads_per_block=2)
        func = spec.build(seed=0)
        from repro.workloads.synthetic import _R_CHASE_COLD

        light_b = func.block("s1B").body
        assert all(
            inst.dest != _R_CHASE_COLD for inst in light_b
        )


class TestPhiBarrier:
    def test_low_phi_blocks_hoisting(self):
        from repro.ir import available_above

        spec_low = small_spec(hoist_barrier_frac=0.1)
        spec_high = small_spec(hoist_barrier_frac=0.9)
        low = spec_low.build(seed=0).block("s0B").body
        high = spec_high.build(seed=0).block("s0B").body
        hoist_low = len(available_above(low, set(range(64))))
        hoist_high = len(available_above(high, set(range(64))))
        assert hoist_low < hoist_high

    def test_hoist_cap_binds(self):
        from repro.ir import available_above

        spec = small_spec(hoist_barrier_frac=0.9, hoist_cap=2)
        body = spec.build(seed=0).block("s0B").body
        assert len(available_above(body, set(range(64)))) <= 2


class TestColdCode:
    def test_cold_factor_inflates_static_size(self):
        lean = small_spec(cold_code_factor=0.0).build(seed=0)
        padded = small_spec(cold_code_factor=2.0).build(seed=0)
        assert padded.static_instruction_count() > 2.5 * lean.static_instruction_count()

    def test_cold_code_never_executes(self):
        spec = small_spec(cold_code_factor=2.0)
        program = lower(spec.build(seed=0))
        result = execute(program)
        assert result.halted

    def test_cold_code_has_no_branches(self):
        func = small_spec(cold_code_factor=2.0).build(seed=0)
        for name, block in func.blocks.items():
            if name.startswith("cold"):
                term = block.terminator
                assert term is None or not term.is_cond_branch


class TestCalibrationHelpers:
    def test_instruction_estimate_close(self):
        spec = small_spec()
        program = lower(spec.build(seed=0))
        result = execute(program)
        per_iter = result.instructions_executed / spec.iterations
        estimate = dynamic_instructions_per_iteration(spec)
        assert abs(per_iter - estimate) / per_iter < 0.4

    def test_outcome_region_covers_run(self):
        assert small_spec(iterations=100).outcome_region >= 100
        assert small_spec(iterations=64).outcome_region == 64
