"""The Figure 6 omnetpp cArray::add kernel."""

from repro.compiler import compile_baseline, compile_decomposed
from repro.core import decompose_branch
from repro.ir import lower
from repro.isa import Opcode
from repro.uarch import always_taken, collect_branch_trace, execute
from repro.workloads import FIG6_SITE, omnetpp_carray_add


class TestKernelShape:
    def test_figure6_statistics(self):
        """60/40 bias, ~90% predictability on both paths."""
        assert FIG6_SITE.bias == 0.6
        assert FIG6_SITE.predictability == 0.9

    def test_block_a_loads_feed_compare(self):
        func = omnetpp_carray_add(iterations=64)
        a_ops = [inst.opcode for inst in func.block("A").body]
        assert a_ops.count(Opcode.LOAD) == 2  # last, capacity
        assert Opcode.CMP_GE in a_ops

    def test_both_paths_load_items_pointer(self):
        """Fig. 6: lines 5/7 in B and line 40 in C load this->items --
        the loads whose latency the transformation overlaps."""
        func = omnetpp_carray_add(iterations=64)
        for name in ("B", "C"):
            assert any(inst.is_load for inst in func.block(name).body)

    def test_stores_present_in_both_paths(self):
        func = omnetpp_carray_add(iterations=64)
        assert sum(i.is_store for i in func.block("B").body) == 2
        assert sum(i.is_store for i in func.block("C").body) >= 3

    def test_branch_bias_matches_figure(self):
        func = omnetpp_carray_add(iterations=512)
        trace = collect_branch_trace(lower(func))
        grows = [taken for bid, taken in trace if bid == 0]
        grow_rate = sum(grows) / len(grows)
        assert 0.3 < grow_rate < 0.5  # minority path ~40%


class TestKernelTransformation:
    def test_decomposition_preserves_results(self):
        func = omnetpp_carray_add(iterations=256)
        reference = execute(lower(func)).memory_snapshot()
        decompose_branch(func, "A")
        transformed = lower(func)
        assert execute(transformed).memory_snapshot() == reference
        assert (
            execute(transformed, predict_policy=always_taken).memory_snapshot()
            == reference
        )

    def test_pipeline_converts_the_branch(self):
        func = omnetpp_carray_add(iterations=512)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        assert dec.transform.converted == 1
        assert dec.transform.transforms[0].hoisted_not_taken > 0

    def test_loads_hoisted_above_resolution(self):
        func = omnetpp_carray_add(iterations=512)
        base = compile_baseline(func)
        dec = compile_decomposed(func, profile=base.profile)
        hoisted_loads = [
            inst
            for inst in dec.program.instructions
            if inst.is_load and inst.hoisted
        ]
        assert hoisted_loads
        assert all(inst.speculative for inst in hoisted_loads)
