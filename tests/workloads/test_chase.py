"""Pointer-chase chain properties (the cache-behaviour substrate)."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import _LINE_WORDS, _chase_chain


@settings(max_examples=20, deadline=None)
@given(lines=st.integers(2, 512), seed=st.integers(0, 1000))
def test_chain_is_a_single_cycle(lines, seed):
    """Sattolo guarantee: following the chain visits every line exactly
    once before returning to the start -- the reuse distance is exactly
    ``lines`` steps for every line."""
    base = 1 << 20
    chain = _chase_chain(base, lines, random.Random(seed))
    assert len(chain) == lines

    visited = set()
    cursor = base
    for _ in range(lines):
        assert cursor not in visited
        visited.add(cursor)
        cursor = chain[cursor]
    assert cursor == base  # back at the start: one cycle
    assert len(visited) == lines


@given(lines=st.integers(2, 256), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_chain_addresses_line_aligned_and_in_region(lines, seed):
    base = 1 << 16
    chain = _chase_chain(base, lines, random.Random(seed))
    upper = base + lines * _LINE_WORDS
    for address, target in chain.items():
        assert base <= address < upper
        assert base <= target < upper
        assert (address - base) % _LINE_WORDS == 0
        assert (target - base) % _LINE_WORDS == 0


def test_chain_deterministic_for_seeded_rng():
    a = _chase_chain(0, 64, random.Random(7))
    b = _chase_chain(0, 64, random.Random(7))
    assert a == b


def test_no_self_loops():
    chain = _chase_chain(0, 128, random.Random(3))
    for address, target in chain.items():
        assert address != target
