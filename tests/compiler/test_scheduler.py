"""The local list scheduler."""

from hypothesis import given, settings, strategies as st

from repro.compiler import schedule_block_body, schedule_function
from repro.ir import FunctionBuilder, build_depgraph, lower
from repro.isa import Instruction, Opcode
from repro.uarch import execute
from tests.conftest import build_diamond


def add(dest, *srcs, imm=None):
    return Instruction(opcode=Opcode.ADD, dest=dest, srcs=srcs, imm=imm)


def load(dest, base, offset=0):
    return Instruction(opcode=Opcode.LOAD, dest=dest, srcs=(base,), imm=offset)


def store(src, base, offset=0):
    return Instruction(opcode=Opcode.STORE, srcs=(src, base), imm=offset)


class TestOrdering:
    def test_loads_float_above_independent_alu(self):
        body = [add(1, 2, imm=1), add(2, 2, imm=1), load(3, 4)]
        scheduled = schedule_block_body(body)
        assert scheduled[0].opcode is Opcode.LOAD

    def test_dependences_respected(self):
        body = [load(1, 4), add(2, 1), add(3, 2)]
        scheduled = schedule_block_body(body)
        position = {id(inst): k for k, inst in enumerate(scheduled)}
        assert position[id(body[0])] < position[id(body[1])] < position[id(body[2])]

    def test_store_barrier_respected(self):
        body = [store(1, 4), load(2, 5)]
        scheduled = schedule_block_body(body)
        assert scheduled[0].is_store

    def test_deterministic(self):
        body = [add(1, 9, imm=1), add(2, 9, imm=2), add(3, 9, imm=3)]
        assert schedule_block_body(body) == schedule_block_body(list(body))

    def test_short_blocks_untouched(self):
        body = [add(1, 2)]
        assert schedule_block_body(body) == body

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 8), st.integers(1, 8)),
                    min_size=0, max_size=14))
    def test_topological_permutation(self, pairs):
        """Property: output is a permutation respecting every DAG edge."""
        body = [add(d, s) for d, s in pairs]
        scheduled = schedule_block_body(body)
        assert sorted(map(id, scheduled)) == sorted(map(id, body))
        graph = build_depgraph(body)
        position = {id(inst): k for k, inst in enumerate(scheduled)}
        for src, dsts in graph.succs.items():
            for dst in dsts:
                assert position[id(body[src])] < position[id(body[dst])]


class TestSemantics:
    def test_scheduling_preserves_results(self):
        func = build_diamond([1, 0, 1] * 30)
        reference = execute(lower(func)).memory_snapshot()
        schedule_function(func)
        assert execute(lower(func)).memory_snapshot() == reference
