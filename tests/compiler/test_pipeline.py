"""End-to-end compilation pipelines and profiling."""

from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_function,
    profile_program,
)
from repro.ir import lower
from repro.isa import Opcode
from repro.uarch import execute
from tests.conftest import build_diamond


PATTERN = [1, 1, 0, 1, 0, 0, 1, 0] * 32  # unbiased-ish, learnable


class TestProfiling:
    def test_profile_counts_executions(self):
        # The first 20% of the trace is predictor warm-up and excluded.
        func = build_diamond(PATTERN)
        profile = profile_function(func)
        assert 0.7 * len(PATTERN) <= profile[0].executions <= len(PATTERN)

    def test_profile_measures_bias(self):
        func = build_diamond([1] * 100)
        profile = profile_function(func)
        assert profile[0].bias > 0.95

    def test_loop_branch_profiled_as_biased(self):
        func = build_diamond(PATTERN)
        profile = profile_function(func)
        assert profile[100].bias > 0.9  # loop latch: branch_id 100

    def test_profile_program_equivalent(self):
        func = build_diamond(PATTERN)
        assert set(profile_program(lower(func))) == set(profile_function(func))


class TestBaselinePipeline:
    def test_no_decomposed_instructions(self):
        result = compile_baseline(build_diamond(PATTERN))
        ops = {inst.opcode for inst in result.program.instructions}
        assert Opcode.PREDICT not in ops
        assert Opcode.RESOLVE_NZ not in ops
        assert Opcode.RESOLVE_Z not in ops

    def test_reuses_supplied_profile(self):
        func = build_diamond(PATTERN)
        profile = profile_function(func)
        result = compile_baseline(func, profile=profile)
        assert result.profile is profile

    def test_runs_to_completion(self):
        result = compile_baseline(build_diamond(PATTERN))
        assert execute(result.program).halted


class TestDecomposedPipeline:
    def test_converts_the_unbiased_branch(self):
        func = build_diamond(PATTERN)
        result = compile_decomposed(func)
        assert result.transform.converted == 1
        ops = {inst.opcode for inst in result.program.instructions}
        assert Opcode.PREDICT in ops

    def test_reports_populated(self):
        func = build_diamond(PATTERN)
        result = compile_decomposed(func)
        assert result.selection is not None
        assert result.transform.static_after > result.transform.static_before
        assert result.transform.pisc > 0

    def test_equivalent_to_baseline(self):
        func = build_diamond(PATTERN)
        baseline = compile_baseline(func)
        decomposed = compile_decomposed(func, profile=baseline.profile)
        assert (
            execute(baseline.program).memory_snapshot()
            == execute(decomposed.program).memory_snapshot()
        )

    def test_source_function_untouched(self):
        func = build_diamond(PATTERN)
        before = func.static_instruction_count()
        compile_decomposed(func)
        assert func.static_instruction_count() == before
