"""Dead-code elimination."""

from repro.compiler import eliminate_dead_code
from repro.ir import FunctionBuilder, lower
from repro.uarch import execute
from tests.conftest import build_diamond


def test_removes_unused_definition():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 5)
    a.li(2, 99)  # dead: r2 never read
    a.store(1, 1, offset=0)
    a.halt()
    func = fb.build()
    removed = eliminate_dead_code(func)
    assert removed == 1
    assert len(func.block("a").body) == 2


def test_keeps_values_live_across_blocks():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 5)  # consumed in block b
    a.block.fallthrough = "b"
    b = fb.block("b")
    b.store(1, 1, offset=0)
    b.halt()
    func = fb.build()
    assert eliminate_dead_code(func) == 0


def test_keeps_faulting_loads_removes_speculative():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 100)
    a.load(2, 1, offset=0)  # may fault: kept even though dead
    a.load(3, 1, offset=1, speculative=True)  # non-faulting and dead
    a.store(1, 1, offset=2)
    a.halt()
    func = fb.build()
    removed = eliminate_dead_code(func)
    assert removed == 1
    ops = [str(i) for i in func.block("a").body]
    assert any("load r2" in o for o in ops)
    assert not any("load r3" in o for o in ops)


def test_transitive_chains_removed():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 5)
    a.add(2, 1, imm=1)  # feeds only r3
    a.add(3, 2, imm=1)  # dead
    a.store(1, 1, offset=0)
    a.halt()
    func = fb.build()
    assert eliminate_dead_code(func) == 2


def test_terminator_uses_are_roots():
    fb = FunctionBuilder("f")
    a = fb.block("a")
    a.li(1, 1)
    a.cmp_ne(2, 1, imm=0)  # consumed only by the branch
    a.bnz(2, target="b", fallthrough="b2", branch_id=0)
    fb.block("b").halt()
    fb.block("b2").halt()
    func = fb.build()
    assert eliminate_dead_code(func) == 0


def test_semantics_preserved_on_real_workload():
    func = build_diamond([1, 0, 1] * 40)
    reference = execute(lower(func)).memory_snapshot()
    eliminate_dead_code(func)
    func.validate()
    assert execute(lower(func)).memory_snapshot() == reference
