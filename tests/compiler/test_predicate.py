"""If-conversion (predication)."""

import random

import pytest

from repro.compiler import (
    compile_baseline,
    compile_predicated,
    predicate_branch,
    predicate_candidates,
)
from repro.compiler.predicate import PredicationError
from repro.core import select_predication_candidates
from repro.ir import FunctionBuilder, lower
from repro.isa import Opcode
from repro.uarch import execute
from tests.conftest import build_diamond

_RNG = random.Random(3)
UNPREDICTABLE = [_RNG.randint(0, 1) for _ in range(160)]


class TestTransform:
    def test_branch_and_blocks_disappear(self):
        func = build_diamond(UNPREDICTABLE)
        predicate_branch(func, "A")
        func.validate()
        assert "B" not in func.blocks and "C" not in func.blocks
        assert func.block("A").terminator is None
        assert func.block("A").fallthrough == "M"

    def test_sel_instructions_emitted(self):
        func = build_diamond(UNPREDICTABLE)
        report = predicate_branch(func, "A")
        assert report.sels_inserted >= 1
        ops = [inst.opcode for inst in func.block("A").body]
        assert Opcode.SEL in ops

    def test_loads_become_non_faulting(self):
        func = build_diamond(UNPREDICTABLE)
        before_loads = len(
            [i for i in func.block("B").body if i.is_load]
        )
        predicate_branch(func, "A")
        speculative = [
            i for i in func.block("A").body if i.is_load and i.speculative
        ]
        assert len(speculative) >= before_loads

    def test_semantics_preserved(self):
        func = build_diamond(UNPREDICTABLE)
        reference = execute(lower(func)).memory_snapshot()
        predicate_branch(func, "A")
        assert execute(lower(func)).memory_snapshot() == reference

    def test_semantics_preserved_bz_sense(self):
        """A BZ diamond selects the other way around."""
        fb = FunctionBuilder("g")
        fb.data(100, [1, 0, 1, 1, 0, 0, 1, 0] * 8)
        init = fb.block("init")
        init.li(1, 0)
        init.li(2, 64)
        init.block.fallthrough = "a"
        a = fb.block("a")
        a.add(4, 1, imm=100)
        a.load(5, 4, 0)
        a.bz(5, target="zero", fallthrough="nonzero", branch_id=0)
        nz = fb.block("nonzero")
        nz.add(6, 5, imm=10)
        nz.store(6, 4, offset=500)
        nz.jmp("m")
        z = fb.block("zero")
        z.li(6, -7)
        z.store(6, 4, offset=500)
        z.block.fallthrough = "m"
        m = fb.block("m")
        m.add(7, 7, 6)
        m.block.fallthrough = "tail"
        tail = fb.block("tail")
        tail.add(1, 1, imm=1)
        tail.cmp_lt(8, 1, 2)
        tail.bnz(8, target="a", fallthrough="done", branch_id=1)
        done = fb.block("done")
        done.store(7, 4, offset=900)
        done.halt()
        func = fb.build()
        reference = execute(lower(func)).memory_snapshot()
        predicate_branch(func, "a")
        assert execute(lower(func)).memory_snapshot() == reference


class TestEligibility:
    def test_mismatched_stores_rejected(self):
        fb = FunctionBuilder("g")
        a = fb.block("a")
        a.li(1, 1)
        a.li(4, 100)
        a.bnz(1, target="c", fallthrough="b", branch_id=0)
        b = fb.block("b")
        b.store(1, 4, offset=0)
        b.jmp("m")
        c = fb.block("c")
        c.store(1, 4, offset=1)  # different address
        c.block.fallthrough = "m"
        m = fb.block("m")
        m.halt()
        with pytest.raises(PredicationError):
            predicate_branch(fb.build(), "a")

    def test_nested_control_rejected(self):
        fb = FunctionBuilder("g")
        a = fb.block("a")
        a.li(1, 1)
        a.bnz(1, target="c", fallthrough="b", branch_id=0)
        b = fb.block("b")
        b.bnz(1, target="m", fallthrough="m2", branch_id=1)  # control inside
        c = fb.block("c")
        c.block.fallthrough = "m"
        m = fb.block("m")
        m.halt()
        m2 = fb.block("m2")
        m2.halt()
        with pytest.raises(PredicationError):
            predicate_branch(fb.build(), "a")

    def test_candidates_skipped_not_fatal(self):
        func = build_diamond(UNPREDICTABLE)
        from repro.compiler import profile_function

        profile = profile_function(func)
        selection = select_predication_candidates(func, profile)
        worked, report = predicate_candidates(func, selection.candidates)
        worked.validate()
        assert report.converted == len(selection.candidates)


class TestPipeline:
    def test_compile_predicated_converts_unpredictable(self):
        func = build_diamond(UNPREDICTABLE)
        result = compile_predicated(func)
        assert len(result.selection.candidates) == 1
        ops = {inst.opcode for inst in result.program.instructions}
        assert Opcode.SEL in ops
        assert (
            execute(result.program).memory_snapshot()
            == execute(compile_baseline(func).program).memory_snapshot()
        )

    def test_compile_predicated_leaves_predictable_alone(self):
        func = build_diamond([1, 1, 0, 1, 0, 0, 1, 0] * 24)
        result = compile_predicated(func)
        assert len(result.selection.candidates) == 0
