"""Profile-guided layout (the superblock-style baseline pass)."""

from repro.branchpred import BranchStats
from repro.compiler import optimize_layout
from repro.ir import lower
from repro.isa import Opcode
from repro.uarch import execute
from tests.conftest import build_diamond


def profile_for(func, taken_rate, executions=1000):
    profile = {}
    for block in func.blocks.values():
        term = block.terminator
        if term is not None and term.is_cond_branch:
            profile[term.branch_id] = BranchStats(
                branch_id=term.branch_id,
                executions=executions,
                taken=round(taken_rate * executions),
                correct=executions,
            )
    return profile


def test_heavily_taken_forward_branch_flipped():
    func = build_diamond([1] * 64)
    profile = profile_for(func, taken_rate=0.9)
    flipped = optimize_layout(func, profile)
    assert flipped >= 1
    term = func.block("A").terminator
    assert term.opcode is Opcode.BZ  # sense inverted
    assert func.block("A").fallthrough == "C"  # hot path falls through


def test_hot_block_relocated_adjacent():
    func = build_diamond([1] * 64)
    optimize_layout(func, profile_for(func, taken_rate=0.9))
    layout = func.layout()
    assert layout.index("C") == layout.index("A") + 1


def test_balanced_branch_untouched():
    func = build_diamond([1, 0] * 32)
    flipped = optimize_layout(func, profile_for(func, taken_rate=0.5))
    assert flipped == 0
    assert func.block("A").terminator.opcode is Opcode.BNZ


def test_loop_latch_never_relaid(Out=None):
    """Backward branches are left alone even when heavily taken."""
    func = build_diamond([1] * 64)
    before = func.layout().index("head") if "head" in func.layout() else None
    profile = profile_for(func, taken_rate=0.99)
    optimize_layout(func, profile)
    # The loop latch in `tail` targets `A` backward; A must stay put.
    assert func.layout().index("A") < func.layout().index("tail")


def test_semantics_preserved():
    pattern = [1, 1, 1, 0] * 24
    func = build_diamond(pattern)
    reference = execute(lower(func)).memory_snapshot()
    optimize_layout(func, profile_for(func, taken_rate=0.75))
    func.validate()
    assert execute(lower(func)).memory_snapshot() == reference


def test_unprofiled_branches_ignored():
    func = build_diamond([1] * 32)
    assert optimize_layout(func, {}) == 0
