"""Set-associative cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import Cache


def make(size=1024, assoc=2, line=64):
    return Cache("test", size, assoc, line)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make()
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_same_line_hits(self):
        cache = make()
        cache.access(0)
        assert cache.access(63) is True  # same 64B line
        assert cache.access(64) is False  # next line

    def test_stats(self):
        cache = make()
        cache.access(0)
        cache.access(0)
        cache.access(128)
        assert cache.accesses == 3 and cache.hits == 1 and cache.misses == 2
        assert abs(cache.miss_rate - 2 / 3) < 1e-12

    def test_reset_stats(self):
        cache = make()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.probe(0)  # contents survive


class TestReplacement:
    def test_lru_eviction(self):
        # 1024B, 2-way, 64B lines -> 8 sets; lines k*8 map to set 0.
        cache = make()
        set_stride = 8 * 64
        cache.access(0 * set_stride)
        cache.access(1 * set_stride)
        cache.access(0 * set_stride)  # touch 0: now 1 is LRU
        cache.access(2 * set_stride)  # evicts 1
        assert cache.probe(0 * set_stride)
        assert not cache.probe(1 * set_stride)
        assert cache.probe(2 * set_stride)

    def test_associativity_bound(self):
        cache = make(assoc=2)
        set_stride = 8 * 64
        for way in range(3):
            cache.access(way * set_stride)
        resident = sum(
            cache.probe(way * set_stride) for way in range(3)
        )
        assert resident == 2


class TestGeometry:
    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 2, 64)

    def test_non_power_of_two_sets_allowed(self):
        # The Section 6.1 24KB I-cache has 96 sets.
        cache = Cache("l1i-24k", 24 * 1024, 4, 64)
        assert cache.num_sets == 96
        cache.access(0)
        assert cache.access(0)

    def test_install_does_not_count_stats(self):
        cache = make()
        cache.install(0)
        assert cache.accesses == 0
        assert cache.access(0) is True  # prefetched line present

    def test_install_idempotent(self):
        cache = make()
        cache.install(0)
        cache.install(0)
        assert cache.probe(0)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_immediate_rereference_always_hits(self, addresses):
        cache = make(size=4096, assoc=4)
        for address in addresses:
            cache.access(address)
            assert cache.access(address) is True
