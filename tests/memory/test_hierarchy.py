"""Memory hierarchy timing (Table 1 latencies, miss buffer, prefetch)."""

from repro.memory import HierarchyConfig, MemoryHierarchy


def make(prefetch=False, **kw):
    return MemoryHierarchy(HierarchyConfig(next_line_prefetch=prefetch, **kw))


class TestLatencies:
    def test_l1_hit_is_4_cycles(self):
        h = make()
        h.access_data(0, 0)  # warm
        assert h.access_data(0, 100) == 104

    def test_cold_miss_pays_dram(self):
        h = make()
        assert h.access_data(0, 0) == 140

    def test_l2_hit_after_l1_eviction(self):
        h = make()
        h.access_data(0, 0)
        # Evict line 0 from the 8-way L1 set by touching 8 conflicting
        # lines (same L1 set: stride = sets*line = 64*64).
        for k in range(1, 9):
            h.access_data(k * 64 * 64, 0)
        assert h.access_data(0, 1000) == 1012  # L2 hit

    def test_l3_hit_path(self):
        h = make()
        h.access_data(0, 0)
        # Evict from both L1 and L2 (L2: 16 ways, 256 sets).
        for k in range(1, 20):
            h.access_data(k * 256 * 64, 0)
        assert h.access_data(0, 5000) == 5025

    def test_inst_hits_are_free(self):
        h = make()
        h.access_inst(0, 0)
        assert h.access_inst(0, 50) == 50

    def test_inst_cold_miss(self):
        h = make()
        assert h.access_inst(0, 0) == 140


class TestMissBuffer:
    def test_limit_delays_excess_misses(self):
        h = make(miss_buffer_entries=2)
        t1 = h.access_data(0 * 4096, 0)
        t2 = h.access_data(1 * 4096, 0)
        t3 = h.access_data(2 * 4096, 0)  # must wait for a free entry
        assert t1 == 140 and t2 == 140
        assert t3 == 280

    def test_entries_free_over_time(self):
        h = make(miss_buffer_entries=1)
        first = h.access_data(0 * 4096, 0)
        assert h.access_data(1 * 4096, first + 1) == first + 1 + 140


class TestPrefetch:
    def test_next_line_installed_on_miss(self):
        h = make(prefetch=True)
        h.access_data(0, 0)  # miss; installs line at +64
        assert h.access_data(64, 500) == 504  # L1 hit

    def test_no_prefetch_when_disabled(self):
        h = make(prefetch=False)
        h.access_data(0, 0)
        assert h.access_data(64, 500) == 640  # cold DRAM miss

    def test_prefetch_useless_for_strided_walk(self):
        h = make(prefetch=True)
        stride = 17 * 64
        results = [h.access_data(k * stride, k * 1000) for k in range(4)]
        assert all(done - k * 1000 == 140 for k, done in enumerate(results))


class TestStats:
    def test_miss_rates(self):
        h = make()
        h.access_data(0, 0)
        h.access_data(0, 10)
        assert h.data_miss_rate() == 0.5

    def test_reset(self):
        h = make()
        h.access_data(0, 0)
        h.reset_stats()
        assert h.l1d.accesses == 0
