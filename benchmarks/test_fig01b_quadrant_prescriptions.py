"""Figure 1, validated empirically: each quadrant's prescribed treatment
wins on its own quadrant.

* unbiased-but-predictable  -> the decomposed branch transformation wins;
* unbiased-and-unpredictable -> predication (if-conversion) wins;
* highly-biased -> neither fires (superblock layout already handles it).
"""

from repro.experiments.quadrants import run as run_quadrants

from conftest import bench_config


def test_fig01b_quadrant_prescriptions(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_quadrants(bench_config(iterations=800)),
        rounds=1,
        iterations=1,
    )
    emit("fig01b_quadrant_prescriptions", result.render())

    predictable = result.row("unbiased-predictable")
    assert predictable.decomposed_speedup > 2.0
    assert predictable.decomposed_speedup > predictable.predicated_speedup

    unpredictable = result.row("unbiased-unpredictable")
    assert unpredictable.predicated_speedup > 2.0
    assert unpredictable.predicated_speedup > unpredictable.decomposed_speedup

    biased = result.row("highly-biased")
    assert abs(biased.decomposed_speedup) < 2.0
    assert abs(biased.predicated_speedup) < 2.0
