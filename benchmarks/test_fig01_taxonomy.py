"""Figure 1: branch taxonomy quadrant census over SPEC 2006 INT."""

from repro.core import BranchClass
from repro.experiments.taxonomy import run as run_taxonomy

from conftest import bench_config


def test_fig01_taxonomy(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_taxonomy("int2006", config=bench_config()),
        rounds=1,
        iterations=1,
    )
    emit("fig01_taxonomy", result.render())
    totals = result.totals()
    # All three populated quadrants of Figure 1 are represented.
    assert totals[BranchClass.SUPERBLOCK] > 0
    assert totals[BranchClass.DECOMPOSE] > 0
    assert totals[BranchClass.PREDICATE] > 0
