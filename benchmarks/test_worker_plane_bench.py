"""Warm-worker execution plane benchmarks.

Two layers:

* pytest-benchmark micros of one sweep-point trace load -- per-job
  dispatch (a cold store per point, plane off: disk container read +
  zlib inflate + prep rebuild) vs the shared-memory plane (a cold
  store attaching the published columns zero-copy);
* a snapshot (``results/BENCH_worker_plane.json``) of a warm
  multi-point machine sweep replaying one captured trace: per-job
  dispatch modelled as one cold store per point (the price every
  point paid whenever it landed on a worker whose LRU had not seen
  the trace -- always, right after a watchdog respawn) vs the fused
  batch the plane's dispatcher submits (one worker store that maps
  the trace once and reuses the layered replay prep across points).
  Gated at the ISSUE's >= 1.5x.

The pool-level dispatcher is deliberately not wall-clocked here: on a
1-2 core CI box a pool ratio measures scheduler noise, not the plane.
Engine-level behaviour (batched == per-job bit-for-bit, schema-5
manifests, segment lifecycle) is pinned by
``tests/integration/test_worker_plane.py``.
"""

import json
import pathlib
import time

from repro.compiler import compile_baseline, profile_program
from repro.experiments import plane
from repro.experiments.artifacts import ArtifactStore
from repro.ir import lower
from repro.uarch import MachineConfig
from repro.workloads import spec_benchmark

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_MICRO_BUDGET = 400_000
_SWEEP_WIDTHS = (1, 2, 4, 8)
_SWEEP_BTBS = (1024, 4096)


def _sweep_machines():
    """A width x BTB machine sweep sharing one captured trace -- the
    shape the dispatcher fuses into a single batch per group."""
    import dataclasses

    return [
        dataclasses.replace(
            MachineConfig.paper_default(width=w), btb_entries=b
        )
        for w in _SWEEP_WIDTHS
        for b in _SWEEP_BTBS
    ]


def _program_machine():
    spec = spec_benchmark("h264ref", iterations=120)
    profile = profile_program(
        lower(spec.build(seed=0)), max_instructions=_MICRO_BUDGET
    )
    program = compile_baseline(
        spec.build(seed=1), profile=profile
    ).program
    return program, MachineConfig.paper_default(width=4)


def _seed_trace(cache_dir):
    """Capture the sweep's shared trace into the store once."""
    store = ArtifactStore(cache_dir=cache_dir)
    program, machine = _program_machine()
    store.simulate_inorder(
        program, machine, max_instructions=_MICRO_BUDGET
    )
    assert store.counters["trace_captures"] == 1
    return program


def _cold_point(cache_dir, program, machine):
    """One sweep point on a cold store (fresh LRU, no prep warmth)."""
    store = ArtifactStore(cache_dir=cache_dir)
    return store.simulate_inorder(
        program, machine, max_instructions=_MICRO_BUDGET
    )


#: Fixed content key the point-load micros publish the trace under.
_POINT_KEY = "77" * 32


def _seed_point_key(cache_dir):
    """Capture the trace and file it under :data:`_POINT_KEY` (which
    also publishes it when a run prefix is active)."""
    program = _seed_trace(cache_dir)
    store = ArtifactStore(cache_dir=cache_dir)
    trace = store.peek_trace(
        program,
        MachineConfig.paper_default(width=4),
        max_instructions=_MICRO_BUDGET,
    )
    assert trace is not None
    store.store_trace(_POINT_KEY, trace)
    return program


def _cold_load(cache_dir):
    """The pure load a cold worker pays before it can replay."""
    return ArtifactStore(cache_dir=cache_dir).load_trace(_POINT_KEY)


def test_point_trace_load_per_job(benchmark, tmp_path, monkeypatch):
    """Per-job dispatch: every cold worker re-inflates the container."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    _seed_point_key(tmp_path)
    trace = benchmark(lambda: _cold_load(tmp_path))
    assert trace is not None


def test_point_trace_load_warm_plane(benchmark, tmp_path, monkeypatch):
    """The plane: a cold worker maps the published columns zero-copy."""
    prefix = plane.new_prefix()
    monkeypatch.setenv(plane.PREFIX_ENV, prefix)
    monkeypatch.delenv("REPRO_SHM", raising=False)
    _seed_point_key(tmp_path)  # active prefix: store_trace publishes
    assert plane.list_segments(prefix)
    try:
        trace = benchmark(lambda: _cold_load(tmp_path))
    finally:
        plane.cleanup_run(prefix)
    assert trace is not None


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_worker_plane_snapshot(tmp_path, monkeypatch):
    """Archive per-job vs batched warm-sweep walls in
    ``results/BENCH_worker_plane.json`` and hold the fused batch to
    the >= 1.5x target on a warm multi-point sweep."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    program = _seed_point_key(tmp_path)
    machines = _sweep_machines()

    def per_job():
        # One cold store per point: per-job dispatch to a worker whose
        # LRU has not seen the trace (the guaranteed state after any
        # respawn, and the common one across a pool).
        return [_cold_point(tmp_path, program, m) for m in machines]

    def batched():
        # One fused batch: the worker's store maps the trace once and
        # the layered replay prep accumulates across the points.
        store = ArtifactStore(cache_dir=tmp_path)
        return [
            store.simulate_inorder(
                program, m, max_instructions=_MICRO_BUDGET
            )
            for m in machines
        ]

    per_job_wall, before = _best_of(per_job)
    batched_wall, after = _best_of(batched)
    assert [r.stats for r in before] == [r.stats for r in after], (
        "batched sweep changed the results"
    )

    # Point-load flavor: container inflate vs zero-copy shm attach.
    disk_s, _ = _best_of(lambda: _cold_load(tmp_path), reps=5)
    prefix = plane.new_prefix()
    monkeypatch.setenv(plane.PREFIX_ENV, prefix)
    monkeypatch.delenv("REPRO_SHM", raising=False)
    try:
        # A disk hit under an active prefix publishes; later cold
        # stores attach instead of inflating.
        _cold_load(tmp_path)
        assert plane.list_segments(prefix)
        shm_s, _ = _best_of(lambda: _cold_load(tmp_path), reps=5)
    finally:
        plane.cleanup_run(prefix)

    snapshot = {
        "config": {
            "workload": "h264ref",
            "iterations": 120,
            "max_instructions": _MICRO_BUDGET,
            "sweep_widths": list(_SWEEP_WIDTHS),
            "sweep_btb_entries": list(_SWEEP_BTBS),
        },
        "lever": (
            "REPRO_BATCH / REPRO_SHM (batched dispatch modelled as one "
            "warm worker store; per-job as one cold store per point)"
        ),
        "warm_sweep": {
            "points": len(machines),
            "per_job_wall_s": round(per_job_wall, 3),
            "batched_wall_s": round(batched_wall, 3),
            "speedup": round(per_job_wall / batched_wall, 2),
        },
        "point_load": {
            "disk_inflate_s": round(disk_s, 4),
            "shm_attach_s": round(shm_s, 4),
            "speedup": round(disk_s / shm_s, 2),
        },
        "note": (
            "warm_sweep gates the fused-batch execution model; "
            "point_load isolates the zero-copy segment attach the "
            "plane gives workers that never decoded the trace"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_worker_plane.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    assert snapshot["warm_sweep"]["speedup"] >= 1.5, (
        f"warm sweep speedup {snapshot['warm_sweep']['speedup']}x "
        "< 1.5x target"
    )
