"""Figure 11: SPEC 2000 INT speedup, best-performing REF input, 4-wide."""

from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig11_int00_best_input(benchmark, emit):
    config = bench_config(widths=(4,), ref_seeds=(1, 2))
    figure = benchmark.pedantic(
        lambda: run_figure("fig11", config), rounds=1, iterations=1
    )
    emit("fig11_int00_best_input", figure.render())

    best = dict(figure.series[4])
    mean = dict(run_figure("fig10", config).series[4])
    for name in best:
        assert best[name] >= mean[name] - 1e-9, name
