"""Figure 13: SPEC 2000 FP speedup, all REF inputs, 4-wide.

The paper notes a sharper falloff than SPEC 2006 FP: art/ammp/mesa lead,
the long tail (swim, mgrid, lucas, sixtrack, apsi...) shows little gain
because so few forward branches are eligible."""

import statistics

from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig13_fp00_speedup(benchmark, emit):
    figure = benchmark.pedantic(
        lambda: run_figure("fig13", bench_config(widths=(4,))),
        rounds=1,
        iterations=1,
    )
    emit("fig13_fp00_speedup", figure.render())

    values = dict(figure.series[4])
    assert len(values) == 14
    leaders = statistics.mean(
        values[n] for n in ("art00", "ammp00", "mesa00")
    )
    tail = statistics.mean(
        values[n] for n in ("swim00", "mgrid00", "lucas00", "sixtrack00", "apsi00")
    )
    assert leaders > tail
    assert tail < 3.0
