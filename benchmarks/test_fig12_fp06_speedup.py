"""Figure 12: SPEC 2006 FP speedup, all REF inputs, 4-wide.

FP gains are smaller than INT (paper: 7% vs 11% geomean) because FP
forward branches are more biased; the tail (leslie3d / cactusADM / dealII)
is near zero."""

import statistics

from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig12_fp06_speedup(benchmark, emit):
    config = bench_config(widths=(4,))
    figure = benchmark.pedantic(
        lambda: run_figure("fig12", config), rounds=1, iterations=1
    )
    emit("fig12_fp06_speedup", figure.render())

    values = dict(figure.series[4])
    assert len(values) == 17
    # The published near-zero tail stays near zero.
    tail = statistics.mean(
        values[name] for name in ("leslie3d", "cactusADM", "dealII")
    )
    assert tail < 4.0
    # The top of the chart is visibly positive.
    assert max(values.values()) > 3.0

    # Cross-figure: FP geomean does not exceed INT geomean (paper: 7 vs 11).
    int_figure = run_figure("fig8", config)
    assert figure.geomean(4) <= int_figure.geomean(4) + 1.0
