"""Trace capture/replay pipeline benchmarks.

Two layers:

* pytest-benchmark microbenchmarks of one simulation -- execute-driven
  vs trace replay of the same program on the same machine config;
* an end-to-end snapshot (``results/BENCH_trace_replay.json``): two
  real machine-knob sweeps (DBB sizing and BTB sizing -- the sweeps
  whose points share one program and vary only timing structures) run
  cold with the artifact fast path off (``REPRO_TRACE_REPLAY=0`` --
  every sweep point recomputes its TRAIN profile, compilations, and
  execute-driven simulations, exactly like the pre-artifact-store
  pipeline) and then cold again with it on.  Both halves run
  back-to-back on the same machine; the JSON records walls, speedups,
  and the artifact counters proving the "after" half captured each
  program once and replayed it everywhere else.  (The predictor
  sensitivity ladder is deliberately *not* benchmarked here: its
  profiles and compilations are predictor-keyed, so each rung's work
  is legitimately distinct and the store can only share the functional
  branch trace across rungs.)
"""

import json
import pathlib
import shutil
import time

from repro.experiments import ExperimentEngine, RunConfig
from repro.experiments.ablations import btb_sizing_sweep, dbb_occupancy
from repro.uarch import (
    InOrderCore,
    MachineConfig,
    Trace,
    TraceCapture,
    predictor_id,
    replay_inorder,
)
from repro.workloads import spec_benchmark
from repro.compiler import compile_baseline, profile_program
from repro.ir import lower

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_MICRO_BUDGET = 400_000


def _micro_setup():
    spec = spec_benchmark("h264ref", iterations=120)
    profile = profile_program(
        lower(spec.build(seed=0)), max_instructions=_MICRO_BUDGET
    )
    program = compile_baseline(
        spec.build(seed=1), profile=profile
    ).program
    machine = MachineConfig.paper_default(width=4)
    return program, machine


def test_execute_driven_simulation(benchmark):
    program, machine = _micro_setup()
    result = benchmark(
        lambda: InOrderCore(machine).run(
            program, max_instructions=_MICRO_BUDGET
        )
    )
    assert result.stats.halted


def test_trace_replay_simulation(benchmark):
    program, machine = _micro_setup()
    capture = TraceCapture()
    result = InOrderCore(machine).run(
        program, max_instructions=_MICRO_BUDGET, capture=capture
    )
    trace = Trace.from_bytes(
        capture.finish(
            program,
            result,
            _MICRO_BUDGET,
            predictor_id(machine.predictor_factory),
        ).to_bytes()
    )
    replayed = benchmark(lambda: replay_inorder(program, trace, machine))
    assert replayed.stats == result.stats


def _captured_trace(program, machine):
    capture = TraceCapture()
    result = InOrderCore(machine).run(
        program, max_instructions=_MICRO_BUDGET, capture=capture
    )
    trace = Trace.from_bytes(
        capture.finish(
            program,
            result,
            _MICRO_BUDGET,
            predictor_id(machine.predictor_factory),
        ).to_bytes()
    )
    return result, trace


def test_replay_scalar_oracle(benchmark, monkeypatch):
    """The pre-vectorization replay loop (the PR 4 baseline)."""
    program, machine = _micro_setup()
    result, trace = _captured_trace(program, machine)
    monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
    replayed = benchmark(lambda: replay_inorder(program, trace, machine))
    assert replayed.stats == result.stats


def test_replay_vectorized(benchmark, monkeypatch):
    """The vectorized replay kernel (prep amortised across rounds,
    exactly as a sweep amortises it across its points)."""
    program, machine = _micro_setup()
    result, trace = _captured_trace(program, machine)
    monkeypatch.delenv("REPRO_REPLAY_VECTORIZED", raising=False)
    replayed = benchmark(lambda: replay_inorder(program, trace, machine))
    assert replayed.stats == result.stats


def test_replay_vectorized_snapshot(monkeypatch):
    """Archive scalar vs vectorized replay walls in
    ``results/BENCH_replay_vectorized.json`` and hold the in-order
    kernel to the >= 3x target over the scalar baseline."""
    from repro.uarch import replay_ooo

    program, machine = _micro_setup()
    result, trace = _captured_trace(program, machine)

    def best_of(fn, reps=7):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    monkeypatch.setenv("REPRO_REPLAY_VECTORIZED", "0")
    scalar = best_of(lambda: replay_inorder(program, trace, machine))
    scalar_ooo = best_of(
        lambda: replay_ooo(program, trace, machine, window=64)
    )

    monkeypatch.delenv("REPRO_REPLAY_VECTORIZED")
    _, cold_trace = _captured_trace(program, machine)
    start = time.perf_counter()
    replayed = replay_inorder(program, cold_trace, machine)
    cold = time.perf_counter() - start
    assert replayed.stats == result.stats
    warm = best_of(lambda: replay_inorder(program, trace, machine))
    warm_ooo = best_of(
        lambda: replay_ooo(program, trace, machine, window=64)
    )

    snapshot = {
        "config": {
            "workload": "h264ref",
            "iterations": 120,
            "max_instructions": _MICRO_BUDGET,
            "width": 4,
            "trace_instructions": len(trace.pcs),
        },
        "lever": "REPRO_REPLAY_VECTORIZED (0 = scalar oracle loop)",
        "inorder": {
            "scalar_ms": round(scalar * 1e3, 2),
            "vectorized_cold_ms": round(cold * 1e3, 2),
            "vectorized_warm_ms": round(warm * 1e3, 2),
            "speedup_cold": round(scalar / cold, 2),
            "speedup_warm": round(scalar / warm, 2),
        },
        "ooo": {
            "scalar_ms": round(scalar_ooo * 1e3, 2),
            "vectorized_warm_ms": round(warm_ooo * 1e3, 2),
            "speedup_warm": round(scalar_ooo / warm_ooo, 2),
        },
        "note": (
            "warm = replay prep cached on the trace, the steady state "
            "of a sweep replaying one capture across many configs; "
            "cold pays one precompute pass"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replay_vectorized.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    assert snapshot["inorder"]["speedup_warm"] >= 3.0, (
        f"in-order replay speedup {snapshot['inorder']['speedup_warm']}x "
        "< 3x target"
    )


def _timed_sweep(sweep, tmp_root: pathlib.Path, replay: bool, monkeypatch):
    """One cold run of ``sweep`` with the artifact path on or off."""
    cache_dir = tmp_root / ("replay" if replay else "execute")
    shutil.rmtree(cache_dir, ignore_errors=True)
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "1" if replay else "0")
    engine = ExperimentEngine(
        jobs=1, cache_dir=cache_dir, use_cache=False
    )
    start = time.perf_counter()
    result = sweep(engine)
    wall = time.perf_counter() - start
    return wall, engine.artifact_totals(), result


def test_sweep_snapshot(tmp_path, monkeypatch):
    """Archive before/after sweep walls in BENCH_trace_replay.json and
    hold the pipeline to the >= 2x end-to-end target."""
    config = RunConfig(iterations=400, max_instructions=1_300_000)
    sweeps = {
        "ablation_dbb_sizing": lambda engine: dbb_occupancy(
            name="h264ref",
            sizes=(4, 8, 16, 32),
            config=config,
            engine=engine,
        ),
        "ablation_btb_sizing": lambda engine: btb_sizing_sweep(
            name="mcf", config=config, engine=engine
        ),
    }
    snapshot = {
        "config": {
            "iterations": config.iterations,
            "max_instructions": config.max_instructions,
            "jobs": 1,
        },
        "lever": "REPRO_TRACE_REPLAY (0 = pre-artifact-store pipeline)",
        "sweeps": {},
    }
    for name, sweep in sweeps.items():
        before_wall, before_art, before = _timed_sweep(
            sweep, tmp_path / name, replay=False, monkeypatch=monkeypatch
        )
        after_wall, after_art, after = _timed_sweep(
            sweep, tmp_path / name, replay=True, monkeypatch=monkeypatch
        )
        assert repr(before) == repr(after), (
            f"{name}: replay changed the sweep's results"
        )
        snapshot["sweeps"][name] = {
            "before_wall_s": round(before_wall, 2),
            "after_wall_s": round(after_wall, 2),
            "speedup": round(before_wall / after_wall, 2),
            "before_artifacts": before_art,
            "after_artifacts": after_art,
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_trace_replay.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    for name, record in snapshot["sweeps"].items():
        # Capture-once proven by counters: replays strictly outnumber
        # captures, and the execute-driven half never replayed.
        assert record["after_artifacts"].get("trace_replays", 0) > \
            record["after_artifacts"].get("trace_captures", 0), name
        assert record["before_artifacts"].get("trace_replays", 0) == 0
        assert record["speedup"] >= 2.0, (
            f"{name}: end-to-end speedup {record['speedup']}x < 2x"
        )
