"""Table 2: per-benchmark SPEC 2006 metrics at 4-wide.

Shape checks against the published table: the high-speedup cluster
(h264ref / perlbench / omnetpp-class) beats the low cluster
(hmmer / libquantum-class), characterisation columns land near their
published counterparts, and code growth stays moderate.
"""

import statistics

from repro.experiments.table2 import render, run as run_table2
from repro.workloads import BENCHMARKS

from conftest import bench_config


def test_table2_metrics(benchmark, emit):
    outcomes = benchmark.pedantic(
        lambda: run_table2(bench_config()), rounds=1, iterations=1
    )
    emit("table2_metrics", render(outcomes))

    by_name = {o.name: o for o in outcomes}
    int_names = [o.name for o in outcomes if BENCHMARKS[o.name].suite == "int2006"]
    assert len(outcomes) == 29  # 12 INT + 17 FP

    # PBC tracks the published conversion percentages: high-PBC rows
    # convert more than low-PBC rows on average.
    high = [n for n in by_name if BENCHMARKS[n].paper.pbc >= 25.0]
    low = [n for n in by_name if BENCHMARKS[n].paper.pbc < 15.0]
    mean_high = statistics.mean(by_name[n].metrics.pbc for n in high)
    mean_low = statistics.mean(by_name[n].metrics.pbc for n in low)
    assert mean_high > mean_low
    for name, outcome in by_name.items():
        assert abs(outcome.metrics.pbc - BENCHMARKS[name].paper.pbc) < 35.0, name

    # Speedup ordering: the paper's top INT cluster beats its bottom cluster.
    top = statistics.mean(
        by_name[n].metrics.spd for n in ("h264ref", "omnetpp", "gcc")
    )
    bottom = statistics.mean(
        by_name[n].metrics.spd for n in ("hmmer", "libquantum")
    )
    assert top > bottom + 1.0

    # ASPCB ordering: mcf's resolution stalls dwarf hmmer's, as published
    # (107.2 vs 32.5).
    assert by_name["mcf"].metrics.aspcb > by_name["hmmer"].metrics.aspcb

    # Static code growth is moderate (published average ~9%).
    piscs = [o.metrics.piscs for o in outcomes]
    assert 0.0 < statistics.mean(piscs) < 20.0
