"""The Section 1 motivation: the transformation targets in-orders.

Not a published table, but the premise everything rests on -- "control
dependence impacts performance on in-order machines even with perfect
branch prediction" while OOO control speculation already copes.  The OOO
reference core should (a) beat the in-order baseline outright and (b) gain
essentially nothing from the transformation the in-order profits from."""

import statistics

from repro.experiments.motivation import run as run_motivation

from conftest import bench_config


def test_motivation_ooo(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_motivation(config=bench_config()), rounds=1, iterations=1
    )
    emit("motivation_ooo", result.render())

    inorder_gains = [r.inorder_speedup for r in result.rows]
    ooo_gains = [r.ooo_speedup for r in result.rows]
    assert statistics.mean(inorder_gains) > statistics.mean(ooo_gains) + 1.0
    assert statistics.mean(ooo_gains) < 2.0
    for row in result.rows:
        assert row.ooo_vs_inorder_baseline > 0.0, row.benchmark
