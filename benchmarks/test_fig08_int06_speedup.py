"""Figure 8: SPEC 2006 INT speedup over baseline, all REF inputs,
2/4/8-wide.

Shape: positive geomean at every width (paper: ~11% at 4-wide), and the
hard floor benchmarks (hmmer, libquantum) sit at the bottom.
"""

from repro.analysis import geomean_speedup
from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig08_int06_speedup(benchmark, emit):
    config = bench_config(widths=(2, 4, 8))
    figure = benchmark.pedantic(
        lambda: run_figure("fig8", config), rounds=1, iterations=1
    )
    emit("fig08_int06_speedup", figure.render())

    for width in (2, 4, 8):
        assert figure.geomean(width) > 0.0, f"width {width}"

    four_wide = dict(figure.series[4])
    # The paper's bottom pair (hmmer, libquantum: few eligible branches,
    # little hoistable work) underperforms the suite average.
    import statistics

    bottom = statistics.mean(
        (four_wide["hmmer"], four_wide["libquantum"])
    )
    assert bottom < statistics.mean(four_wide.values())
    # And the winners win by a visible margin.
    assert max(four_wide.values()) > 5.0
