"""Smoke benchmark for the parallel experiment engine.

Runs a 4-benchmark suite at ``RunConfig.quick()`` scale through the
serial path (``jobs=1``) and through worker processes, asserting the two
produce identical outcomes, and — when the machine actually has multiple
cores — that fanning out beats the serial wall-clock.  Caching is
disabled so both paths do the full simulation work.
"""

import os
import time

from repro.experiments import ExperimentEngine, RunConfig

SMOKE_BENCHMARKS = ["h264ref", "perlbench", "omnetpp", "gcc"]
PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))


def _run(jobs: int):
    engine = ExperimentEngine(jobs=jobs, use_cache=False)
    start = time.perf_counter()
    outcomes = engine.run_benchmarks(SMOKE_BENCHMARKS, RunConfig.quick())
    return outcomes, time.perf_counter() - start


def test_engine_smoke(benchmark):
    serial_outcomes, serial_s = _run(1)
    parallel_outcomes, parallel_s = _run(PARALLEL_JOBS)

    benchmark.pedantic(
        lambda: _run(PARALLEL_JOBS), rounds=1, iterations=1
    )

    # The parallel path reassembles byte-identical results.
    for a, b in zip(serial_outcomes, parallel_outcomes):
        assert a.name == b.name
        assert a.speedups == b.speedups
        assert vars(a.metrics) == vars(b.metrics)

    # With real cores available, fanning the seed jobs over workers must
    # beat the serial wall-clock; a single-core box only pays fork
    # overhead, so there we only check the parallel path completed.
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s, (
            f"parallel ({PARALLEL_JOBS} workers) took {parallel_s:.2f}s "
            f"vs serial {serial_s:.2f}s"
        )
