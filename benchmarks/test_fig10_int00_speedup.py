"""Figure 10: SPEC 2000 INT speedup, all REF inputs, 4-wide.

The paper finds SPEC 2000 INT better behaved (higher predictability, lower
D$ misses) than SPEC 2006, with positive geomean; twolf/vpr trail."""

from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig10_int00_speedup(benchmark, emit):
    figure = benchmark.pedantic(
        lambda: run_figure("fig10", bench_config(widths=(4,))),
        rounds=1,
        iterations=1,
    )
    emit("fig10_int00_speedup", figure.render())

    assert figure.geomean(4) > 0.0
    values = dict(figure.series[4])
    ranked = [name for name, _ in figure.series[4]]
    # The paper's laggards (few eligible branches + high D$ misses).
    assert ranked.index("twolf00") >= 6
    assert ranked.index("vpr00") >= 6
    assert len(values) == 12
