"""Simulator micro-benchmarks: wall-clock cost of the core loops.

These are conventional pytest-benchmark timings (multiple rounds) for the
components everything else is built on, plus a snapshot writer that
records simulated-KIPS into ``results/BENCH_sim_throughput.json``
alongside the numbers measured before the fast-path work (pre-decode,
table dispatch, stamped rings, incremental TAGE folding) so the speedup
stays visible in-repo.
"""

import json
import pathlib
import random
import time

from repro.branchpred import TagePredictor
from repro.compiler import compile_baseline, compile_decomposed
from repro.isa.decode import predecode
from repro.uarch import InOrderCore, MachineConfig, execute
from repro.uarch.ooo import OutOfOrderCore
from repro.workloads import omnetpp_carray_add, spec_benchmark

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Measured at commit 632232c (pre-optimisation), same workloads and
#: methodology as :func:`test_throughput_snapshot` below.
BEFORE = {
    "commit": "632232c",
    "inorder_kips": 178.8,
    "functional_kips": 569.9,
    "ooo_kips": 176.0,
    "tage_events_per_s": 79386.0,
}


def test_functional_executor_throughput(benchmark):
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    result = benchmark(lambda: execute(program))
    assert result.halted


def test_timing_simulator_throughput(benchmark):
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    core = MachineConfig.paper_default()
    result = benchmark(lambda: InOrderCore(core).run(program))
    assert result.stats.halted


def test_ooo_simulator_throughput(benchmark):
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    core = MachineConfig.paper_default()
    result = benchmark(lambda: OutOfOrderCore(core).run(program))
    assert result.stats.halted


def test_compile_decomposed_throughput(benchmark):
    func = omnetpp_carray_add(iterations=256)
    baseline = compile_baseline(func)
    result = benchmark(
        lambda: compile_decomposed(func, profile=baseline.profile)
    )
    assert result.transform.converted == 1


def test_workload_build_throughput(benchmark):
    spec = spec_benchmark("gcc", iterations=300)
    func = benchmark(lambda: spec.build(seed=1))
    assert func.static_instruction_count() > 100


def _tage_events(n=20000, sites=256, bias=0.7, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(sites), rng.random() < bias) for _ in range(n)]


def test_tage_lookup_update_throughput(benchmark):
    """Rate of speculative lookup + deferred-style update pairs; the
    incremental folds make this O(tables) per event instead of
    O(tables x history/bits)."""
    events = _tage_events()

    def run():
        predictor = TagePredictor()
        for branch_id, outcome in events:
            predictor.update(predictor.lookup(branch_id), outcome)
        return predictor

    predictor = benchmark(run)
    assert predictor._history != 0


def test_predecode_cache_hit(benchmark):
    """Re-simulating a program must not re-decode it: a predecode on an
    already-decoded program is a cache hit (attribute check only)."""
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    first = predecode(program)

    def run():
        for _ in range(1000):
            decoded = predecode(program)
        return decoded

    assert benchmark(run) is first


def test_predecode_cold(benchmark):
    """One-time cost of the decode pass itself (paid once per program)."""
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program

    def run():
        program._decoded = None
        return predecode(program)

    decoded = benchmark(run)
    assert decoded.length == len(program.instructions)


def test_throughput_snapshot():
    """Measure simulated-KIPS with the exact pre-optimisation methodology
    and archive before/after numbers in results/."""
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program

    def rate(fn, n=5):
        fn()  # warm (includes the one-time pre-decode)
        start = time.perf_counter()
        for _ in range(n):
            result = fn()
        return (time.perf_counter() - start) / n, result

    machine = MachineConfig.paper_default()
    wall, run = rate(lambda: InOrderCore(machine).run(program))
    inorder_kips = run.stats.committed / wall / 1000.0
    wall, run = rate(lambda: execute(program))
    functional_kips = run.instructions_executed / wall / 1000.0
    wall, run = rate(lambda: OutOfOrderCore(machine).run(program))
    ooo_kips = run.stats.committed / wall / 1000.0

    events = _tage_events()
    predictor = TagePredictor()
    start = time.perf_counter()
    for branch_id, outcome in events:
        predictor.update(predictor.lookup(branch_id), outcome)
    tage_rate = len(events) / (time.perf_counter() - start)

    after = {
        "inorder_kips": round(inorder_kips, 1),
        "functional_kips": round(functional_kips, 1),
        "ooo_kips": round(ooo_kips, 1),
        "tage_events_per_s": round(tage_rate, 1),
    }
    snapshot = {
        "workload": "compile_baseline(omnetpp_carray_add(iterations=512))",
        "machine": "MachineConfig.paper_default()",
        "before": BEFORE,
        "after": after,
        "speedup": {
            key: round(after[key] / BEFORE[key], 2)
            for key in after
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sim_throughput.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    # The tentpole's floor: >= 3x on the in-order timing simulator.
    assert after["inorder_kips"] >= 3.0 * BEFORE["inorder_kips"]
