"""Simulator micro-benchmarks: wall-clock cost of the core loops.

These are conventional pytest-benchmark timings (multiple rounds) for the
components everything else is built on."""

from repro.compiler import compile_baseline, compile_decomposed
from repro.uarch import InOrderCore, MachineConfig, execute
from repro.workloads import omnetpp_carray_add, spec_benchmark


def test_functional_executor_throughput(benchmark):
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    result = benchmark(lambda: execute(program))
    assert result.halted


def test_timing_simulator_throughput(benchmark):
    program = compile_baseline(omnetpp_carray_add(iterations=512)).program
    core = MachineConfig.paper_default()
    result = benchmark(lambda: InOrderCore(core).run(program))
    assert result.stats.halted


def test_compile_decomposed_throughput(benchmark):
    func = omnetpp_carray_add(iterations=256)
    baseline = compile_baseline(func)
    result = benchmark(
        lambda: compile_decomposed(func, profile=baseline.profile)
    )
    assert result.transform.converted == 1


def test_workload_build_throughput(benchmark):
    spec = spec_benchmark("gcc", iterations=300)
    func = benchmark(lambda: spec.build(seed=1))
    assert func.static_instruction_count() > 100
