"""Section 6.1: code size and I-cache effects.

Paper findings reproduced in shape: shrinking the I$ from 32 KB to 24 KB
costs the 4-wide in-order almost nothing (<0.5% geomean), static code size
grows ~9% on average, and only a minority of I$ misses land under a
mispredict shadow."""

from repro.experiments.side_effects import run_icache

from conftest import bench_config


def test_sec61_icache(benchmark, emit):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: run_icache(config), rounds=1, iterations=1
    )
    emit("sec61_icache", result.render())

    # In-orders barely notice a 25% smaller I$ (head-of-line blocking
    # means fetch is rarely the constraint).
    assert result.geomean_slowdown() < 1.5

    # Average static code growth in the published ballpark.
    assert 0.0 < result.mean_piscs() < 20.0

    # Misses under mispredict are a minority share (paper ~15%).
    shares = [v for _, v in result.misses_under_mispredict]
    assert all(0.0 <= v <= 100.0 for v in shares)
    assert sum(shares) / len(shares) < 60.0
