"""Persisted replay-prep artifact benchmarks.

The scenario the prep cache exists for: a multi-predictor sweep
replaying one captured baseline trace, where every sweep point lands
on a *fresh* store (a new worker process, a new run, or a queue
worker on another host sharing the cache root).  Without persisted
preps each point re-runs the serial per-branch predictor pass and the
cache-tag walk before the vectorized kernels can start; with them the
point attaches the finished layers from ``preps/`` and goes straight
to the kernels.

Two layers:

* pytest-benchmark micros of one cold-store sweep point under a live
  (non-recorded) predictor -- prep cache off vs warm;
* a snapshot (``results/BENCH_prep_cache.json``) of the full
  multi-predictor sweep across a chain of fresh stores, gated at the
  ISSUE's >= 1.3x, with the store counters proving the fleet-wide
  build count is exactly one per (trace, predictor, config class)
  and the results bit-identical either way.

Correctness (invalidation, quarantine, shm attach, scalar-oracle
equality) is pinned by ``tests/integration/test_prep_artifacts.py``.
"""

import json
import pathlib
import time

from repro.branchpred import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    TagePredictor,
)
from repro.compiler import compile_baseline, profile_program
from repro.experiments import plane
from repro.experiments.artifacts import ArtifactStore
from repro.ir import lower
from repro.uarch import MachineConfig
from repro.workloads import spec_benchmark

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_BUDGET = 400_000
_PREDICTORS = (
    TagePredictor,
    GSharePredictor,
    BimodalPredictor,
    HybridPredictor,
)


def _program_machine():
    spec = spec_benchmark("h264ref", iterations=120)
    profile = profile_program(
        lower(spec.build(seed=0)), max_instructions=_BUDGET
    )
    program = compile_baseline(
        spec.build(seed=1), profile=profile
    ).program
    return program, MachineConfig.paper_default(width=4)


def _sweep_machines(machine):
    """One sweep point per predictor: the recorded one plus live
    passes, every one its own prep slice."""
    return [machine.with_predictor(p) for p in _PREDICTORS]


def _seed_trace(cache_dir):
    store = ArtifactStore(cache_dir=cache_dir)
    program, machine = _program_machine()
    store.simulate_inorder(program, machine, max_instructions=_BUDGET)
    assert store.counters["trace_captures"] == 1
    return program, machine


def _fresh_point(cache_dir, program, machine):
    """One sweep point on a fresh store (new worker/run/host)."""
    store = ArtifactStore(cache_dir=cache_dir)
    result = store.simulate_inorder(
        program, machine, max_instructions=_BUDGET
    )
    return result, store.counters


def test_point_replay_prep_cold(benchmark, tmp_path, monkeypatch):
    """Prep cache off: every fresh store re-runs the serial live
    predictor pass and cache-tag walk before it can replay."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.setenv("REPRO_PREP_CACHE", "0")
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    program, machine = _seed_trace(tmp_path)
    live = machine.with_predictor(GSharePredictor)
    result = benchmark(
        lambda: _fresh_point(tmp_path, program, live)[0]
    )
    assert result.cycles > 0


def test_point_replay_prep_warm(benchmark, tmp_path, monkeypatch):
    """Persisted preps: a fresh store attaches the finished layers."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.delenv("REPRO_PREP_CACHE", raising=False)
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    program, machine = _seed_trace(tmp_path)
    live = machine.with_predictor(GSharePredictor)
    _, counters = _fresh_point(tmp_path, program, live)  # build once
    assert counters["prep_builds"] == 1
    result = benchmark(
        lambda: _fresh_point(tmp_path, program, live)[0]
    )
    assert result.cycles > 0


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_prep_cache_snapshot(tmp_path, monkeypatch):
    """Archive cold vs warm multi-predictor sweep walls in
    ``results/BENCH_prep_cache.json``, hold warm to the >= 1.3x
    target, and prove one build per (trace, predictor) fleet-wide."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    monkeypatch.delenv("REPRO_PREP_CACHE", raising=False)
    program, machine = _seed_trace(tmp_path)
    machines = _sweep_machines(machine)

    def sweep():
        # A chain of fresh stores: the state of a fleet where no two
        # points share a process.  Returns results + summed counters.
        results, totals = [], {}
        for m in machines:
            result, counters = _fresh_point(tmp_path, program, m)
            results.append(result)
            for name, count in counters.items():
                if count:
                    totals[name] = totals.get(name, 0) + count
        return results, totals

    # Build pass: first time any store sees each point, every slice
    # is built exactly once and persisted.
    _, build_totals = sweep()
    assert build_totals.get("prep_builds") == len(machines)
    assert "prep_hits" not in build_totals

    # Warm pass(es): the whole fleet reuses those builds forever.
    warm_wall, (warm_results, warm_totals) = _best_of(sweep)
    assert "prep_builds" not in warm_totals
    assert "prep_misses" not in warm_totals
    assert warm_totals.get("prep_hits") == len(machines)

    monkeypatch.setenv("REPRO_PREP_CACHE", "0")
    cold_wall, (cold_results, cold_totals) = _best_of(sweep)
    assert not any(
        name.startswith("prep_") for name in cold_totals
    )
    monkeypatch.delenv("REPRO_PREP_CACHE", raising=False)

    assert [r.stats for r in cold_results] == [
        r.stats for r in warm_results
    ], "prep cache changed replay results"
    assert [r.cycles for r in cold_results] == [
        r.cycles for r in warm_results
    ]

    preps = sorted((tmp_path / "preps").glob("*.prep"))
    snapshot = {
        "config": {
            "workload": "h264ref",
            "iterations": 120,
            "max_instructions": _BUDGET,
            "predictors": [p.__name__ for p in _PREDICTORS],
        },
        "lever": (
            "REPRO_PREP_CACHE (warm: fresh store per point attaching "
            "persisted preps/ slices; cold: same chain rebuilding "
            "every prep layer per point)"
        ),
        "sweep": {
            "points": len(machines),
            "cold_wall_s": round(cold_wall, 3),
            "warm_wall_s": round(warm_wall, 3),
            "speedup": round(cold_wall / warm_wall, 2),
        },
        "counters": {
            "build_pass": build_totals,
            "warm_pass": warm_totals,
            "persisted_slices": len(preps),
        },
        "note": (
            "chain-of-fresh-stores models a fleet (new workers, new "
            "runs, queue workers sharing a cache root); build_pass "
            "shows exactly one prep_builds per (trace, predictor, "
            "config class), warm_pass shows pure hits with "
            "bit-identical results"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_prep_cache.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    assert snapshot["sweep"]["speedup"] >= 1.3, (
        f"warm prep sweep speedup {snapshot['sweep']['speedup']}x "
        "< 1.3x target"
    )
