"""Execution-backend dispatch overhead benchmark.

One small parallel sweep of compute-bound jobs, driven twice through
the engine: once on the supervised local pool and once on the
lease-based queue backend (two spawned workers, shared-directory
coordination).  The queue pays real costs the pool does not -- a
pickled job record, an fsynced lease, heartbeat writes, a durable
completion link, and poll-interval latency -- so the gate is a bound,
not a win: the queue sweep must stay within ``_MAX_RATIO`` x the local
wall plus ``_SLACK_S`` of fixed setup slack.  Results land in
``results/BENCH_backends.json``.

Correctness (identical results, failover, health accounting) is pinned
by ``tests/integration/test_backends.py``; this file only watches the
overhead so a queue-path regression shows up as a number, not an
anecdote.
"""

import json
import pathlib
import time

from repro.experiments import ExperimentEngine

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_JOBS = 8
_SPIN = 120_000
#: Queue wall must stay within ratio * local + slack (generous: CI
#: boxes run 1-2 cores and the queue pays two worker spawns).
_MAX_RATIO = 4.0
_SLACK_S = 3.0


def _spin_job(payload) -> dict:
    total = 0
    for i in range(_SPIN):
        total += (i ^ payload) & 0xFF
    return {
        "value": total,
        "simulated_cycles": _SPIN,
        "committed_instructions": _SPIN,
    }


def _sweep(backend, cache_dir):
    engine = ExperimentEngine(
        jobs=2, cache_dir=cache_dir, use_cache=False, backend=backend,
    )
    start = time.perf_counter()
    results = engine.map(
        _spin_job, list(range(_JOBS)),
        labels=[f"bench{i}" for i in range(_JOBS)],
    )
    wall = time.perf_counter() - start
    assert all(r is not None for r in results)
    assert engine.backend_degraded == 0
    return wall, results


def test_backend_overhead_snapshot(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_QUEUE_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_QUEUE_POLL", "0.02")

    local_wall, local_results = _sweep("local", tmp_path / "local")
    queue_wall, queue_results = _sweep("queue", tmp_path / "queue")
    assert queue_results == local_results, (
        "queue backend changed the sweep results"
    )

    bound = _MAX_RATIO * local_wall + _SLACK_S
    snapshot = {
        "config": {
            "jobs": _JOBS,
            "engine_jobs": 2,
            "spin_iterations": _SPIN,
        },
        "lever": "REPRO_BACKEND (supervised pool vs lease-based queue)",
        "local_wall_s": round(local_wall, 3),
        "queue_wall_s": round(queue_wall, 3),
        "ratio": round(queue_wall / local_wall, 2),
        "bound_s": round(bound, 3),
        "note": (
            "queue overhead = worker spawn + per-job record/lease/"
            "completion fsyncs + poll latency; gated as a bound, "
            "not a win"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_backends.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    assert queue_wall <= bound, (
        f"queue sweep {queue_wall:.2f}s exceeds bound {bound:.2f}s "
        f"({_MAX_RATIO}x local {local_wall:.2f}s + {_SLACK_S}s)"
    )
