"""Section 5.3: predictor sensitivity on the hard-to-predict benchmarks.

The paper: with better predictors, the transformation's speedup *improves*
(~0.3% per 1% misprediction-rate reduction) on astar/sjeng/gobmk/mcf."""

import statistics

from repro.experiments.sensitivity import run as run_sensitivity

from conftest import bench_config


def test_sec53_predictor_sensitivity(benchmark, emit):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: run_sensitivity(config=config), rounds=1, iterations=1
    )
    emit("sec53_predictor_sensitivity", result.render())

    benchmarks = sorted({p.benchmark for p in result.points})
    assert benchmarks == ["astar", "gobmk", "mcf", "sjeng"]

    # The headline direction: on average across the four benchmarks,
    # speedup grows as mispredictions fall (positive slope).
    slopes = [result.slope(name) for name in benchmarks]
    assert statistics.mean(slopes) > 0.0

    # The strongest predictor should not be the worst configuration.
    for name in benchmarks:
        series = [p for p in result.points if p.benchmark == name]
        best_pred_speedup = series[-1].speedup  # isl-tage
        worst = min(p.speedup for p in series)
        assert best_pred_speedup >= worst
