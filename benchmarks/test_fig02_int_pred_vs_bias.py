"""Figure 2: predictability vs bias, top 75 forward branches, SPEC06 INT.

Expected shape: the two curves coincide over the high-bias head, then bias
falls away sharply while predictability stays high.
"""

from repro.experiments.pred_vs_bias import run as run_curves


def test_fig02_int_pred_vs_bias(benchmark, emit):
    curve = benchmark.pedantic(
        lambda: run_curves("int2006", stream_length=1500),
        rounds=1,
        iterations=1,
    )
    emit("fig02_int_pred_vs_bias", curve.render())

    # Head of the curve: highly biased, predictability tracks bias.
    assert curve.bias[0] > 0.93
    assert abs(curve.predictability[0] - curve.bias[0]) < 0.05
    # Tail: bias dives toward 0.5; predictability stays well above it.
    assert curve.bias[-1] < 0.70
    assert curve.predictability[-1] - curve.bias[-1] > 0.05
    # The divergence begins somewhere past the head.
    assert curve.crossover_rank() is not None
    assert curve.crossover_rank() > 5
