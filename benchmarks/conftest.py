"""Shared configuration for the table/figure regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints
it (uncaptured) and archives it under ``results/``, together with a
machine-readable ``<name>.manifest.json`` run record (config, per-job
timings, cache hit/miss counts).  Scale is controlled by
``REPRO_BENCH_ITERATIONS`` / ``REPRO_BENCH_SEEDS`` so the default run
finishes in minutes while a full run reproduces the EXPERIMENTS.md
numbers; ``REPRO_JOBS`` fans the simulation jobs over worker processes
and ``results/.cache/`` memoises them across runs.
"""

import os
import pathlib

import pytest

from repro.experiments import RunConfig, default_engine

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Default bench scale; REPRO_BENCH_ITERATIONS=600 reproduces the
#: EXPERIMENTS.md tables.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "500"))
BENCH_SEEDS = tuple(
    range(1, 1 + int(os.environ.get("REPRO_BENCH_SEEDS", "1")))
)

#: Worker-process count for the experiment engine (``REPRO_JOBS`` wins;
#: the default engine the runners use reads the same variable).
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "0")) or os.cpu_count() or 1


def bench_config(**overrides) -> RunConfig:
    defaults = dict(iterations=BENCH_ITERATIONS, ref_seeds=BENCH_SEEDS)
    defaults.update(overrides)
    return RunConfig(**defaults)


@pytest.fixture
def emit(capsys):
    """Print a regenerated table/figure past pytest's capture and archive
    it in results/, with the engine's run manifest alongside."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        engine = default_engine()
        if engine.records:
            engine.write_manifest(RESULTS_DIR / f"{name}.manifest.json")
            engine.reset_stats()
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _emit
