"""Shared configuration for the table/figure regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints
it (uncaptured) and archives it under ``results/``.  Scale is controlled
by ``REPRO_BENCH_ITERATIONS`` / ``REPRO_BENCH_SEEDS`` so the default run
finishes in minutes while a full run reproduces the EXPERIMENTS.md
numbers.
"""

import os
import pathlib

import pytest

from repro.experiments import RunConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Default bench scale; REPRO_BENCH_ITERATIONS=600 reproduces the
#: EXPERIMENTS.md tables.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "500"))
BENCH_SEEDS = tuple(
    range(1, 1 + int(os.environ.get("REPRO_BENCH_SEEDS", "1")))
)


def bench_config(**overrides) -> RunConfig:
    defaults = dict(iterations=BENCH_ITERATIONS, ref_seeds=BENCH_SEEDS)
    defaults.update(overrides)
    return RunConfig(**defaults)


@pytest.fixture
def emit(capsys):
    """Print a regenerated table/figure past pytest's capture and archive
    it in results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _emit
