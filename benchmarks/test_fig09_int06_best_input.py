"""Figure 9: SPEC 2006 INT speedup for the top-performing REF input.

Best-input bars dominate the all-input means of Figure 8 (bias varies by
input, Section 5.1)."""

from repro.experiments.speedups import run_figure

from conftest import bench_config


def test_fig09_int06_best_input(benchmark, emit):
    config = bench_config(widths=(4,), ref_seeds=(1, 2))
    figure = benchmark.pedantic(
        lambda: run_figure("fig9", config), rounds=1, iterations=1
    )
    emit("fig09_int06_best_input", figure.render())

    best = dict(figure.series[4])
    mean_figure = run_figure("fig8", config)
    mean = dict(mean_figure.series[4])
    for name in best:
        assert best[name] >= mean[name] - 1e-9, name
    assert figure.geomean(4) >= mean_figure.geomean(4)
