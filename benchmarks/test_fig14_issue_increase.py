"""Figure 14: % increase in instructions issued, 4-wide experimental vs
baseline.

Paper: negligible for FP, small (~1% average) for INT -- the efficiency
cost of committing wrong-path hoisted work is low because low-
predictability candidates get small hoist regions."""

import statistics

from repro.experiments.side_effects import run_issue_increase
from repro.workloads import BENCHMARKS

from conftest import bench_config


def test_fig14_issue_increase(benchmark, emit):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: run_issue_increase(config), rounds=1, iterations=1
    )
    emit("fig14_issue_increase", result.render())

    int_values = [
        v for name, v in result.values
        if BENCHMARKS[name].suite == "int2006"
    ]
    fp_values = [
        v for name, v in result.values
        if BENCHMARKS[name].suite == "fp2006"
    ]
    # Small on average; nothing pathological.
    assert statistics.mean(int_values) < 8.0
    assert statistics.mean(fp_values) < 8.0
    assert all(v < 25.0 for _, v in result.values)
    # The transformation does issue *extra* instructions overall.
    assert statistics.mean(int_values + fp_values) > -1.0
