"""Sweep-fused replay benchmark: one trace pass scores a width axis.

The scenario the fused engine exists for: the Fig. 8 width sweep,
where every width of one program replays the *same* captured trace
and only the lane constants (width, ports, front-end, bubbles)
differ.  Per-point replay walks the fused action stream once per
width; the fused pass carries all lane states through a single
region-memoized walk and emits every width's ``SimStats`` at once.

Snapshot (``results/BENCH_sweep_fused.json``): warm per-point
(``REPRO_REPLAY_MULTI=0``, six vectorized replays) vs warm fused (two
passes, one per binary) over the Fig. 8 axis, gated at >= 2x, with
store counters proving exactly one fused pass per program covers all
three widths and the per-lane results bit-identical either way.

Correctness (all workload kinds, live predictors, fallback rules,
golden lanes) is pinned by ``tests/uarch/test_replay_multi.py`` and
``tests/golden/test_fused_lanes.py``.
"""

import dataclasses
import json
import pathlib
import time

from repro.compiler import (
    compile_baseline,
    compile_decomposed,
    profile_program,
)
from repro.experiments import plane
from repro.experiments.artifacts import ArtifactStore
from repro.ir import lower
from repro.uarch import MachineConfig
from repro.workloads import spec_benchmark

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_BUDGET = 2_000_000
_ITERATIONS = 600
_WIDTHS = (2, 4, 8)


def _programs():
    spec = spec_benchmark("h264ref", iterations=_ITERATIONS)
    profile = profile_program(
        lower(spec.build(seed=0)), max_instructions=_BUDGET
    )
    ref = spec.build(seed=1)
    return (
        compile_baseline(ref, profile=profile).program,
        compile_decomposed(ref, profile=profile).program,
    )


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_sweep_fused_snapshot(tmp_path, monkeypatch):
    """Archive warm per-point vs fused Fig. 8 width-sweep walls in
    ``results/BENCH_sweep_fused.json`` and hold fused to >= 2x."""
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.delenv(plane.PREFIX_ENV, raising=False)
    monkeypatch.delenv("REPRO_REPLAY_MULTI", raising=False)

    programs = _programs()
    machines = [MachineConfig.paper_default(width=w) for w in _WIDTHS]
    store = ArtifactStore(cache_dir=tmp_path)
    # Seed: capture both traces once so every timed point replays.
    for program in programs:
        store.simulate_inorder(
            program, machines[1], max_instructions=_BUDGET
        )
    assert store.counters["trace_captures"] == 2

    def sweep():
        mark = store.mark()
        runs = [
            store.simulate_inorder_sweep(
                program, machines, max_instructions=_BUDGET
            )
            for program in programs
        ]
        return runs, store.delta(mark)

    # Warm-up builds prep layers + region tables untimed; _best_of's
    # min then reports steady-state walls for both modes.
    fused_wall, (fused_runs, fused_delta) = _best_of(sweep)
    assert fused_delta.get("fused_passes") == len(programs)
    assert fused_delta.get("fused_points") == len(programs) * len(_WIDTHS)
    assert "fused_fallbacks" not in fused_delta
    assert "fused_diverges" not in fused_delta

    monkeypatch.setenv("REPRO_REPLAY_MULTI", "0")
    pp_wall, (pp_runs, pp_delta) = _best_of(sweep)
    monkeypatch.delenv("REPRO_REPLAY_MULTI")
    assert not any(name.startswith("fused_") for name in pp_delta)
    assert pp_delta.get("trace_replays") == len(programs) * len(_WIDTHS)

    for fused_axis, pp_axis in zip(fused_runs, pp_runs):
        for fast, slow in zip(fused_axis, pp_axis):
            assert dataclasses.asdict(fast.stats) == dataclasses.asdict(
                slow.stats
            ), "fused sweep changed replay results"
            assert fast.registers == slow.registers
            assert fast.memory.snapshot() == slow.memory.snapshot()

    snapshot = {
        "config": {
            "workload": "h264ref",
            "iterations": _ITERATIONS,
            "max_instructions": _BUDGET,
            "widths": list(_WIDTHS),
            "binaries": ["baseline", "decomposed"],
        },
        "lever": (
            "REPRO_REPLAY_MULTI (fused: one region-memoized trace walk "
            "carrying every width's lane state; per-point: one "
            "vectorized replay per width)"
        ),
        "sweep": {
            "points": len(programs) * len(_WIDTHS),
            "per_point_wall_s": round(pp_wall, 3),
            "fused_wall_s": round(fused_wall, 3),
            "speedup": round(pp_wall / fused_wall, 2),
        },
        "counters": {
            "fused_pass": fused_delta,
            "per_point_pass": pp_delta,
        },
        "gate": 2.0,
        "note": (
            "warm walls (traces captured, preps and region tables "
            "built); fused_pass counters prove one fused pass per "
            "binary covers all three widths with per-lane results "
            "bit-identical to per-point replay"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep_fused.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    assert snapshot["sweep"]["speedup"] >= snapshot["gate"], (
        f"fused width sweep speedup {snapshot['sweep']['speedup']}x "
        f"< {snapshot['gate']}x target"
    )
