"""Figure 3: predictability vs bias, top 75 forward branches, SPEC06 FP.

FP branch populations are more biased overall than INT (fewer candidate
branches), but the tail gap is still there -- and FP predictability stays
higher than INT's.
"""

from repro.experiments.pred_vs_bias import run as run_curves


def test_fig03_fp_pred_vs_bias(benchmark, emit):
    fp = benchmark.pedantic(
        lambda: run_curves("fp2006", stream_length=1500),
        rounds=1,
        iterations=1,
    )
    emit("fig03_fp_pred_vs_bias", fp.render())

    assert fp.bias[0] > 0.93
    assert fp.predictability[-1] - fp.bias[-1] > 0.05

    # Cross-suite comparison from the paper: FP stays more predictable in
    # the tail than INT.
    int_curve = run_curves("int2006", stream_length=1500)
    fp_tail = sum(fp.predictability[-15:]) / 15
    int_tail = sum(int_curve.predictability[-15:]) / 15
    assert fp_tail >= int_tail - 0.03
