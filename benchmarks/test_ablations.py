"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.analysis import render_table
from repro.experiments.ablations import (
    dbb_occupancy,
    hoist_depth_sweep,
    push_down_ablation,
    selection_threshold_sweep,
)

from conftest import bench_config


def test_ablation_hoist_depth(benchmark, emit):
    config = bench_config()
    sweep = benchmark.pedantic(
        lambda: hoist_depth_sweep("omnetpp", config=config),
        rounds=1,
        iterations=1,
    )
    rows = [[str(d), f"{s:.2f}"] for d, s in sweep]
    emit(
        "ablation_hoist_depth",
        render_table(["hoist budget", "speedup%"], rows,
                     title="Hoist-depth sweep (omnetpp)"),
    )
    by_depth = dict(sweep)
    # No hoisting => essentially no benefit; full budget is the best or
    # near-best point.
    assert by_depth[0] < max(by_depth.values()) - 0.5
    assert by_depth[12] >= max(by_depth.values()) - 2.0


def test_ablation_selection_threshold(benchmark, emit):
    config = bench_config()
    sweep = benchmark.pedantic(
        lambda: selection_threshold_sweep("h264ref", config=config),
        rounds=1,
        iterations=1,
    )
    rows = [[f"{t:.2f}", str(c), f"{s:.2f}"] for t, c, s in sweep]
    emit(
        "ablation_selection_threshold",
        render_table(["threshold", "converted", "speedup%"], rows,
                     title="Selection-threshold sweep (paper rule: 0.05)"),
    )
    conversions = [c for _, c, _ in sweep]
    # Monotone: tightening the threshold can only drop conversions.
    assert conversions == sorted(conversions, reverse=True)
    # The paper's 5% point converts a healthy subset.
    five_percent = dict((t, c) for t, c, _ in sweep)[0.05]
    assert five_percent >= 1


def test_ablation_push_down(benchmark, emit):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: push_down_ablation("omnetpp", config=config),
        rounds=1,
        iterations=1,
    )
    rows = [[k, f"{v:.2f}"] for k, v in result.items()]
    emit(
        "ablation_push_down",
        render_table(["variant", "speedup%"], rows,
                     title="Resolution-slice push-down ablation"),
    )
    assert set(result) == {"with-push-down", "without"}


def test_ablation_dbb_sizing(benchmark, emit):
    config = bench_config()
    occupancy = benchmark.pedantic(
        lambda: dbb_occupancy("h264ref", config=config),
        rounds=1,
        iterations=1,
    )
    rows = [[str(n), str(m)] for n, m in occupancy]
    emit(
        "ablation_dbb_sizing",
        render_table(["DBB entries", "max outstanding"], rows,
                     title="DBB sizing (paper: 16 entries suffice)"),
    )
    # Back-pressure keeps outstanding decomposed branches far below 16.
    sixteen = dict(occupancy)[16]
    assert sixteen <= 16
