"""Text visualisation of the in-order pipeline's issue timeline.

Renders a Gantt-style chart from the simulator's trace hook: one row per
dynamic instruction, columns are cycles, ``F`` marks the fetch cycle,
``=`` the fetch-to-issue wait, ``I`` the issue cycle and ``-`` the
execution latency through completion.  Head-of-line blocking, branch
resolution stalls and the overlap the decomposed branch transformation
buys are directly visible.

Used by the examples and handy when debugging schedules::

    from repro.uarch import InOrderCore, MachineConfig, render_timeline
    text = render_timeline(program, MachineConfig.paper_default(),
                           start=100, count=30)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa import Program
from .config import MachineConfig
from .core import InOrderCore


@dataclass(frozen=True)
class TraceRow:
    """One dynamic instruction's timing."""

    index: int
    pc: int
    text: str
    fetch: int
    issue: int
    complete: int


def collect_timeline(
    program: Program,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 100_000,
) -> List[TraceRow]:
    """Run the timing model and capture every back-end instruction."""
    rows: List[TraceRow] = []

    def hook(pc, inst, fetch, issue, complete):
        rows.append(
            TraceRow(
                index=len(rows),
                pc=pc,
                text=str(inst),
                fetch=fetch,
                issue=issue,
                complete=complete,
            )
        )

    InOrderCore(config or MachineConfig.paper_default()).run(
        program, max_instructions=max_instructions, trace=hook
    )
    return rows


def render_timeline(
    program: Program,
    config: Optional[MachineConfig] = None,
    start: int = 0,
    count: int = 24,
    width: int = 64,
    max_instructions: int = 100_000,
) -> str:
    """Render ``count`` dynamic instructions starting at ``start``."""
    rows = collect_timeline(program, config, max_instructions)[
        start : start + count
    ]
    if not rows:
        return "(no instructions traced)"
    origin = min(row.fetch for row in rows)
    horizon = max(row.complete for row in rows)
    span = max(1, horizon - origin + 1)
    scale = max(1, (span + width - 1) // width)

    def column(cycle: int) -> int:
        return (cycle - origin) // scale

    label_width = max(len(row.text) for row in rows)
    lines = [
        f"cycles {origin}..{horizon}"
        + (f" ({scale} cycles/column)" if scale > 1 else "")
    ]
    for row in rows:
        chart = [" "] * (column(horizon) + 1)
        for cycle_col in range(column(row.fetch), column(row.issue)):
            chart[cycle_col] = "="
        for cycle_col in range(column(row.issue), column(row.complete) + 1):
            chart[cycle_col] = "-"
        chart[column(row.fetch)] = "F"
        chart[column(row.issue)] = "I"
        lines.append(
            f"{row.pc:5d} {row.text.ljust(label_width)} |{''.join(chart)}"
        )
    return "\n".join(lines)
