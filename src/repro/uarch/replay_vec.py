"""Vectorized trace-replay kernels: precompute everything timing-free.

The scalar replay loops (:mod:`repro.uarch.replay`) re-run the full
timing machinery one instruction at a time.  The observation this
module exploits: in recorded-prediction mode every *decision* the loop
makes -- which instructions touch the I-cache, which cache level each
access hits, whether a BTB lookup hits, whether the RAS mispredicts a
return, whether a branch redirects -- is independent of the clock.
The global cache-access sequence (an instruction access at each fetch
line change, interleaved with data accesses in stream order,
instruction-before-data per instruction) is fully determined by the
trace columns and the predecoded rows alone, because the caches and
predictors key on addresses, never on cycle numbers.

So replay splits into two halves:

* a **precompute** pass, array-at-a-time with numpy: per-kind index
  arrays from the predecoded rows, redirect/reset classification,
  batched predictor bits (recorded bits verbatim; live mode runs the
  predictor once over the branch column, standalone), a cache-tag
  pre-pass assigning a hit level to every I-cache/load/store access,
  and a BTB/RAS re-simulation over just their event streams.  The
  results are cached on ``trace._prep`` keyed by replay mode, RAS
  size, cache geometry and BTB size, so a sweep pays once per layer
  (``Trace.nbytes`` accounts for the cache; the artifact store's LRU
  sees the footprint).
* a **serial kernel** that only advances the genuinely
  clock-coupled state -- fetch cycle/slot arithmetic, the
  fetch-buffer/window gate, the register scoreboard, the issue-ring
  search and the miss-buffer heap -- driven by a flat per-stream
  action-code table instead of predecoded rows.

Straight-line regions between redirects are exactly the stretches
with no precomputed fetch adjustment (``fetch_add[i] < 0``); the
kernel's per-instruction work there collapses to list reads and
integer compares.

Bit-exactness contract: the kernels reproduce the scalar loops'
``SimStats`` exactly (golden fingerprints in ``tests/golden`` plus
the equivalence suite in ``tests/uarch``).  Anything the precompute
cannot prove safe -- empty trace, a HALT anywhere but the stream end,
column/event count mismatches, a live replay under an unnameable
predictor factory, degenerate gate sizes -- returns ``None`` and the
caller falls back to the scalar oracle.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import struct
import sys
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa.decode import (
    K_HALT,
    K_LOAD,
    K_NOP,
    K_PREDICT,
    K_RESOLVE,
    K_RET,
    K_BRANCH,
    K_CALL,
    K_JMP,
    K_STORE,
    predecode,
)
from .config import MachineConfig
from .core import _RING, _RING_MASK
from .ooo import _RING as _OOO_RING, _RING_MASK as _OOO_RING_MASK
from .stats import SimStats
from .trace import Trace, predictor_id

# Per-instruction action codes (uint8 table, one entry per stream
# position).  The kernels dispatch on these instead of re-deriving
# kind/outcome from rows and event columns.  Codes >= A_PREDICT_NONE
# never reach the back end (front-end-only kinds).
A_ALU = 0
A_LOAD = 1
A_STORE = 2
A_NOP = 3
A_BR_NONE = 4
A_BR_TAKEN = 5
A_BR_MISP = 6
A_RS_NONE = 7
A_RS_MISP = 8
A_JMP = 9
A_CALL = 10
A_RET_OK = 11
A_RET_MISP = 12
A_PREDICT_NONE = 13
A_PREDICT_TAKEN = 14
A_HALT = 15

# Fused kernel codes: stream action codes with the memory and BTB
# outcomes folded in at prep time, so the serial loop consumes no
# event iterators at all.  Hit loads carry their found-level latency
# in the fused ``lat`` column and behave exactly like ALU ops; only
# genuine misses (heap traffic) keep a dedicated arm.  Codes 4..9 are
# the contiguous branch/resolve band (resolution-stall accounting);
# codes >= F_PREDICT_NONE never reach the back end.
F_ALU = 0
F_LD_HIT = 1
F_ST_HIT = 2
F_JMP = 3
F_BR_NONE = 4
F_BR_TAKEN = 5
F_BR_TAKEN_MISSBTB = 6
F_BR_MISP = 7
F_RS_NONE = 8
F_RS_MISP = 9
F_LD_MISS = 10
F_ST_MISS = 11
F_CALL = 12
F_RET_OK = 13
F_RET_MISP = 14
F_NOP = 15
F_PREDICT_NONE = 16
F_PREDICT_TAKEN = 17
F_PREDICT_TAKEN_MISSBTB = 18
F_HALT = 19

# Stream-code -> fused-code table (misses/BTB variants patched after).
_FUSE_LUT = np.array(
    [
        F_ALU,            # A_ALU
        F_LD_HIT,         # A_LOAD (miss positions patched to F_LD_MISS)
        F_ST_HIT,         # A_STORE (miss positions patched)
        F_NOP,            # A_NOP
        F_BR_NONE,        # A_BR_NONE
        F_BR_TAKEN,       # A_BR_TAKEN (+1 on BTB miss)
        F_BR_MISP,        # A_BR_MISP
        F_RS_NONE,        # A_RS_NONE
        F_RS_MISP,        # A_RS_MISP
        F_JMP,            # A_JMP
        F_CALL,           # A_CALL
        F_RET_OK,         # A_RET_OK
        F_RET_MISP,       # A_RET_MISP
        F_PREDICT_NONE,   # A_PREDICT_NONE
        F_PREDICT_TAKEN,  # A_PREDICT_TAKEN (+1 on BTB miss)
        F_HALT,           # A_HALT
    ],
    np.uint8,
)


class ReplayPrep:
    """Layered precompute cache attached to one :class:`Trace`.

    Layers and their keys (finer layers reuse coarser ones):

    * ``base``       -- per decoded-rows identity: gathers, positions
    * ``pred_bits``  -- per mode ("recorded" or ("live", pid))
    * ``ras_bits``   -- per ``ras_entries``
    * ``streams``    -- per (mode, ras): action codes, resets, counters
    * ``mems``       -- per (stream, cache geometry): hit levels
    * ``btbs``       -- per (core, mode, btb_entries): miss bits
    * ``regions``    -- per kernel key: the sweep-fused replay's
      interned region table (:mod:`.replay_multi`)
    """

    __slots__ = (
        "source_id",
        "base",
        "pred_bits",
        "ras_bits",
        "streams",
        "mems",
        "btbs",
        "kernels",
        "regions",
    )

    def __init__(self, source_id: int) -> None:
        self.source_id = source_id
        self.base: Optional[Dict] = None
        self.pred_bits: Dict = {}
        self.ras_bits: Dict[int, np.ndarray] = {}
        self.streams: Dict = {}
        self.mems: Dict = {}
        self.btbs: Dict = {}
        self.kernels: Dict = {}
        self.regions: Dict = {}

    def nbytes(self) -> int:
        """Approximate footprint for the artifact store's LRU budget
        (ndarrays exactly; lists at pointer-size per slot)."""

        def _size(value) -> int:
            if isinstance(value, np.ndarray):
                return value.nbytes
            if isinstance(value, list):
                return 8 * len(value)
            if isinstance(value, tuple):
                return sum(_size(v) for v in value)
            return 0

        total = 0
        tables = [self.pred_bits, self.ras_bits, self.btbs]
        if self.base:
            tables.append(self.base)
        tables.extend(self.streams.values())
        tables.extend(self.mems.values())
        tables.extend(self.kernels.values())
        tables.extend(self.regions.values())
        for table in tables:
            values = table.values() if isinstance(table, dict) else table
            for value in values:
                total += _size(value)
        return total


# ------------------------------------------------------------------ layers


def _build_base(trace: Trace, decoded) -> Optional[Dict]:
    """Mode/geometry-independent gathers over the committed stream.

    Returns ``None`` when the trace violates an assumption the
    vectorized path relies on (the scalar oracle then handles it)."""
    rows = decoded.rows
    nrows = len(rows)
    pcs_np = trace.column("pcs")
    n = len(pcs_np)
    if n == 0 or nrows == 0:
        return None

    kind_by_pc = np.fromiter(
        (row[0] for row in rows), np.uint8, count=nrows
    )
    lat_by_pc = np.fromiter(
        (row[7] for row in rows), np.int64, count=nrows
    )
    fu_by_pc = np.fromiter((row[8] for row in rows), np.uint8, count=nrows)
    dest_by_pc = np.fromiter(
        (row[1] if row[1] is not None else 0 for row in rows),
        np.int64,
        count=nrows,
    )
    hoist_by_pc = np.fromiter(
        (1 if row[10] else 0 for row in rows), np.uint8, count=nrows
    )
    spec_by_pc = np.fromiter(
        (1 if row[9] else 0 for row in rows), np.uint8, count=nrows
    )

    kind_s = kind_by_pc[pcs_np]
    halt_pos = np.flatnonzero(kind_s == K_HALT)
    if len(halt_pos) and (len(halt_pos) > 1 or halt_pos[0] != n - 1):
        return None  # HALT anywhere but the end: oracle territory
    halted = bool(len(halt_pos))

    ld_pos = np.flatnonzero(kind_s == K_LOAD)
    st_pos = np.flatnonzero(kind_s == K_STORE)
    br_pos = np.flatnonzero(kind_s == K_BRANCH)
    rs_pos = np.flatnonzero(kind_s == K_RESOLVE)
    jmp_pos = np.flatnonzero(kind_s == K_JMP)
    call_pos = np.flatnonzero(kind_s == K_CALL)
    ret_pos = np.flatnonzero(kind_s == K_RET)
    pr_pos = np.flatnonzero(kind_s == K_PREDICT)

    # Event columns must line up with the stream's event counts.
    if (
        len(ld_pos) != len(trace.load_addrs)
        or len(st_pos) != len(trace.store_addrs)
        or len(br_pos) != len(trace.branch_pred)
        or len(br_pos) != len(trace.branch_taken)
        or len(rs_pos) != len(trace.resolve_diverted)
        or len(ret_pos) != len(trace.ret_targets)
        or len(pr_pos) != len(trace.predict_taken)
    ):
        return None

    spec_mask = spec_by_pc[pcs_np][ld_pos] != 0
    if int(np.count_nonzero(spec_mask)) != len(trace.load_suppressed):
        return None
    sup_per_load = np.zeros(len(ld_pos), np.uint8)
    sup_per_load[spec_mask] = trace.column("load_suppressed")

    pcs_list = pcs_np.tolist()
    srcs_by_pc = [row[2] for row in rows]
    # Scoreboard columns, specialised for the dominant 0/1-source
    # case: first source (register 64 is a never-written sentinel
    # whose ready time stays 0) plus the remaining-sources tuple.
    src0_by_pc = [s[0] if s else 64 for s in srcs_by_pc]
    rest_by_pc = [s[1:] for s in srcs_by_pc]

    return {
        "n": n,
        "pcs_np": pcs_np,
        "pcs_list": pcs_list,
        "kind_s": kind_s,
        # 64-byte fetch lines, fixed shift as in core/replay.
        "line_s": pcs_np.astype(np.int64) >> 4,
        "lat_np": lat_by_pc[pcs_np],
        "fu_list": fu_by_pc[pcs_np].tolist(),
        "dest_list": dest_by_pc[pcs_np].tolist(),
        "src0_list": [src0_by_pc[pc] for pc in pcs_list],
        "rest_list": [rest_by_pc[pc] for pc in pcs_list],
        "ld_pos": ld_pos,
        "st_pos": st_pos,
        "br_pos": br_pos,
        "rs_pos": rs_pos,
        "jmp_pos": jmp_pos,
        "call_pos": call_pos,
        "ret_pos": ret_pos,
        "pr_pos": pr_pos,
        "sup_mask": sup_per_load != 0,
        "br_pred_np": trace.column("branch_pred"),
        "br_taken_np": trace.column("branch_taken"),
        "pr_np": trace.column("predict_taken"),
        "div_np": trace.column("resolve_diverted"),
        "load_addrs_np": trace.column("load_addrs"),
        "store_addrs_np": trace.column("store_addrs"),
        "ret_targets_list": trace.column("ret_targets").tolist(),
        "bid_list": [
            rows[pc][6] for pc in pcs_np[br_pos].tolist()
        ],
        "halted": halted,
        "hoisted": int(np.count_nonzero(hoist_by_pc[pcs_np])),
        "issued": int(np.count_nonzero(kind_s < K_NOP)),
        "speculative_loads": int(np.count_nonzero(spec_mask)),
    }


def _pred_bits_for(
    prep: ReplayPrep, base: Dict, mode_key, config: MachineConfig
) -> np.ndarray:
    """Per-branch predicted-taken bits: the recorded column verbatim,
    or one standalone live-predictor pass over the branch stream (the
    predictor is history-dependent but self-contained, so the pass
    runs once and every width/geometry replay reuses its bits)."""
    bits = prep.pred_bits.get(mode_key)
    if bits is None:
        if mode_key == "recorded":
            bits = base["br_pred_np"]
        else:
            predictor = config.predictor_factory()
            lookup = predictor.lookup
            update = predictor.update
            takens = base["br_taken_np"].tolist()
            out = np.empty(len(takens), np.uint8)
            for j, (bid, tk) in enumerate(zip(base["bid_list"], takens)):
                prediction = lookup(bid)
                update(prediction, tk == 1)
                out[j] = 1 if prediction.taken else 0
            bits = out
        prep.pred_bits[mode_key] = bits
    return bits


def _ras_bits(prep: ReplayPrep, base: Dict, entries: int) -> np.ndarray:
    """Per-RET mispredict bits from one pass over the CALL/RET event
    stream (bounded stack, overflow drops the oldest entry,
    underflow predicts ``None`` -- exactly ``ReturnAddressStack``)."""
    bits = prep.ras_bits.get(entries)
    if bits is None:
        call_pos = base["call_pos"]
        ret_pos = base["ret_pos"]
        n_ret = len(ret_pos)
        bits = np.zeros(n_ret, bool)
        if n_ret:
            ev_pos = np.concatenate([call_pos, ret_pos])
            ev_is_ret = np.concatenate(
                [
                    np.zeros(len(call_pos), np.uint8),
                    np.ones(n_ret, np.uint8),
                ]
            )
            order = np.argsort(ev_pos, kind="stable")
            positions = ev_pos[order].tolist()
            is_ret = ev_is_ret[order].tolist()
            pcs_list = base["pcs_list"]
            targets = base["ret_targets_list"]
            stack: List[int] = []
            missed: List[int] = []
            ret_i = 0
            for pos, ret in zip(positions, is_ret):
                if ret:
                    predicted = stack.pop() if stack else None
                    if predicted != targets[ret_i]:
                        missed.append(ret_i)
                    ret_i += 1
                else:
                    if len(stack) >= entries:
                        del stack[0]
                    stack.append(pcs_list[pos] + 1)
            bits[missed] = True
        prep.ras_bits[entries] = bits
    return bits


def _build_stream(
    prep: ReplayPrep, base: Dict, mode_key, ras_entries: int
) -> Dict:
    """Action codes, reset classification and vectorized counters for
    one (prediction mode, RAS size) pair."""
    n = base["n"]
    pred = prep.pred_bits[mode_key]
    taken_np = base["br_taken_np"]
    misp = pred != taken_np
    taken_b = taken_np != 0
    div = base["div_np"] != 0
    pr_taken = base["pr_np"] != 0
    ret_misp = _ras_bits(prep, base, ras_entries)

    br_pos = base["br_pos"]
    rs_pos = base["rs_pos"]
    ret_pos = base["ret_pos"]
    pr_pos = base["pr_pos"]
    jmp_pos = base["jmp_pos"]
    call_pos = base["call_pos"]

    act = np.full(n, A_ALU, np.uint8)
    act[base["kind_s"] == K_NOP] = A_NOP
    act[base["ld_pos"]] = A_LOAD
    act[base["st_pos"]] = A_STORE
    act[jmp_pos] = A_JMP
    act[call_pos] = A_CALL
    act[br_pos[misp]] = A_BR_MISP
    act[br_pos[~misp & taken_b]] = A_BR_TAKEN
    act[br_pos[~misp & ~taken_b]] = A_BR_NONE
    act[rs_pos[div]] = A_RS_MISP
    act[rs_pos[~div]] = A_RS_NONE
    act[ret_pos[ret_misp]] = A_RET_MISP
    act[ret_pos[~ret_misp]] = A_RET_OK
    act[pr_pos[pr_taken]] = A_PREDICT_TAKEN
    act[pr_pos[~pr_taken]] = A_PREDICT_NONE
    if base["halted"]:
        act[n - 1] = A_HALT

    # Fetch-line resets (the scalar loops' ``current_line = -1``).
    reset = np.zeros(n, bool)
    reset[jmp_pos] = True
    reset[call_pos] = True
    reset[ret_pos] = True
    reset[br_pos] = misp | taken_b
    reset[rs_pos] = div
    reset[pr_pos] = pr_taken
    # Mispredict-window resets (branch/resolve/RET mispredicts): the
    # under-mispredict flag is consumed by the *next* instruction's
    # line-change block, which a reset always forces.
    misp_reset = np.zeros(n, bool)
    misp_reset[br_pos] = misp
    misp_reset[rs_pos] = div
    misp_reset[ret_pos] = ret_misp

    line_s = base["line_s"]
    acc = np.empty(n, bool)
    acc[0] = True
    acc[1:] = reset[:-1] | (line_s[1:] != line_s[:-1])
    acc_pos = np.flatnonzero(acc)
    prev_misp = np.zeros(n, bool)
    prev_misp[1:] = misp_reset[:-1]

    ras_mispredicts = int(np.count_nonzero(ret_misp))
    br_taken_ok = int(np.count_nonzero(~misp & taken_b))
    pr_taken_n = int(np.count_nonzero(pr_taken))
    return {
        "act_np": act,
        "acc_pos": acc_pos,
        "acc_prev_misp": prev_misp[acc_pos],
        "cond_mispredicts": int(np.count_nonzero(misp)),
        "resolve_mispredicts": int(np.count_nonzero(div)),
        "ras_mispredicts": ras_mispredicts,
        "taken_redirects_inorder": (
            br_taken_ok
            + pr_taken_n
            + len(jmp_pos)
            + len(call_pos)
            + (len(ret_pos) - ras_mispredicts)
        ),
        "taken_redirects_ooo": br_taken_ok + len(jmp_pos),
    }


def _build_mem(base: Dict, stream: Dict, config: MachineConfig) -> Dict:
    """Cache-tag pre-pass: walk the merged I-cache/load/store access
    sequence once (stream order, instruction access before data access
    at the same position, suppressed loads excluded) and record the
    hit level of every access.  Level -> latency mapping and the
    next-line-prefetch decision use this config's latencies, so the
    result is keyed by the full cache geometry."""
    h = config.hierarchy
    shift = h.line_bytes.bit_length() - 1
    n = base["n"]
    acc_pos = stream["acc_pos"]

    inst_lines = (
        base["pcs_np"][acc_pos].astype(np.int64) << 2
    ) >> shift
    ld_idx = np.flatnonzero(~base["sup_mask"])
    ld_lines = (base["load_addrs_np"][ld_idx] << 3) >> shift
    st_lines = (base["store_addrs_np"] << 3) >> shift

    n_acc = len(acc_pos)
    n_st = len(st_lines)
    m_pos = np.concatenate([acc_pos, base["ld_pos"][ld_idx], base["st_pos"]])
    m_typ = np.concatenate(
        [
            np.zeros(n_acc, np.uint8),
            np.ones(len(ld_idx), np.uint8),
            np.full(n_st, 2, np.uint8),
        ]
    )
    m_rank = np.concatenate(
        [np.arange(n_acc), ld_idx, np.arange(n_st)]
    )
    m_line = np.concatenate([inst_lines, ld_lines, st_lines])
    # Primary key: stream position; tiebreak: instruction access (0)
    # before the same instruction's data access (1/2).
    order = np.lexsort((m_typ, m_pos))
    typs = m_typ[order].tolist()
    ranks = m_rank[order].tolist()
    lines = m_line[order].tolist()

    def _mk_sets(size: int, assoc: int) -> Tuple[list, int, int]:
        num_sets = size // (assoc * h.line_bytes)
        return [[] for _ in range(num_sets)], num_sets, assoc

    l1d, n1d, a1d = _mk_sets(h.l1d_bytes, h.l1d_assoc)
    l1i, n1i, a1i = _mk_sets(h.l1i_bytes, h.l1i_assoc)
    l2, n2, a2 = _mk_sets(h.l2_bytes, h.l2_assoc)
    l3, n3, a3 = _mk_sets(h.l3_bytes, h.l3_assoc)

    def touch(sets: list, num_sets: int, assoc: int, line: int) -> bool:
        # Cache.access minus the statistics: LRU touch, allocate on miss.
        ways = sets[line % num_sets]
        tag = line // num_sets
        try:
            position = ways.index(tag)
        except ValueError:
            ways.insert(0, tag)
            if len(ways) > assoc:
                ways.pop()
            return False
        if position:
            ways.insert(0, ways.pop(position))
        return True

    def install(sets: list, num_sets: int, assoc: int, line: int) -> None:
        # Cache.install: insert without LRU promotion on presence.
        ways = sets[line % num_sets]
        tag = line // num_sets
        if tag in ways:
            return
        ways.insert(0, tag)
        if len(ways) > assoc:
            ways.pop()

    l1_lat = h.l1_latency
    lat_by_level = (l1_lat, h.l2_latency, h.l3_latency, h.dram_latency)
    prefetch = h.next_line_prefetch

    inst_level = [0] * n_acc
    load_level = [-1] * len(base["ld_pos"])  # -1: suppressed, no access
    store_level = [0] * n_st
    for typ, rank, line in zip(typs, ranks, lines):
        if typ == 0:
            if touch(l1i, n1i, a1i, line):
                continue  # level 0 already recorded
            if touch(l2, n2, a2, line):
                inst_level[rank] = 1
            elif touch(l3, n3, a3, line):
                inst_level[rank] = 2
            else:
                inst_level[rank] = 3
        else:
            if touch(l1d, n1d, a1d, line):
                level = 0
            elif touch(l2, n2, a2, line):
                level = 1
            elif touch(l3, n3, a3, line):
                level = 2
            else:
                level = 3
            if lat_by_level[level] > l1_lat and prefetch:
                install(l1d, n1d, a1d, line + 1)
                install(l2, n2, a2, line + 1)
            if typ == 1:
                load_level[rank] = level
            else:
                store_level[rank] = level

    # Instruction-side added latency per access (I$ hits are free).
    inst_lut = np.array(
        [0, h.l2_latency, h.l3_latency, h.dram_latency], np.int64
    )
    inst_add = inst_lut[np.array(inst_level, np.int64)]
    # Hits add zero cycles, so the kernels need no hit/no-access
    # distinction: zero means "keep fetching".
    fetch_add_np = np.zeros(n, np.int64)
    fetch_add_np[acc_pos] = inst_add
    miss_mask = inst_add > 0

    data_lut = np.array(lat_by_level, np.int64)
    lvl = np.array(load_level, np.int64)
    load_lat_np = np.where(lvl < 0, l1_lat, data_lut[np.maximum(lvl, 0)])
    store_lat_np = data_lut[np.array(store_level, np.int64)]
    return {
        "fetch_add": fetch_add_np.tolist(),
        "icache_misses": int(np.count_nonzero(miss_mask)),
        "icache_under": int(
            np.count_nonzero(miss_mask & stream["acc_prev_misp"])
        ),
        "load_lat_np": load_lat_np,
        "load_miss_np": load_lat_np > l1_lat,
        "store_lat_np": store_lat_np,
        "store_miss_np": store_lat_np > l1_lat,
    }


def _btb_bits(
    prep: ReplayPrep, base: Dict, core: str, mode_key, entries: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """(event positions, miss bit per event, miss total), stream
    order.  The in-order core consults the BTB for correct-taken
    branches and taken PREDICTs; the OOO core only for taken PREDICTs.
    Direct-mapped, tag == pc, insert on miss -- only tag state matters
    for future lookups."""
    key = (core, mode_key, entries)
    cached = prep.btbs.get(key)
    if cached is None:
        pr_taken_pos = base["pr_pos"][base["pr_np"] != 0]
        if core == "inorder":
            pred = prep.pred_bits[mode_key]
            taken_ok = (pred == base["br_taken_np"]) & (
                base["br_taken_np"] != 0
            )
            events = np.sort(
                np.concatenate([base["br_pos"][taken_ok], pr_taken_pos])
            )
        else:
            events = pr_taken_pos
        mask = entries - 1
        tags: Dict[int, int] = {}
        missed: List[int] = []
        append = missed.append
        for j, pc in enumerate(base["pcs_np"][events].tolist()):
            slot = pc & mask
            if tags.get(slot) != pc:
                append(j)
                tags[slot] = pc
        bits = np.zeros(len(events), bool)
        bits[missed] = True
        cached = (events, bits, len(missed))
        prep.btbs[key] = cached
    return cached


def _build_kernel(
    base: Dict, stream: Dict, mem: Dict, btb_events: np.ndarray,
    btb_bits: np.ndarray,
) -> Dict:
    """Fuse stream action codes with this geometry's memory outcomes
    and this core's BTB outcomes into the two columns the serial loop
    actually reads: a fused action code and a fused latency."""
    act_k = _FUSE_LUT[stream["act_np"]]
    act_k[base["ld_pos"][mem["load_miss_np"]]] = F_LD_MISS
    act_k[base["st_pos"][mem["store_miss_np"]]] = F_ST_MISS
    # BTB miss variants are one code above their hit counterparts.
    act_k[btb_events[btb_bits]] += 1

    lat_k = base["lat_np"].copy()
    # Loads and stores carry their found-level latency; every other
    # kind keeps its row latency (branch mispredict redirects use it).
    lat_k[base["ld_pos"]] = mem["load_lat_np"]
    lat_k[base["st_pos"]] = mem["store_lat_np"]
    return {"act": act_k.tolist(), "lat": lat_k.tolist()}


def _prepare(program, trace: Trace, config: MachineConfig, recorded: bool,
             core: str):
    """Assemble (base, stream, mem, btb_bits, btb_misses) for one
    replay, building/reusing cached layers; ``None`` -> scalar path."""
    decoded = predecode(program)
    source_id = id(decoded.rows)
    prep = trace._prep
    if prep is None or prep.source_id != source_id:
        prep = ReplayPrep(source_id)
        trace._prep = prep
    if prep.base is None:
        prep.base = _build_base(trace, decoded) or False
    base = prep.base
    if base is False:
        return None

    if recorded:
        mode_key = "recorded"
    else:
        pid = predictor_id(config.predictor_factory)
        if pid is None:
            return None  # unnameable factory: no safe cache key
        mode_key = ("live", pid)
    _pred_bits_for(prep, base, mode_key, config)

    stream_key = (mode_key, config.ras_entries)
    stream = prep.streams.get(stream_key)
    if stream is None:
        stream = _build_stream(prep, base, mode_key, config.ras_entries)
        prep.streams[stream_key] = stream

    h = config.hierarchy
    geometry = (
        h.l1d_bytes, h.l1d_assoc, h.l1i_bytes, h.l1i_assoc,
        h.l2_bytes, h.l2_assoc, h.l3_bytes, h.l3_assoc,
        h.line_bytes, h.l1_latency, h.l2_latency, h.l3_latency,
        h.dram_latency, h.next_line_prefetch,
    )
    mem_key = (stream_key, geometry)
    mem = prep.mems.get(mem_key)
    if mem is None:
        mem = _build_mem(base, stream, config)
        prep.mems[mem_key] = mem

    btb_events, btb_bits, btb_misses = _btb_bits(
        prep, base, core, mode_key, config.btb_entries
    )

    kernel_key = (core, stream_key, geometry, config.btb_entries)
    kernel = prep.kernels.get(kernel_key)
    if kernel is None:
        kernel = _build_kernel(base, stream, mem, btb_events, btb_bits)
        prep.kernels[kernel_key] = kernel
    return base, stream, mem, kernel, btb_misses


# ------------------------------------------------------- prep reuse API


def warm_replay_prep(
    program,
    trace: Trace,
    config: MachineConfig,
    recorded: bool = True,
    core: str = "inorder",
) -> bool:
    """Build (or reuse) every prep layer one replay of ``trace`` under
    ``config`` would need, without running the replay.

    The batched execution plane uses this contract implicitly -- the
    layers live on the trace object, so any sweep point sharing the
    trace (same worker LRU entry or shared-memory attach) pays only
    for the layers its ``(mode, ras, geometry, btb)`` key adds, with
    the predictor-dependent ``pred_bits``/``streams`` layers re-run
    exactly when ``predictor_id`` changes.  Returns ``False`` when the
    trace falls outside the vectorized path (the scalar oracle needs
    no prep).
    """
    return _prepare(program, trace, config, recorded, core) is not None


def prep_layer_counts(trace: Trace) -> Dict[str, int]:
    """Entry counts per cached prep layer (zeros when no prep yet).

    Observability for tests and the batch benchmark: after N sweep
    points of one trace that vary only BTB size, ``btbs`` should have
    N entries while ``base``/``pred_bits``/``streams`` stay at 1 --
    the signature of cross-point reuse.
    """
    prep = getattr(trace, "_prep", None)
    if prep is None:
        return {
            name: 0
            for name in (
                "base", "pred_bits", "ras_bits", "streams", "mems",
                "btbs", "kernels", "regions",
            )
        }
    return {
        "base": 1 if prep.base else 0,
        "pred_bits": len(prep.pred_bits),
        "ras_bits": len(prep.ras_bits),
        "streams": len(prep.streams),
        "mems": len(prep.mems),
        "btbs": len(prep.btbs),
        "kernels": len(prep.kernels),
        "regions": len(prep.regions),
    }


# ------------------------------------------------- persisted prep slices

#: Bump when the prep container layout, the layer contents, or the
#: slice keying changes: the key hashes the schema, so every persisted
#: slice of an older version simply stops matching and is rebuilt.
PREP_SCHEMA = 1

_PREP_MAGIC = b"RPPREP1\x00"

#: Array payloads of one slice, in canonical container order.  The
#: ``pred_bits`` column is present only for live-predictor slices (a
#: recorded slice's bits are the trace's own ``branch_pred`` column).
_PREP_ARRAYS = (
    "pred_bits",
    "ras_bits",
    "act",
    "acc_pos",
    "acc_prev_misp",
    "fetch_add",
    "load_lat",
    "load_miss",
    "store_lat",
    "store_miss",
    "btb_io_events",
    "btb_io_bits",
    "btb_ooo_events",
    "btb_ooo_bits",
)

#: Integer counters of one slice (stream + mem + per-core BTB misses).
_PREP_COUNTERS = (
    "cond_mispredicts",
    "resolve_mispredicts",
    "ras_mispredicts",
    "taken_redirects_inorder",
    "taken_redirects_ooo",
    "icache_misses",
    "icache_under",
    "btb_io_misses",
    "btb_ooo_misses",
)


def prep_config_class(config: MachineConfig) -> Tuple:
    """The configuration fields the prep layers actually depend on --
    RAS depth, the full cache geometry, and BTB capacity.  Width,
    ports, front-end depth and bubble counts only feed the serial
    kernels, so sweeps over them share one slice."""
    h = config.hierarchy
    return (
        config.ras_entries,
        h.l1d_bytes, h.l1d_assoc, h.l1i_bytes, h.l1i_assoc,
        h.l2_bytes, h.l2_assoc, h.l3_bytes, h.l3_assoc,
        h.line_bytes, h.l1_latency, h.l2_latency, h.l3_latency,
        h.dram_latency, bool(h.next_line_prefetch),
        config.btb_entries,
    )


def prep_mode_key(trace: Trace, config: MachineConfig):
    """The prediction-mode component of a slice key: ``"recorded"``,
    ``("live", pid)``, or ``None`` when no safe cross-process key
    exists (unnameable factory, or a decomposed trace under a foreign
    predictor -- replay itself refuses that combination)."""
    pid = predictor_id(config.predictor_factory)
    if pid is not None and trace.meta.get("predictor") == pid:
        return "recorded"
    if trace.meta.get("has_decomposed") or pid is None:
        return None
    return ("live", pid)


def prep_slice_key(
    program, trace: Trace, config: MachineConfig
) -> Optional[str]:
    """Content address of one persisted prep slice:
    ``sha256(schema, trace content digest, mode, config class)``.
    Changing any component -- a recaptured trace, a different
    predictor, a resized cache/BTB/RAS, a container schema bump --
    yields a different key, so invalidation is automatic and stale
    slices are never consulted."""
    mode = prep_mode_key(trace, config)
    if mode is None:
        return None
    return hashlib.sha256(
        json.dumps(
            {
                "kind": "prep",
                "schema": PREP_SCHEMA,
                "trace": trace.content_digest(),
                "mode": list(mode) if isinstance(mode, tuple) else mode,
                "config": list(prep_config_class(config)),
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _slice_keys(trace: Trace, config: MachineConfig):
    """(mode_key, stream_key, mem_key, btb keys) for one config, or
    ``None`` -- the in-process dict keys a slice plants layers under."""
    mode = prep_mode_key(trace, config)
    if mode is None:
        return None
    h = config.hierarchy
    geometry = (
        h.l1d_bytes, h.l1d_assoc, h.l1i_bytes, h.l1i_assoc,
        h.l2_bytes, h.l2_assoc, h.l3_bytes, h.l3_assoc,
        h.line_bytes, h.l1_latency, h.l2_latency, h.l3_latency,
        h.dram_latency, h.next_line_prefetch,
    )
    stream_key = (mode, config.ras_entries)
    return (
        mode,
        stream_key,
        (stream_key, geometry),
        ("inorder", mode, config.btb_entries),
        ("ooo", mode, config.btb_entries),
    )


def prep_slice_ready(program, trace: Trace, config: MachineConfig) -> bool:
    """Whether every layer a slice would carry is already attached to
    ``trace._prep`` (both cores' BTB sets included)."""
    keys = _slice_keys(trace, config)
    if keys is None:
        return False
    mode, stream_key, mem_key, btb_io, btb_ooo = keys
    prep = trace._prep
    return (
        prep is not None
        and prep.source_id == id(predecode(program).rows)
        and mode in prep.pred_bits
        and config.ras_entries in prep.ras_bits
        and stream_key in prep.streams
        and mem_key in prep.mems
        and btb_io in prep.btbs
        and btb_ooo in prep.btbs
    )


def build_prep_slice(
    program, trace: Trace, config: MachineConfig
) -> Optional[bytes]:
    """Compute (or reuse) every layer one slice covers and serialise
    it: the container holds numpy columns for the predictor bits (live
    mode), RAS bits, the stream action codes, the cache-level pre-pass
    outputs, and both cores' BTB miss sets, plus the derived counters.
    ``None`` when the trace falls outside the vectorized path or has
    no safe slice key."""
    keys = _slice_keys(trace, config)
    if keys is None:
        return None
    mode, stream_key, mem_key, btb_io, btb_ooo = keys
    recorded = mode == "recorded"
    # Warm both cores so one persisted slice serves in-order and OOO
    # replays alike (the OOO BTB event set is PREDICTs only -- cheap).
    if _prepare(program, trace, config, recorded, "inorder") is None:
        return None
    if _prepare(program, trace, config, recorded, "ooo") is None:
        return None
    prep = trace._prep
    stream = prep.streams[stream_key]
    mem = prep.mems[mem_key]
    io_events, io_bits, io_misses = prep.btbs[btb_io]
    ooo_events, ooo_bits, ooo_misses = prep.btbs[btb_ooo]

    arrays: Dict[str, np.ndarray] = {
        "ras_bits": np.ascontiguousarray(
            prep.ras_bits[config.ras_entries]
        ),
        "act": stream["act_np"],
        "acc_pos": np.ascontiguousarray(stream["acc_pos"], np.int64),
        "acc_prev_misp": np.ascontiguousarray(stream["acc_prev_misp"]),
        "fetch_add": np.asarray(mem["fetch_add"], np.int64),
        "load_lat": np.ascontiguousarray(mem["load_lat_np"], np.int64),
        "load_miss": np.ascontiguousarray(mem["load_miss_np"]),
        "store_lat": np.ascontiguousarray(mem["store_lat_np"], np.int64),
        "store_miss": np.ascontiguousarray(mem["store_miss_np"]),
        "btb_io_events": np.ascontiguousarray(io_events, np.int64),
        "btb_io_bits": np.ascontiguousarray(io_bits),
        "btb_ooo_events": np.ascontiguousarray(ooo_events, np.int64),
        "btb_ooo_bits": np.ascontiguousarray(ooo_bits),
    }
    if not recorded:
        arrays["pred_bits"] = np.ascontiguousarray(
            prep.pred_bits[mode], np.uint8
        )
    counters = {
        "cond_mispredicts": stream["cond_mispredicts"],
        "resolve_mispredicts": stream["resolve_mispredicts"],
        "ras_mispredicts": stream["ras_mispredicts"],
        "taken_redirects_inorder": stream["taken_redirects_inorder"],
        "taken_redirects_ooo": stream["taken_redirects_ooo"],
        "icache_misses": mem["icache_misses"],
        "icache_under": mem["icache_under"],
        "btb_io_misses": io_misses,
        "btb_ooo_misses": ooo_misses,
    }

    descriptors: List[Dict] = []
    payloads: List[np.ndarray] = []
    body = 0
    for name in _PREP_ARRAYS:
        arr = arrays.get(name)
        if arr is None:
            continue
        body = _align8(body)
        descriptors.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "count": int(arr.size),
                "offset": body,
                "nbytes": int(arr.nbytes),
            }
        )
        payloads.append(arr)
        body += arr.nbytes
    header = json.dumps(
        {
            "schema": PREP_SCHEMA,
            "byteorder": sys.byteorder,
            "trace": trace.content_digest(),
            "mode": list(mode) if isinstance(mode, tuple) else mode,
            "config": list(prep_config_class(config)),
            "counters": counters,
            "arrays": descriptors,
        },
        sort_keys=True,
    ).encode()
    data_start = _align8(len(_PREP_MAGIC) + 4 + len(header))
    out = bytearray(data_start + body)
    out[: len(_PREP_MAGIC)] = _PREP_MAGIC
    struct.pack_into("<I", out, len(_PREP_MAGIC), len(header))
    out[len(_PREP_MAGIC) + 4 : len(_PREP_MAGIC) + 4 + len(header)] = header
    for descriptor, arr in zip(descriptors, payloads):
        offset = data_start + descriptor["offset"]
        out[offset : offset + arr.nbytes] = arr.tobytes()
    return bytes(out)


class PrepSliceError(Exception):
    """A prep container failed validation (corrupt or mismatched)."""


def _parse_prep_container(buf) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """(header, name -> zero-copy array view) of one container.

    ``buf`` may be ``bytes`` (a verified disk blob) or a memoryview
    over a shared-memory segment; either way the returned arrays view
    the buffer without copying.  Raises :class:`PrepSliceError` on any
    structural problem."""
    if len(buf) < len(_PREP_MAGIC) + 4:
        raise PrepSliceError("truncated container")
    if bytes(buf[: len(_PREP_MAGIC)]) != _PREP_MAGIC:
        raise PrepSliceError("bad magic")
    (header_len,) = struct.unpack_from("<I", buf, len(_PREP_MAGIC))
    start = len(_PREP_MAGIC) + 4
    if start + header_len > len(buf):
        raise PrepSliceError("truncated header")
    try:
        header = json.loads(bytes(buf[start : start + header_len]))
    except ValueError as exc:
        raise PrepSliceError(f"unreadable header: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != PREP_SCHEMA:
        raise PrepSliceError(f"wrong schema: {header.get('schema')!r}")
    if header.get("byteorder") != sys.byteorder:
        raise PrepSliceError("foreign byte order")
    descriptors = header.get("arrays")
    counters = header.get("counters")
    if not isinstance(descriptors, list) or not isinstance(counters, dict):
        raise PrepSliceError("malformed header")
    data_start = _align8(start + header_len)
    arrays: Dict[str, np.ndarray] = {}
    for descriptor in descriptors:
        try:
            name = descriptor["name"]
            offset = data_start + descriptor["offset"]
            if offset + descriptor["nbytes"] > len(buf):
                raise PrepSliceError(f"truncated column {name!r}")
            arrays[name] = np.frombuffer(
                buf,
                dtype=np.dtype(descriptor["dtype"]),
                count=descriptor["count"],
                offset=offset,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PrepSliceError(f"bad descriptor: {exc}") from None
    missing = [
        name
        for name in _PREP_ARRAYS
        if name != "pred_bits" and name not in arrays
    ]
    if missing:
        raise PrepSliceError(f"missing columns: {missing}")
    return header, arrays


def attach_prep_slice(
    program, trace: Trace, config: MachineConfig, buf
) -> bool:
    """Plant a serialised slice's layers onto ``trace._prep``.

    Validates the container *and* its key fields against what this
    (program, trace, config) would compute -- a slice for a different
    trace digest, mode, or config class is rejected (``False``), as is
    any structural corruption, and the caller rebuilds from scratch.
    The planted arrays are zero-copy views over ``buf``; prep layers
    are read-only to the kernels, so a shared-memory buffer may back
    any number of attached traces at once."""
    keys = _slice_keys(trace, config)
    if keys is None:
        return False
    mode, stream_key, mem_key, btb_io, btb_ooo = keys
    try:
        header, arrays = _parse_prep_container(buf)
    except PrepSliceError:
        return False
    expected_mode = list(mode) if isinstance(mode, tuple) else mode
    if (
        header.get("trace") != trace.content_digest()
        or header.get("mode") != expected_mode
        or header.get("config") != list(prep_config_class(config))
    ):
        return False
    recorded = mode == "recorded"
    if not recorded and "pred_bits" not in arrays:
        return False
    counters = header["counters"]
    try:
        counter_values = {
            name: int(counters[name]) for name in _PREP_COUNTERS
        }
    except (KeyError, TypeError, ValueError):
        return False

    source_id = id(predecode(program).rows)
    prep = trace._prep
    if prep is None or prep.source_id != source_id:
        prep = ReplayPrep(source_id)
        trace._prep = prep
    if recorded:
        # Recorded bits are the trace's own column; plant them so the
        # readiness probe and ``_prepare`` both see the layer filled.
        prep.pred_bits[mode] = trace.column("branch_pred")
    else:
        prep.pred_bits[mode] = arrays["pred_bits"]
    prep.ras_bits[config.ras_entries] = arrays["ras_bits"]
    prep.streams[stream_key] = {
        "act_np": arrays["act"],
        "acc_pos": arrays["acc_pos"],
        "acc_prev_misp": arrays["acc_prev_misp"],
        "cond_mispredicts": counter_values["cond_mispredicts"],
        "resolve_mispredicts": counter_values["resolve_mispredicts"],
        "ras_mispredicts": counter_values["ras_mispredicts"],
        "taken_redirects_inorder": counter_values[
            "taken_redirects_inorder"
        ],
        "taken_redirects_ooo": counter_values["taken_redirects_ooo"],
    }
    prep.mems[mem_key] = {
        # The serial kernels iterate this column as a plain list.
        "fetch_add": arrays["fetch_add"].tolist(),
        "icache_misses": counter_values["icache_misses"],
        "icache_under": counter_values["icache_under"],
        "load_lat_np": arrays["load_lat"],
        "load_miss_np": arrays["load_miss"],
        "store_lat_np": arrays["store_lat"],
        "store_miss_np": arrays["store_miss"],
    }
    prep.btbs[btb_io] = (
        arrays["btb_io_events"],
        arrays["btb_io_bits"],
        counter_values["btb_io_misses"],
    )
    prep.btbs[btb_ooo] = (
        arrays["btb_ooo_events"],
        arrays["btb_ooo_bits"],
        counter_values["btb_ooo_misses"],
    )
    return True


# ------------------------------------------------------------------ kernels


def replay_inorder_stats(
    program, trace: Trace, config: MachineConfig, recorded: bool
) -> Optional[SimStats]:
    """In-order replay over precomputed tables; ``None`` -> use the
    scalar oracle.  Mirrors ``replay.replay_inorder`` bit-exactly."""
    if config.fetch_buffer_entries <= 0:
        return None
    width = config.width
    port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)
    if width <= 0 or min(port_caps[1:]) <= 0:
        return None  # degenerate caps: let the scalar loop spin/raise
    prepared = _prepare(program, trace, config, recorded, "inorder")
    if prepared is None:
        return None
    base, stream, mem, kernel, btb_misses = prepared

    n = base["n"]
    front_depth = config.front_end_stages
    fetch_buffer = config.fetch_buffer_entries
    taken_bubble = config.taken_redirect_bubble
    miss_bubble = taken_bubble + config.btb_miss_bubble
    mb_entries = config.hierarchy.miss_buffer_entries

    # In-order issue times are monotone non-decreasing (``prev_issue``
    # clamp), so occupancy only ever matters at the current issue cycle:
    # a bump past a full cycle always lands on an empty one, and the
    # stamped rings of the scalar loop collapse to plain counters.
    w_t = -1  # cycle the width counter refers to
    w_cnt = 0
    p_times = [-1, -1, -1, -1]  # per-FU port counters, indexed by fu
    p_cnts = [0, 0, 0, 0]

    reg_ready = [0] * 65  # slot 64: the zero-source sentinel
    reg_from_load = [False] * 65

    heap: List[int] = []  # outstanding data-miss completion times
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Fetch-buffer gate as a circular list: once full, the slot about
    # to be overwritten is the issue time from ``fetch_buffer`` ago.
    gate_ring = [0] * fetch_buffer
    gate_pos = 0
    gate_full = False

    fetch_cycle = 0
    fetch_slots = 0
    prev_issue = 0
    last_cycle = 0
    load_use_stall = 0
    resolution_stall = 0

    # Hoist the dispatch constants into locals (the loop reads them
    # every instruction; LOAD_FAST beats LOAD_GLOBAL).
    ALU = F_ALU
    LD_HIT = F_LD_HIT
    ST_HIT = F_ST_HIT
    JMP = F_JMP
    BR_NONE = F_BR_NONE
    BR_TAKEN = F_BR_TAKEN
    BR_TAKEN_MISSBTB = F_BR_TAKEN_MISSBTB
    BR_MISP = F_BR_MISP
    RS_NONE = F_RS_NONE
    RS_MISP = F_RS_MISP
    LD_MISS = F_LD_MISS
    ST_MISS = F_ST_MISS
    CALL = F_CALL
    RET_OK = F_RET_OK
    PRED_NONE = F_PREDICT_NONE
    PRED_TAKEN = F_PREDICT_TAKEN
    PRED_TAKEN_MISSBTB = F_PREDICT_TAKEN_MISSBTB

    for a, add, lat, fu, dest, s0, rest in zip(
        kernel["act"],
        mem["fetch_add"],
        kernel["lat"],
        base["fu_list"],
        base["dest_list"],
        base["src0_list"],
        base["rest_list"],
    ):
        # ---------------- fetch timing ----------------
        if add:  # I$ miss at a line change (hits add zero)
            fetch_cycle += add
            fetch_slots = 0
        if fetch_slots >= width:
            fetch_cycle += 1
            fetch_slots = 0
        if gate_full:
            gate = gate_ring[gate_pos]
            if gate > fetch_cycle:
                fetch_cycle = gate
                fetch_slots = 0
        fetch_slots += 1

        # ------------- front-end-only kinds (PREDICT / HALT) -------
        if a >= PRED_NONE:
            if last_cycle < fetch_cycle:
                last_cycle = fetch_cycle
            if a == PRED_NONE:
                continue
            if a == PRED_TAKEN:
                fetch_cycle += taken_bubble
                fetch_slots = 0
                continue
            if a == PRED_TAKEN_MISSBTB:
                fetch_cycle += miss_bubble
                fetch_slots = 0
                continue
            break  # F_HALT

        # ---------------- issue-slot computation ----------------
        bt0 = fetch_cycle + front_depth
        base_t = prev_issue if prev_issue > bt0 else bt0
        if rest:
            operand_ready = base_t
            wait_from_load = False
            ready = reg_ready[s0]
            if ready > operand_ready:
                operand_ready = ready
                wait_from_load = reg_from_load[s0]
            for reg in rest:
                ready = reg_ready[reg]
                if ready > operand_ready:
                    operand_ready = ready
                    wait_from_load = reg_from_load[reg]
            if wait_from_load and operand_ready > base_t:
                load_use_stall += operand_ready - base_t
        else:  # 0/1-source fast path (most of the stream)
            ready = reg_ready[s0]
            if ready > base_t:
                operand_ready = ready
                if reg_from_load[s0]:
                    load_use_stall += ready - base_t
            else:
                operand_ready = base_t

        issue = operand_ready
        if fu:
            pt = p_times[fu]
            pc = p_cnts[fu]
            if (issue == w_t and w_cnt >= width) or (
                issue == pt and pc >= port_caps[fu]
            ):
                issue += 1  # next cycle is empty: times are monotone
            if issue == w_t:
                w_cnt += 1
            else:
                w_t = issue
                w_cnt = 1
            if issue == pt:
                p_cnts[fu] = pc + 1
            else:
                p_times[fu] = issue
                p_cnts[fu] = 1
        prev_issue = issue
        gate_ring[gate_pos] = issue
        gate_pos += 1
        if gate_pos == fetch_buffer:
            gate_pos = 0
            gate_full = True

        complete = issue + lat

        # ---------------- re-time (precomputed decisions) --------
        if a == ALU:
            reg_ready[dest] = complete
            reg_from_load[dest] = False
        elif a == LD_HIT:
            reg_ready[dest] = complete
            reg_from_load[dest] = True
        elif a <= RS_MISP:
            if a == ST_HIT:
                complete = issue + 1
            elif a == JMP:
                fetch_cycle += taken_bubble
                fetch_slots = 0
            else:  # branch / resolve band (BR_NONE..RS_MISP)
                wait = issue - bt0
                if wait > 0:
                    resolution_stall += wait
                if a == BR_TAKEN:
                    fetch_cycle += taken_bubble
                    fetch_slots = 0
                elif a == BR_MISP or a == RS_MISP:
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                elif a == BR_TAKEN_MISSBTB:
                    fetch_cycle += miss_bubble
                    fetch_slots = 0
                # BR_NONE / RS_NONE: correct, no redirect
        elif a == LD_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                complete = heap[0] + lat
            else:
                complete = issue + lat
            heappush(heap, complete)
            reg_ready[dest] = complete
            reg_from_load[dest] = True
        elif a == ST_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                done = heap[0] + lat
            else:
                done = issue + lat
            heappush(heap, done)
            complete = issue + 1
        elif a == CALL:
            reg_ready[dest] = complete
            reg_from_load[dest] = False
            fetch_cycle += taken_bubble
            fetch_slots = 0
        elif a == RET_OK:
            fetch_cycle += taken_bubble
            fetch_slots = 0
        else:  # RET_MISP or NOP
            if a != F_NOP:
                fetch_cycle = complete + 1
                fetch_slots = 0

        if complete > last_cycle:
            last_cycle = complete

    return SimStats.from_counts(
        cycles=last_cycle + 1,
        committed=n,
        issued=base["issued"],
        fetched=n,
        loads=len(base["ld_pos"]),
        stores=len(base["st_pos"]),
        load_use_stall_cycles=load_use_stall,
        cond_branches=len(base["br_pos"]),
        cond_mispredicts=stream["cond_mispredicts"],
        taken_redirects=stream["taken_redirects_inorder"],
        btb_miss_bubbles=btb_misses,
        predicts=len(base["pr_pos"]),
        resolves=len(base["rs_pos"]),
        resolve_mispredicts=stream["resolve_mispredicts"],
        resolution_stall_cycles=resolution_stall,
        hoisted_committed=base["hoisted"],
        speculative_loads=base["speculative_loads"],
        ras_mispredicts=stream["ras_mispredicts"],
        icache_misses=mem["icache_misses"],
        icache_misses_under_mispredict=mem["icache_under"],
        halted=base["halted"],
    )


def replay_ooo_stats(
    program,
    trace: Trace,
    config: MachineConfig,
    recorded: bool,
    window: int,
) -> Optional[SimStats]:
    """OOO replay over precomputed tables; ``None`` -> scalar oracle.
    Mirrors ``replay.replay_ooo`` bit-exactly (hardcoded one-cycle
    redirect bubbles, BTB consulted only by PREDICT, no prev-issue
    clamp, completion-window gate)."""
    if window <= 0:
        return None
    prepared = _prepare(program, trace, config, recorded, "ooo")
    if prepared is None:
        return None
    base, stream, mem, kernel, _ = prepared

    n = base["n"]
    width = config.width
    front_depth = config.front_end_stages
    port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)
    mb_entries = config.hierarchy.miss_buffer_entries

    issued_cnt = [0] * _OOO_RING
    issued_stamp = [-1] * _OOO_RING
    port_cnt = (None, [0] * _OOO_RING, [0] * _OOO_RING, [0] * _OOO_RING)
    port_stamp = (
        None, [-1] * _OOO_RING, [-1] * _OOO_RING, [-1] * _OOO_RING,
    )

    reg_ready = [0] * 65  # slot 64: the zero-source sentinel

    heap: List[int] = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Completion-window gate: once full, the slot about to be
    # overwritten is the completion time from ``window`` ago.
    win_ring = [0] * window
    win_pos = 0
    win_full = False

    fetch_cycle = 0
    fetch_slots = 0
    last_cycle = 0
    resolution_stall = 0

    ALU = F_ALU
    LD_HIT = F_LD_HIT
    ST_HIT = F_ST_HIT
    JMP = F_JMP
    BR_NONE = F_BR_NONE
    BR_TAKEN = F_BR_TAKEN
    BR_MISP = F_BR_MISP
    RS_MISP = F_RS_MISP
    LD_MISS = F_LD_MISS
    ST_MISS = F_ST_MISS
    CALL = F_CALL
    RET_OK = F_RET_OK
    PRED_NONE = F_PREDICT_NONE
    PRED_TAKEN = F_PREDICT_TAKEN
    PRED_TAKEN_MISSBTB = F_PREDICT_TAKEN_MISSBTB

    for a, add, lat, fu, dest, s0, rest in zip(
        kernel["act"],
        mem["fetch_add"],
        kernel["lat"],
        base["fu_list"],
        base["dest_list"],
        base["src0_list"],
        base["rest_list"],
    ):
        # ---- fetch (same model as the in-order core) ----
        if add:
            fetch_cycle += add
            fetch_slots = 0
        if fetch_slots >= width:
            fetch_cycle += 1
            fetch_slots = 0
        if win_full:
            gate = win_ring[win_pos]
            if gate > fetch_cycle:
                fetch_cycle = gate
                fetch_slots = 0
        fetch_slots += 1

        if a >= PRED_NONE:
            if a == PRED_NONE:
                continue
            if a == PRED_TAKEN:
                fetch_cycle += 1
                fetch_slots = 0
                continue
            if a == PRED_TAKEN_MISSBTB:
                fetch_cycle += 2
                fetch_slots = 0
                continue
            break  # F_HALT

        # ---- dataflow issue: operands + a free port, no ordering ----
        base_t = fetch_cycle + front_depth
        ready = reg_ready[s0]
        operand_ready = ready if ready > base_t else base_t
        if rest:
            for reg in rest:
                ready = reg_ready[reg]
                if ready > operand_ready:
                    operand_ready = ready

        t = operand_ready
        if fu:
            cap = port_caps[fu]
            pcnt = port_cnt[fu]
            pstamp = port_stamp[fu]
            while True:
                slot = t & _OOO_RING_MASK
                have = issued_cnt[slot] if issued_stamp[slot] == t else 0
                if have >= width:
                    t += 1
                    continue
                used = pcnt[slot] if pstamp[slot] == t else 0
                if used >= cap:
                    t += 1
                    continue
                break
            issued_stamp[slot] = t
            issued_cnt[slot] = have + 1
            pstamp[slot] = t
            pcnt[slot] = used + 1
        issue = t
        if BR_NONE <= a <= RS_MISP:  # branch or resolve
            wait = issue - base_t
            if wait > 0:
                resolution_stall += wait

        complete = issue + lat

        # ---- re-time (precomputed decisions) ----
        if a == ALU or a == LD_HIT:
            reg_ready[dest] = complete
        elif a == ST_HIT:
            complete = issue + 1
        elif a == LD_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                complete = heap[0] + lat
            else:
                complete = issue + lat
            heappush(heap, complete)
            reg_ready[dest] = complete
        elif a == ST_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                done = heap[0] + lat
            else:
                done = issue + lat
            heappush(heap, done)
            complete = issue + 1
        elif a == BR_TAKEN or a == JMP or a == RET_OK:
            fetch_cycle = fetch_cycle + 1
            fetch_slots = 0
        elif a == BR_MISP or a == RS_MISP or a == F_RET_MISP:
            fetch_cycle = complete + 1
            fetch_slots = 0
        elif a == CALL:
            reg_ready[dest] = complete
            fetch_cycle = fetch_cycle + 1
            fetch_slots = 0
        # F_NOP / BR_NONE / RS_NONE / BR_TAKEN_MISSBTB never redirect
        # (the OOO BTB event set is PREDICTs only, so the TAKEN_MISSBTB
        # code cannot appear in an OOO kernel).

        win_ring[win_pos] = complete
        win_pos += 1
        if win_pos == window:
            win_pos = 0
            win_full = True
        if complete > last_cycle:
            last_cycle = complete

    return SimStats.from_counts(
        cycles=last_cycle + 1,
        committed=n,
        issued=base["issued"],
        fetched=n,
        loads=len(base["ld_pos"]),
        stores=len(base["st_pos"]),
        cond_branches=len(base["br_pos"]),
        cond_mispredicts=stream["cond_mispredicts"],
        taken_redirects=stream["taken_redirects_ooo"],
        predicts=len(base["pr_pos"]),
        resolves=len(base["rs_pos"]),
        resolve_mispredicts=stream["resolve_mispredicts"],
        resolution_stall_cycles=resolution_stall,
        hoisted_committed=base["hoisted"],
        speculative_loads=base["speculative_loads"],
        ras_mispredicts=stream["ras_mispredicts"],
        icache_misses=mem["icache_misses"],
        halted=base["halted"],
    )
