"""Trace-replay timing loops: re-time a committed stream, bit-exactly.

These are line-for-line mirrors of the execute-driven run loops in
:mod:`repro.uarch.core` and :mod:`repro.uarch.ooo` with the
*architectural* work removed: no register values, no data memory, no
ALU evaluators.  Control flow comes from the trace's ``pcs`` column,
branch/divert outcomes and load/store addresses from their event
columns, and the timing machinery -- scoreboard readiness, port and
width occupancy rings, fetch-buffer/window gating, I-cache and data
hierarchy simulation, BTB/RAS re-simulation -- runs exactly as in the
execute-driven loops.  The result (full ``SimStats`` plus the final
architectural state carried in the trace) is bit-identical to an
execute-driven run of the same program under the same configuration.

Two replay modes per conditional branch:

* **recorded** -- the replay configuration runs the same direction
  predictor the trace was captured under, so the captured
  predicted/actual bits are authoritative and the predictor is not
  even instantiated.  Always valid; the only legal mode for decomposed
  programs (their PREDICTs architecturally steer the committed path).
* **live** -- the configuration's predictor differs: a fresh predictor
  is lookup/updated with the recorded actual outcomes, recomputing the
  mispredict timing for *this* predictor.  Valid only for traces of
  programs without PREDICT/RESOLVE (``meta["has_decomposed"]`` false),
  whose committed stream is predictor-independent -- this is what lets
  one baseline trace serve a whole predictor-sensitivity ladder.
"""

from __future__ import annotations

import os
from collections import deque
from typing import List, Optional

from ..branchpred import BranchTargetBuffer, ReturnAddressStack
from ..isa import Memory
from ..isa.decode import (
    K_BRANCH,
    K_CALL,
    K_JMP,
    K_LOAD,
    K_NOP,
    K_PREDICT,
    K_RESOLVE,
    K_RET,
    K_STORE,
    predecode,
)
from .config import MachineConfig
from .core import _RING, _RING_MASK, SimulationResult
from .ooo import _RING as _OOO_RING, _RING_MASK as _OOO_RING_MASK
from .stats import SimStats
from .trace import Trace, TraceMismatch, content_digest, predictor_id

_LINE_SHIFT = 6


def _vectorized_enabled() -> bool:
    """The vectorized kernels (:mod:`.replay_vec`) are the default;
    ``REPRO_REPLAY_VECTORIZED=0`` forces the scalar oracle loops."""
    raw = os.environ.get("REPRO_REPLAY_VECTORIZED", "").strip().lower()
    if not raw:
        return True
    return raw not in ("0", "false", "no", "off")


def _multi_enabled() -> bool:
    """Sweep fusion (:mod:`.replay_multi`) is the default for
    multi-config replays; ``REPRO_REPLAY_MULTI=0`` forces per-point
    replay.  Fusion is layered on the vectorized kernels' prep
    tables, so forcing the scalar oracle disables fusion too."""
    raw = os.environ.get("REPRO_REPLAY_MULTI", "").strip().lower()
    if raw and raw in ("0", "false", "no", "off"):
        return False
    return _vectorized_enabled()


def _describe(value) -> str:
    """Render an identity (content digest, predictor id) for an error
    message: hex digests cleanly shortened to ``head..tail``, anything
    else (predictor ids, odd metadata) verbatim -- never a truncated
    repr with a dangling quote."""
    if value is None:
        return "<none>"
    if not isinstance(value, str):
        return repr(value)
    is_digest = len(value) >= 32 and all(
        c in "0123456789abcdef" for c in value
    )
    if is_digest:
        return f"{value[:16]}..{value[-4:]}"
    return value


def _check_and_mode(program, trace: Trace, config: MachineConfig) -> bool:
    """Validate the trace against (program, config); return True for
    recorded-prediction mode, False for live-predictor mode."""
    digest = content_digest(program)
    if trace.meta.get("program") != digest:
        raise TraceMismatch(
            f"trace was captured from a different program "
            f"(trace program {_describe(trace.meta.get('program'))}, "
            f"requested program {_describe(digest)})"
        )
    pid = predictor_id(config.predictor_factory)
    recorded = pid is not None and trace.meta.get("predictor") == pid
    if not recorded and trace.meta.get("has_decomposed"):
        raise TraceMismatch(
            "a decomposed program's trace is predictor-specific: "
            f"captured under {_describe(trace.meta.get('predictor'))}, "
            f"cannot replay under {_describe(pid)}"
        )
    return recorded


def _final_state(program, trace: Trace, stats: SimStats) -> SimulationResult:
    """Materialise the architectural outcome recorded in the trace."""
    memory = Memory.from_snapshot(
        trace.meta["memory"], trace.meta["faults_suppressed"]
    )
    return SimulationResult(
        stats=stats,
        registers=list(trace.meta["registers"]),
        memory=memory,
        program=program,
    )


def replay_inorder(
    program,
    trace: Trace,
    config: Optional[MachineConfig] = None,
) -> SimulationResult:
    """Replay ``trace`` on the in-order timing model.

    Dispatches to the vectorized kernels (:mod:`.replay_vec`) unless
    ``REPRO_REPLAY_VECTORIZED=0`` or the kernel declines the trace;
    either way the result is bit-identical to the scalar loop below,
    which stays as the golden oracle."""
    config = config or MachineConfig()
    recorded = _check_and_mode(program, trace, config)
    if _vectorized_enabled():
        from . import replay_vec

        stats = replay_vec.replay_inorder_stats(
            program, trace, config, recorded
        )
        if stats is not None:
            return _final_state(program, trace, stats)
    return _replay_inorder_scalar(program, trace, config, recorded)


def replay_inorder_sweep(
    program,
    trace: Trace,
    configs,
):
    """Replay ``trace`` under every configuration of a sweep axis.

    The sweep front door: configurations that differ only in width,
    ports, front-end depth or bubble counts share one fused kernel
    table, and (when ``REPRO_REPLAY_MULTI`` is on) are scored by one
    fused pass (:mod:`.replay_multi`) instead of K serial walks.
    Anything unfusable -- a single point, mixed recorded/live lanes,
    a knob-forced oracle, a declined trace -- replays per-point
    through :func:`replay_inorder`, so the results are *always*
    bit-identical to K independent replays.

    Returns ``(results, outcome)`` where ``outcome`` is ``"fused"``
    (one pass scored every lane), ``"fallback"`` (fusion was
    attempted but declined), ``"diverged"`` (a fused lane failed
    validation and the per-point path re-ran the sweep), or
    ``"per_point"`` (fusion was off or trivially inapplicable).
    """
    configs = [config or MachineConfig() for config in configs]
    outcome = "per_point"
    if len(configs) > 1 and _multi_enabled():
        recorded_flags = [
            _check_and_mode(program, trace, config) for config in configs
        ]
        if all(recorded_flags) or not any(recorded_flags):
            from . import replay_multi

            try:
                stats_list = replay_multi.replay_inorder_multi_stats(
                    program, trace, configs, recorded_flags[0]
                )
            except replay_multi.FusedLaneDivergence:
                stats_list = None
                outcome = "diverged"
            else:
                outcome = "fused" if stats_list is not None else "fallback"
            if stats_list is not None:
                return (
                    [
                        _final_state(program, trace, stats)
                        for stats in stats_list
                    ],
                    outcome,
                )
        else:
            outcome = "fallback"  # mixed recorded/live lanes
    return (
        [replay_inorder(program, trace, config) for config in configs],
        outcome,
    )


def _replay_inorder_scalar(
    program,
    trace: Trace,
    config: MachineConfig,
    recorded: bool,
) -> SimulationResult:
    """The scalar oracle loop (line-for-line mirror of ``core.py``)."""
    from ..memory import MemoryHierarchy

    stats = SimStats()
    rows = predecode(program).rows

    pcs = trace.pcs
    stream_len = len(pcs)
    col_branch_pred = trace.branch_pred
    col_branch_taken = trace.branch_taken
    col_predict_taken = trace.predict_taken
    col_resolve_diverted = trace.resolve_diverted
    col_load_addrs = trace.load_addrs
    col_load_suppressed = trace.load_suppressed
    col_store_addrs = trace.store_addrs
    col_ret_targets = trace.ret_targets
    branch_i = 0
    predict_i = 0
    resolve_i = 0
    load_i = 0
    spec_i = 0
    store_i = 0
    ret_i = 0

    reg_ready = [0] * 64
    reg_from_load = [False] * 64

    hierarchy = MemoryHierarchy(config.hierarchy)
    if recorded:
        predictor_lookup = predictor_update = None
    else:
        predictor = config.predictor_factory()
        predictor_lookup = predictor.lookup
        predictor_update = predictor.update
    btb = BranchTargetBuffer(config.btb_entries)
    ras = ReturnAddressStack(config.ras_entries)

    access_inst = hierarchy.access_inst
    access_data = hierarchy.access_data
    btb_lookup = btb.lookup
    btb_insert = btb.insert
    ras_push = ras.push
    ras_pop = ras.pop

    width = config.width
    front_depth = config.front_end_stages
    fetch_buffer = config.fetch_buffer_entries
    l1_latency = config.hierarchy.l1_latency
    taken_bubble = config.taken_redirect_bubble
    btb_bubble = config.btb_miss_bubble
    port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)

    issued_cnt = [0] * _RING
    issued_stamp = [-1] * _RING
    port_cnt = (None, [0] * _RING, [0] * _RING, [0] * _RING)
    port_stamp = (None, [-1] * _RING, [-1] * _RING, [-1] * _RING)

    fetch_cycle = 0
    fetch_slots = 0
    current_line = -1
    prev_issue = 0
    last_cycle = 0
    under_mispredict_window = False
    issue_ring = deque(maxlen=fetch_buffer)

    fetched = 0
    committed = 0
    hoisted_committed = 0
    issued = 0
    loads = 0
    stores = 0
    load_use_stall_cycles = 0
    cond_branches = 0
    cond_mispredicts = 0
    taken_redirects = 0
    btb_miss_bubbles = 0
    predicts = 0
    resolves = 0
    resolve_mispredicts = 0
    resolution_stall_cycles = 0
    speculative_loads = 0
    ras_mispredicts = 0
    icache_misses = 0
    icache_misses_under_mispredict = 0
    halted = False

    index = 0
    while index < stream_len:
        pc = pcs[index]
        index += 1
        row = rows[pc]
        kind = row[0]

        # ---------------- fetch timing ----------------
        byte_pc = pc << 2
        line = byte_pc >> _LINE_SHIFT
        if line != current_line:
            ready = access_inst(byte_pc, fetch_cycle)
            if ready > fetch_cycle:
                icache_misses += 1
                if under_mispredict_window:
                    icache_misses_under_mispredict += 1
                fetch_cycle = ready
                fetch_slots = 0
            under_mispredict_window = False
            current_line = line
        if fetch_slots >= width:
            fetch_cycle += 1
            fetch_slots = 0
        if len(issue_ring) == fetch_buffer:
            gate = issue_ring[0]
            if gate > fetch_cycle:
                fetch_cycle = gate
                fetch_slots = 0
        fetch_time = fetch_cycle
        fetch_slots += 1
        fetched += 1

        committed += 1
        if row[10]:  # hoisted
            hoisted_committed += 1

        # ------------- front-end-only kinds (PREDICT / HALT) -------
        if kind >= K_PREDICT:
            if kind == K_PREDICT:
                predicts += 1
                prediction_taken = col_predict_taken[predict_i]
                predict_i += 1
                if prediction_taken:
                    if btb_lookup(pc) is None:
                        fetch_cycle = (
                            fetch_time + taken_bubble + btb_bubble
                        )
                        btb_miss_bubbles += 1
                        btb_insert(pc, row[5])
                    else:
                        fetch_cycle = fetch_time + taken_bubble
                    fetch_slots = 0
                    current_line = -1
                    taken_redirects += 1
                if last_cycle < fetch_time:
                    last_cycle = fetch_time
                continue
            # HALT
            halted = True
            if last_cycle < fetch_time:
                last_cycle = fetch_time
            break

        # ---------------- issue-slot computation ----------------
        base = fetch_time + front_depth
        if base < prev_issue:
            base = prev_issue
        operand_wait_from_load = False
        operand_ready = base
        for reg in row[2]:
            ready = reg_ready[reg]
            if ready > operand_ready:
                operand_ready = ready
                operand_wait_from_load = reg_from_load[reg]
        if operand_wait_from_load and operand_ready > base:
            load_use_stall_cycles += operand_ready - base

        fu = row[8]
        t = operand_ready
        if fu == 0:  # FU_NONE: NOP
            issue = t
        else:
            cap = port_caps[fu]
            pcnt = port_cnt[fu]
            pstamp = port_stamp[fu]
            while True:
                slot = t & _RING_MASK
                have = issued_cnt[slot] if issued_stamp[slot] == t else 0
                if have >= width:
                    t += 1
                    continue
                used = pcnt[slot] if pstamp[slot] == t else 0
                if used >= cap:
                    t += 1
                    continue
                break
            issued_stamp[slot] = t
            issued_cnt[slot] = have + 1
            pstamp[slot] = t
            pcnt[slot] = used + 1
            issue = t
            issued += 1
        prev_issue = issue
        issue_ring.append(issue)
        if kind == K_BRANCH or kind == K_RESOLVE:
            wait = issue - (fetch_time + front_depth)
            if wait > 0:
                resolution_stall_cycles += wait

        complete = issue + row[7]

        # ---------------- re-time (no semantics) ----------------
        if kind == K_LOAD:
            address = col_load_addrs[load_i]
            load_i += 1
            if row[9]:  # speculative: suppression bit recorded
                suppressed = col_load_suppressed[spec_i]
                spec_i += 1
                if suppressed:
                    complete = issue + l1_latency
                else:
                    complete = access_data(address << 3, issue)
                speculative_loads += 1
            else:
                complete = access_data(address << 3, issue)
            dest = row[1]
            reg_ready[dest] = complete
            reg_from_load[dest] = True
            loads += 1
        elif kind == K_BRANCH:
            cond_branches += 1
            taken = col_branch_taken[branch_i] == 1
            if recorded:
                predicted_taken = col_branch_pred[branch_i] == 1
            else:
                prediction = predictor_lookup(row[6])
                predictor_update(prediction, taken)
                predicted_taken = prediction.taken
            branch_i += 1
            if predicted_taken != taken:
                cond_mispredicts += 1
                fetch_cycle = complete + 1
                fetch_slots = 0
                current_line = -1
                under_mispredict_window = True
            elif taken:
                taken_redirects += 1
                if btb_lookup(pc) is None:
                    fetch_cycle = (
                        fetch_time + taken_bubble + btb_bubble
                    )
                    btb_miss_bubbles += 1
                    btb_insert(pc, row[5])
                else:
                    fetch_cycle = fetch_time + taken_bubble
                fetch_slots = 0
                current_line = -1
        elif kind == K_STORE:
            address = col_store_addrs[store_i]
            store_i += 1
            access_data(address << 3, issue)
            stores += 1
            complete = issue + 1
        elif kind == K_RESOLVE:
            resolves += 1
            diverted = col_resolve_diverted[resolve_i]
            resolve_i += 1
            if diverted:
                resolve_mispredicts += 1
                fetch_cycle = complete + 1
                fetch_slots = 0
                current_line = -1
                under_mispredict_window = True
        elif kind == K_JMP:
            taken_redirects += 1
            fetch_cycle = fetch_time + taken_bubble
            fetch_slots = 0
            current_line = -1
        elif kind == K_CALL:
            dest = row[1]
            reg_ready[dest] = complete
            reg_from_load[dest] = False
            ras_push(pc + 1)
            taken_redirects += 1
            fetch_cycle = fetch_time + taken_bubble
            fetch_slots = 0
            current_line = -1
        elif kind == K_RET:
            actual = col_ret_targets[ret_i]
            ret_i += 1
            predicted = ras_pop()
            if predicted != actual:
                ras_mispredicts += 1
                fetch_cycle = complete + 1
                under_mispredict_window = True
            else:
                taken_redirects += 1
                fetch_cycle = fetch_time + taken_bubble
            fetch_slots = 0
            current_line = -1
        elif kind != K_NOP:
            # K_BINOP / K_CONST / K_SEL / K_EVAL_GEN: timing only
            # touches the destination scoreboard.
            dest = row[1]
            reg_ready[dest] = complete
            reg_from_load[dest] = False

        if complete > last_cycle:
            last_cycle = complete

    stats.cycles = last_cycle + 1
    stats.fetched = fetched
    stats.committed = committed
    stats.hoisted_committed = hoisted_committed
    stats.issued = issued
    stats.loads = loads
    stats.stores = stores
    stats.load_use_stall_cycles = load_use_stall_cycles
    stats.cond_branches = cond_branches
    stats.cond_mispredicts = cond_mispredicts
    stats.taken_redirects = taken_redirects
    stats.btb_miss_bubbles = btb_miss_bubbles
    stats.predicts = predicts
    stats.resolves = resolves
    stats.resolve_mispredicts = resolve_mispredicts
    stats.resolution_stall_cycles = resolution_stall_cycles
    stats.speculative_loads = speculative_loads
    stats.ras_mispredicts = ras_mispredicts
    stats.icache_misses = icache_misses
    stats.icache_misses_under_mispredict = icache_misses_under_mispredict
    stats.halted = halted
    return _final_state(program, trace, stats)


def replay_ooo(
    program,
    trace: Trace,
    config: Optional[MachineConfig] = None,
    window: int = 64,
) -> SimulationResult:
    """Replay ``trace`` on the out-of-order timing model.

    The committed stream is core-independent (both cores execute the
    same architectural semantics in fetch order), so a trace captured
    by the in-order core replays on the OOO model and vice versa.
    """
    config = config or MachineConfig()
    recorded = _check_and_mode(program, trace, config)
    if _vectorized_enabled():
        from . import replay_vec

        stats = replay_vec.replay_ooo_stats(
            program, trace, config, recorded, window
        )
        if stats is not None:
            return _final_state(program, trace, stats)
    return _replay_ooo_scalar(program, trace, config, recorded, window)


def _replay_ooo_scalar(
    program,
    trace: Trace,
    config: MachineConfig,
    recorded: bool,
    window: int,
) -> SimulationResult:
    """The scalar oracle loop (line-for-line mirror of ``ooo.py``)."""
    from ..memory import MemoryHierarchy

    stats = SimStats()
    rows = predecode(program).rows

    pcs = trace.pcs
    stream_len = len(pcs)
    col_branch_pred = trace.branch_pred
    col_branch_taken = trace.branch_taken
    col_predict_taken = trace.predict_taken
    col_resolve_diverted = trace.resolve_diverted
    col_load_addrs = trace.load_addrs
    col_load_suppressed = trace.load_suppressed
    col_store_addrs = trace.store_addrs
    col_ret_targets = trace.ret_targets
    branch_i = 0
    predict_i = 0
    resolve_i = 0
    load_i = 0
    spec_i = 0
    store_i = 0
    ret_i = 0

    reg_ready = [0] * 64

    hierarchy = MemoryHierarchy(config.hierarchy)
    if recorded:
        predictor_lookup = predictor_update = None
    else:
        predictor = config.predictor_factory()
        predictor_lookup = predictor.lookup
        predictor_update = predictor.update
    btb = BranchTargetBuffer(config.btb_entries)
    ras = ReturnAddressStack(config.ras_entries)

    access_inst = hierarchy.access_inst
    access_data = hierarchy.access_data
    btb_lookup = btb.lookup
    btb_insert = btb.insert
    ras_push = ras.push
    ras_pop = ras.pop

    width = config.width
    front_depth = config.front_end_stages
    l1_latency = config.hierarchy.l1_latency
    port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)

    issued_cnt = [0] * _OOO_RING
    issued_stamp = [-1] * _OOO_RING
    port_cnt = (None, [0] * _OOO_RING, [0] * _OOO_RING, [0] * _OOO_RING)
    port_stamp = (
        None, [-1] * _OOO_RING, [-1] * _OOO_RING, [-1] * _OOO_RING,
    )

    fetch_cycle = 0
    fetch_slots = 0
    current_line = -1
    last_cycle = 0
    inflight: List[int] = []
    inflight_append = inflight.append

    fetched = 0
    committed = 0
    hoisted_committed = 0
    issued = 0
    loads = 0
    stores = 0
    cond_branches = 0
    cond_mispredicts = 0
    taken_redirects = 0
    predicts = 0
    resolves = 0
    resolve_mispredicts = 0
    resolution_stall_cycles = 0
    speculative_loads = 0
    ras_mispredicts = 0
    icache_misses = 0
    halted = False

    index = 0
    while index < stream_len:
        pc = pcs[index]
        index += 1
        row = rows[pc]
        kind = row[0]

        # ---- fetch (same model as the in-order core) ----
        byte_pc = pc << 2
        line = byte_pc >> _LINE_SHIFT
        if line != current_line:
            ready = access_inst(byte_pc, fetch_cycle)
            if ready > fetch_cycle:
                icache_misses += 1
                fetch_cycle = ready
                fetch_slots = 0
            current_line = line
        if fetch_slots >= width:
            fetch_cycle += 1
            fetch_slots = 0
        inflight_len = len(inflight)
        if inflight_len >= window:
            gate = inflight[inflight_len - window]
            if gate > fetch_cycle:
                fetch_cycle = gate
                fetch_slots = 0
        fetch_time = fetch_cycle
        fetch_slots += 1
        fetched += 1
        committed += 1
        if row[10]:  # hoisted
            hoisted_committed += 1

        if kind >= K_PREDICT:
            if kind == K_PREDICT:
                predicts += 1
                prediction_taken = col_predict_taken[predict_i]
                predict_i += 1
                if prediction_taken:
                    if btb_lookup(pc) is None:
                        btb_insert(pc, row[5])
                        fetch_cycle = fetch_time + 2
                    else:
                        fetch_cycle = fetch_time + 1
                    fetch_slots = 0
                    current_line = -1
                continue
            # HALT
            halted = True
            break

        # ---- dataflow issue: operands + a free port, no ordering ----
        base = fetch_time + front_depth
        operand_ready = base
        for reg in row[2]:
            if reg_ready[reg] > operand_ready:
                operand_ready = reg_ready[reg]

        fu = row[8]
        t = operand_ready
        if fu:
            cap = port_caps[fu]
            pcnt = port_cnt[fu]
            pstamp = port_stamp[fu]
            while True:
                slot = t & _OOO_RING_MASK
                have = issued_cnt[slot] if issued_stamp[slot] == t else 0
                if have >= width:
                    t += 1
                    continue
                used = pcnt[slot] if pstamp[slot] == t else 0
                if used >= cap:
                    t += 1
                    continue
                break
            issued_stamp[slot] = t
            issued_cnt[slot] = have + 1
            pstamp[slot] = t
            pcnt[slot] = used + 1
            issued += 1
        issue = t
        if kind == K_BRANCH or kind == K_RESOLVE:
            wait = issue - base
            if wait > 0:
                resolution_stall_cycles += wait

        complete = issue + row[7]

        # ---- re-time (no semantics) ----
        if kind == K_LOAD:
            address = col_load_addrs[load_i]
            load_i += 1
            if row[9]:  # speculative
                suppressed = col_load_suppressed[spec_i]
                spec_i += 1
                if suppressed:
                    complete = issue + l1_latency
                else:
                    complete = access_data(address << 3, issue)
                speculative_loads += 1
            else:
                complete = access_data(address << 3, issue)
            reg_ready[row[1]] = complete
            loads += 1
        elif kind == K_BRANCH:
            cond_branches += 1
            taken = col_branch_taken[branch_i] == 1
            if recorded:
                predicted_taken = col_branch_pred[branch_i] == 1
            else:
                prediction = predictor_lookup(row[6])
                predictor_update(prediction, taken)
                predicted_taken = prediction.taken
            branch_i += 1
            if predicted_taken != taken:
                cond_mispredicts += 1
                fetch_cycle = complete + 1
                fetch_slots = 0
                current_line = -1
            elif taken:
                taken_redirects += 1
                fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
        elif kind == K_STORE:
            address = col_store_addrs[store_i]
            store_i += 1
            access_data(address << 3, issue)
            stores += 1
            complete = issue + 1
        elif kind == K_RESOLVE:
            resolves += 1
            diverted = col_resolve_diverted[resolve_i]
            resolve_i += 1
            if diverted:
                resolve_mispredicts += 1
                fetch_cycle = complete + 1
                fetch_slots = 0
                current_line = -1
        elif kind == K_JMP:
            taken_redirects += 1
            fetch_cycle = fetch_time + 1
            fetch_slots = 0
            current_line = -1
        elif kind == K_CALL:
            reg_ready[row[1]] = complete
            ras_push(pc + 1)
            fetch_cycle = fetch_time + 1
            fetch_slots = 0
            current_line = -1
        elif kind == K_RET:
            actual = col_ret_targets[ret_i]
            ret_i += 1
            predicted = ras_pop()
            if predicted != actual:
                ras_mispredicts += 1
                fetch_cycle = complete + 1
            else:
                fetch_cycle = fetch_time + 1
            fetch_slots = 0
            current_line = -1
        elif kind != K_NOP:
            # K_BINOP / K_CONST / K_SEL / K_EVAL_GEN.
            dest = row[1]
            reg_ready[dest] = complete

        inflight_append(complete)
        if len(inflight) > 4 * window:
            inflight = inflight[-window:]
            inflight_append = inflight.append
        if complete > last_cycle:
            last_cycle = complete

    stats.cycles = last_cycle + 1
    stats.fetched = fetched
    stats.committed = committed
    stats.hoisted_committed = hoisted_committed
    stats.issued = issued
    stats.loads = loads
    stats.stores = stores
    stats.cond_branches = cond_branches
    stats.cond_mispredicts = cond_mispredicts
    stats.taken_redirects = taken_redirects
    stats.predicts = predicts
    stats.resolves = resolves
    stats.resolve_mispredicts = resolve_mispredicts
    stats.resolution_stall_cycles = resolution_stall_cycles
    stats.speculative_loads = speculative_loads
    stats.ras_mispredicts = ras_mispredicts
    stats.icache_misses = icache_misses
    stats.halted = halted
    return _final_state(program, trace, stats)
