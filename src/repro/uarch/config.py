"""Machine configuration (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..branchpred import DirectionPredictor, HybridPredictor
from ..memory import HierarchyConfig


@dataclass
class MachineConfig:
    """Parameters of one in-order superscalar configuration.

    Defaults reproduce the paper's Table 1 with the experimentally varied
    width set to 4 (the configuration Table 2 reports).
    """

    #: Fetch/decode/dispatch and issue width (paper varies 2/4/8).
    width: int = 4
    #: Front-end depth in stages; a redirect costs this many cycles before
    #: the first correct-path instruction can issue.
    front_end_stages: int = 5
    fetch_buffer_entries: int = 32
    #: Functional-unit ports (Table 1: up to 2x LD/ST, 2x INT/SIMD-permute,
    #: 4x 64-bit SIMD/FP, 1-cycle bypass).
    mem_ports: int = 2
    int_ports: int = 2
    fp_ports: int = 4
    btb_entries: int = 4096
    ras_entries: int = 64
    dbb_entries: int = 16
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    #: Extra fetch bubble when a taken-predicted branch misses in the BTB.
    btb_miss_bubble: int = 1
    #: Fetch bubbles after any taken redirect of the fetch stream.
    taken_redirect_bubble: int = 1

    def __post_init__(self) -> None:
        if self.width not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported width {self.width}")

    @classmethod
    def paper_default(cls, width: int = 4) -> "MachineConfig":
        """The Table 1 machine at the given issue width."""
        return cls(width=width)

    def with_predictor(
        self, factory: Callable[[], DirectionPredictor]
    ) -> "MachineConfig":
        from dataclasses import replace

        return replace(self, predictor_factory=factory)

    def with_icache_bytes(self, size_bytes: int) -> "MachineConfig":
        """Variant with a different L1-I capacity (Section 6.1 sweep)."""
        from dataclasses import replace

        hierarchy = HierarchyConfig(**vars(self.hierarchy))
        hierarchy.l1i_bytes = size_bytes
        return replace(self, hierarchy=hierarchy)
