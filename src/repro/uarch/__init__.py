"""Cycle-level in-order superscalar model plus a timing-free functional
executor for profiling and differential testing."""

from .config import MachineConfig
from .core import InOrderCore, SimulationError, SimulationResult
from .ooo import OutOfOrderCore
from .functional import (
    FunctionalResult,
    always_not_taken,
    always_taken,
    collect_branch_trace,
    execute,
)
from .replay import replay_inorder, replay_inorder_sweep, replay_ooo
from .stats import SimStats
from .trace import (
    Trace,
    TraceCapture,
    TraceError,
    TraceMismatch,
    content_digest,
    predictor_id,
)
from .visualize import TraceRow, collect_timeline, render_timeline

__all__ = [
    "FunctionalResult",
    "InOrderCore",
    "OutOfOrderCore",
    "MachineConfig",
    "SimStats",
    "Trace",
    "TraceCapture",
    "TraceError",
    "TraceMismatch",
    "TraceRow",
    "collect_timeline",
    "content_digest",
    "predictor_id",
    "render_timeline",
    "replay_inorder",
    "replay_inorder_sweep",
    "replay_ooo",
    "SimulationError",
    "SimulationResult",
    "always_not_taken",
    "always_taken",
    "collect_branch_trace",
    "execute",
]
