"""Cycle-level in-order superscalar model plus a timing-free functional
executor for profiling and differential testing."""

from .config import MachineConfig
from .core import InOrderCore, SimulationError, SimulationResult
from .ooo import OutOfOrderCore
from .functional import (
    FunctionalResult,
    always_not_taken,
    always_taken,
    collect_branch_trace,
    execute,
)
from .stats import SimStats
from .visualize import TraceRow, collect_timeline, render_timeline

__all__ = [
    "FunctionalResult",
    "InOrderCore",
    "OutOfOrderCore",
    "MachineConfig",
    "SimStats",
    "TraceRow",
    "collect_timeline",
    "render_timeline",
    "SimulationError",
    "SimulationResult",
    "always_not_taken",
    "always_taken",
    "collect_branch_trace",
    "execute",
]
