"""Timing-free functional executor.

Two uses:

* **Profiling** (the paper's TRAIN runs): execute the baseline program and
  record every conditional branch's (branch_id, outcome) so the selection
  heuristic can measure bias and predictability.
* **Differential correctness**: the Decomposed Branch Transformation must
  preserve program semantics *regardless of prediction accuracy* -- the
  correction code repairs any misprediction.  This executor takes an
  arbitrary prediction policy for PREDICT instructions, so tests can drive
  transformed programs down always-taken, always-not-taken, random, and
  adversarial prediction streams and assert identical final memory.

Like the timing cores, the interpreter loop drives off the program's
pre-decoded rows (:mod:`repro.isa.decode`): integer-kind dispatch and
pre-bound evaluators instead of dataclass attribute walks, sharing one
decode pass with every timing run of the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple, Union

from ..isa import Memory, Program
from ..isa.decode import (
    K_BINOP,
    K_BRANCH,
    K_CALL,
    K_CONST,
    K_HALT,
    K_JMP,
    K_LOAD,
    K_NOP,
    K_PREDICT,
    K_RESOLVE,
    K_RET,
    K_SEL,
    K_STORE,
    predecode,
)
from .core import SimulationError, _evaluate_row

Value = Union[int, float]

#: Maps a static branch id to a predicted direction for PREDICT.
PredictPolicy = Callable[[int], bool]


def always_taken(_branch_id: int) -> bool:
    return True


def always_not_taken(_branch_id: int) -> bool:
    return False


@dataclass
class FunctionalResult:
    registers: List[Value]
    memory: Memory
    instructions_executed: int
    branch_trace: List[Tuple[int, bool]] = field(default_factory=list)
    halted: bool = False
    #: Dynamic count per static pc, for hot-spot inspection.
    resolve_mispredicts: int = 0

    def memory_snapshot(self):
        return self.memory.snapshot()


def execute(
    program: Program,
    predict_policy: PredictPolicy = always_not_taken,
    max_instructions: int = 5_000_000,
    record_branch_trace: bool = False,
) -> FunctionalResult:
    """Run ``program`` functionally.

    ``predict_policy`` chooses the direction of each PREDICT instruction;
    the RESOLVE on the chosen path then checks the real condition and, on a
    "mispredict", diverts into the correction code exactly as the hardware
    would.
    """
    decoded = predecode(program)
    rows = decoded.rows
    program_len = decoded.length
    regs: List[Value] = [0] * 64
    memory = Memory()
    for address, value in program.data.items():
        memory.store(address, value)
    mem_load = memory.load
    mem_store = memory.store

    trace: List[Tuple[int, bool]] = []
    trace_append = trace.append
    executed = 0
    resolve_mispredicts = 0
    halted = False
    pc = 0

    while executed < max_instructions:
        if pc < 0 or pc >= program_len:
            raise SimulationError(
                f"pc {pc} outside program of length {program_len}"
            )
        row = rows[pc]
        kind = row[0]
        executed += 1

        if kind == K_BINOP:
            b_reg = row[4]
            regs[row[1]] = row[12](
                regs[row[2][0]], row[3] if b_reg < 0 else regs[b_reg]
            )
            pc += 1
        elif kind == K_BRANCH:
            taken = (regs[row[4]] != 0) == row[12]
            if record_branch_trace:
                trace_append((row[6], taken))
            pc = row[5] if taken else pc + 1
        elif kind == K_LOAD:
            regs[row[1]] = mem_load(
                regs[row[4]] + row[3], speculative=row[9]
            )
            pc += 1
        elif kind == K_STORE:
            mem_store(regs[row[4]] + row[3], regs[row[2][0]])
            pc += 1
        elif kind == K_CONST:
            regs[row[1]] = row[3]
            pc += 1
        elif kind == K_SEL:
            srcs = row[2]
            regs[row[1]] = (
                regs[srcs[1]] if regs[srcs[0]] else regs[srcs[2]]
            )
            pc += 1
        elif kind == K_PREDICT:
            pc = row[5] if predict_policy(row[6]) else pc + 1
        elif kind == K_RESOLVE:
            if (regs[row[4]] != 0) == row[12]:
                resolve_mispredicts += 1
                pc = row[5]
            else:
                pc += 1
        elif kind == K_JMP:
            pc = row[5]
        elif kind == K_CALL:
            regs[row[1]] = pc + 1
            pc = row[5]
        elif kind == K_RET:
            pc = regs[row[4]]
        elif kind == K_NOP:
            pc += 1
        elif kind == K_HALT:
            halted = True
            break
        else:  # K_EVAL_GEN
            regs[row[1]] = _evaluate_row(row, regs)
            pc += 1

    return FunctionalResult(
        registers=regs,
        memory=memory,
        instructions_executed=executed,
        branch_trace=trace,
        halted=halted,
        resolve_mispredicts=resolve_mispredicts,
    )


def collect_branch_trace(
    program: Program, max_instructions: int = 5_000_000
) -> List[Tuple[int, bool]]:
    """The profiling entry point: run and return the branch trace."""
    result = execute(
        program,
        max_instructions=max_instructions,
        record_branch_trace=True,
    )
    return result.branch_trace
