"""Timing-free functional executor.

Two uses:

* **Profiling** (the paper's TRAIN runs): execute the baseline program and
  record every conditional branch's (branch_id, outcome) so the selection
  heuristic can measure bias and predictability.
* **Differential correctness**: the Decomposed Branch Transformation must
  preserve program semantics *regardless of prediction accuracy* -- the
  correction code repairs any misprediction.  This executor takes an
  arbitrary prediction policy for PREDICT instructions, so tests can drive
  transformed programs down always-taken, always-not-taken, random, and
  adversarial prediction streams and assert identical final memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from ..isa import (
    Memory,
    Opcode,
    Program,
    branch_taken,
    resolve_diverts,
)
from .core import SimulationError, _evaluate

Value = Union[int, float]

#: Maps a static branch id to a predicted direction for PREDICT.
PredictPolicy = Callable[[int], bool]


def always_taken(_branch_id: int) -> bool:
    return True


def always_not_taken(_branch_id: int) -> bool:
    return False


@dataclass
class FunctionalResult:
    registers: List[Value]
    memory: Memory
    instructions_executed: int
    branch_trace: List[Tuple[int, bool]] = field(default_factory=list)
    halted: bool = False
    #: Dynamic count per static pc, for hot-spot inspection.
    resolve_mispredicts: int = 0

    def memory_snapshot(self):
        return self.memory.snapshot()


def execute(
    program: Program,
    predict_policy: PredictPolicy = always_not_taken,
    max_instructions: int = 5_000_000,
    record_branch_trace: bool = False,
) -> FunctionalResult:
    """Run ``program`` functionally.

    ``predict_policy`` chooses the direction of each PREDICT instruction;
    the RESOLVE on the chosen path then checks the real condition and, on a
    "mispredict", diverts into the correction code exactly as the hardware
    would.
    """
    instructions = program.instructions
    program_len = len(instructions)
    regs: List[Value] = [0] * 64
    memory = Memory()
    for address, value in program.data.items():
        memory.store(address, value)

    trace: List[Tuple[int, bool]] = []
    executed = 0
    resolve_mispredicts = 0
    halted = False
    pc = 0

    while executed < max_instructions:
        if pc < 0 or pc >= program_len:
            raise SimulationError(
                f"pc {pc} outside program of length {program_len}"
            )
        inst = instructions[pc]
        op = inst.opcode
        executed += 1

        if op is Opcode.HALT:
            halted = True
            break
        if op is Opcode.PREDICT:
            branch_id = inst.branch_id if inst.branch_id is not None else pc
            pc = inst.target if predict_policy(branch_id) else pc + 1
            continue
        if op is Opcode.BNZ or op is Opcode.BZ:
            taken = branch_taken(op, regs[inst.srcs[0]])
            if record_branch_trace:
                branch_id = (
                    inst.branch_id if inst.branch_id is not None else pc
                )
                trace.append((branch_id, taken))
            pc = inst.target if taken else pc + 1
            continue
        if op is Opcode.RESOLVE_NZ or op is Opcode.RESOLVE_Z:
            if resolve_diverts(op, regs[inst.srcs[0]]):
                resolve_mispredicts += 1
                pc = inst.target
            else:
                pc += 1
            continue
        if op is Opcode.JMP:
            pc = inst.target
            continue
        if op is Opcode.CALL:
            regs[inst.dest] = pc + 1
            pc = inst.target
            continue
        if op is Opcode.RET:
            pc = regs[inst.srcs[0]]
            continue
        if op is Opcode.LOAD:
            address = regs[inst.srcs[0]] + (inst.imm or 0)
            regs[inst.dest] = memory.load(
                address, speculative=inst.speculative
            )
            pc += 1
            continue
        if op is Opcode.STORE:
            address = regs[inst.srcs[1]] + (inst.imm or 0)
            memory.store(address, regs[inst.srcs[0]])
            pc += 1
            continue
        if op is Opcode.NOP:
            pc += 1
            continue
        regs[inst.dest] = _evaluate(op, inst, regs)
        pc += 1

    return FunctionalResult(
        registers=regs,
        memory=memory,
        instructions_executed=executed,
        branch_trace=trace,
        halted=halted,
        resolve_mispredicts=resolve_mispredicts,
    )


def collect_branch_trace(
    program: Program, max_instructions: int = 5_000_000
) -> List[Tuple[int, bool]]:
    """The profiling entry point: run and return the branch trace."""
    result = execute(
        program,
        max_instructions=max_instructions,
        record_branch_trace=True,
    )
    return result.branch_trace
