"""Committed-instruction traces: capture once, replay everywhere.

The paper's evaluation methodology (PTLSim sweeps over fixed binaries)
re-times the *same* committed instruction stream under many machine
configurations.  In this simulator the architectural side of a run --
which instructions commit, each branch outcome, every load/store
address, the final register file and memory image -- is invariant
across widths, port counts, cache geometry, BTB/RAS/DBB sizing and
front-end depth: timing never feeds back into architectural state.
The one exception is the direction predictor of a *decomposed*
program, whose PREDICT instructions architecturally steer the
committed path; a baseline program (no PREDICT/RESOLVE) commits a
predictor-independent stream (``DecodedProgram.has_decomposed``).

:class:`TraceCapture` records that invariant stream during one
execute-driven run as compact columnar arrays (``array``/packed-bit
columns); :class:`Trace` is the immutable result, serialisable to a
zlib-compressed, per-column-checksummed binary container.  The replay
loops (:mod:`repro.uarch.replay`) re-run only the *timing* machinery
over a trace -- no register values, no memory contents, no evaluator
calls -- and are bit-identical to execute-driven simulation (see
``tests/golden`` and ``tests/uarch/test_trace_replay.py``).

Columns (event-indexed, cursor-advanced by the replay loop):

========  ==================  =======================================
column    type                one entry per
========  ==================  =======================================
pcs       ``array('i')``      committed instruction (index into the
                              pre-decoded rows, PREDICT/HALT included)
branch_pred   packed bits     conditional branch (predicted taken)
branch_taken  packed bits     conditional branch (actual outcome)
predict_taken packed bits     PREDICT (front-end direction)
resolve_diverted packed bits  RESOLVE (correction-path divert)
load_addrs    ``array('q')``  load (word address)
load_suppressed packed bits   *speculative* load (fault suppressed)
store_addrs   ``array('q')``  store (word address)
ret_targets   ``array('i')``  RET (actual return target)
========  ==================  =======================================

The trace's ``meta`` block carries the final architectural state
(registers, non-zero memory words, suppressed-fault count, halted) so
a replayed :class:`~repro.uarch.core.SimulationResult` is complete --
the golden fingerprints hash exactly this state.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import zlib
from array import array
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa.decode import K_PREDICT, K_RESOLVE, predecode

#: Bump when the trace container layout or column semantics change.
TRACE_SCHEMA = 1

_MAGIC = b"RVTRACE1"

#: Cache artifacts trade a little disk for a lot of CPU: level 1 is
#: ~3x faster to compress than the default with ~20% larger output,
#: and capture-side serialisation sits on the sweep critical path.
_ZLIB_LEVEL = 1

#: (name, array typecode or "bits") in canonical serialisation order.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pcs", "i"),
    ("branch_pred", "bits"),
    ("branch_taken", "bits"),
    ("predict_taken", "bits"),
    ("resolve_diverted", "bits"),
    ("load_addrs", "q"),
    ("load_suppressed", "bits"),
    ("store_addrs", "q"),
    ("ret_targets", "i"),
)


class TraceError(Exception):
    """A trace failed validation (corrupt, truncated, wrong schema)."""


class TraceMismatch(Exception):
    """A trace cannot legally replay under the requested configuration."""


# ------------------------------------------------------------------ digests


def content_digest(program) -> str:
    """Content hash of a program: every instruction field plus the data
    segment.  Cached on the program instance (like ``predecode``) and
    keyed on the identity of its instruction list."""
    cached = getattr(program, "_content_digest", None)
    if cached is not None and cached[0] == id(program.instructions):
        return cached[1]
    digest = hashlib.sha256()
    digest.update(
        repr(
            [
                (
                    inst.opcode.name,
                    inst.dest,
                    tuple(inst.srcs),
                    repr(inst.imm),
                    inst.target,
                    inst.branch_id,
                    inst.predicted_dir,
                    inst.speculative,
                    inst.hoisted,
                )
                for inst in program.instructions
            ]
        ).encode()
    )
    # The data segment can be large (100k+ words); pack int words
    # straight into an array instead of repr-ing every entry.
    data = program.data
    addresses = sorted(data)
    try:
        digest.update(array("q", addresses).tobytes())
        digest.update(array("q", map(data.__getitem__, addresses)).tobytes())
    except (OverflowError, TypeError):
        digest.update(
            repr([(a, repr(data[a])) for a in addresses]).encode()
        )
    value = digest.hexdigest()
    try:
        program._content_digest = (id(program.instructions), value)
    except AttributeError:
        pass
    return value


def predictor_id(factory) -> Optional[str]:
    """Stable identity of a predictor factory, or ``None`` when the
    factory has no stable cross-process name (lambdas/closures) -- a
    ``None`` id disables trace sharing rather than risking aliasing."""
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return f"{module}.{qualname}"


# ------------------------------------------------------------------ capture


class TraceCapture:
    """Mutable column builder handed to ``InOrderCore.run(capture=...)``.

    The core appends raw events (ints; bit columns take 0/1); the
    harness then calls :meth:`finish` with the finished run to build an
    immutable :class:`Trace` carrying the final architectural state.
    """

    __slots__ = tuple(name for name, _ in _COLUMNS)

    def __init__(self) -> None:
        self.pcs = array("i")
        self.branch_pred = bytearray()
        self.branch_taken = bytearray()
        self.predict_taken = bytearray()
        self.resolve_diverted = bytearray()
        self.load_addrs = array("q")
        self.load_suppressed = bytearray()
        self.store_addrs = array("q")
        self.ret_targets = array("i")

    def finish(
        self,
        program,
        result,
        max_instructions: int,
        predictor: Optional[str],
    ) -> "Trace":
        """Freeze the capture into a :class:`Trace`.

        ``result`` is the :class:`~repro.uarch.core.SimulationResult`
        of the capturing run; its architectural outcome (registers,
        memory snapshot, suppressed faults, halted) travels in the
        trace so replay can return a complete result.
        """
        decoded = predecode(program)
        meta = {
            "schema": TRACE_SCHEMA,
            "program": content_digest(program),
            "name": program.name,
            "budget": max_instructions,
            "predictor": predictor,
            "has_decomposed": decoded.has_decomposed,
            "committed": len(self.pcs),
            "halted": bool(result.stats.halted),
            "faults_suppressed": result.memory.faults_suppressed,
            "registers": list(result.registers),
            "memory": [[a, v] for a, v in result.memory.snapshot()],
        }
        return Trace(
            meta,
            **{name: getattr(self, name) for name, _ in _COLUMNS},
        )


#: numpy dtype per column typecode (the bit columns are 0/1-per-byte
#: bytearrays, viewed as uint8).
_NP_DTYPES = {"i": np.int32, "q": np.int64, "bits": np.uint8}


class Trace:
    """Immutable captured instruction stream plus final state.

    Besides the raw ``array``/``bytearray`` columns, a trace lazily
    exposes zero-copy numpy *views* of each column (:meth:`column`) and
    carries a replay-preparation cache (``repro.uarch.replay_vec``
    stores its precomputed kind-index/redirect/cache-level arrays here
    so one trace replayed across a whole sweep pays for the
    vectorized precompute once).  Both are derived state: they never
    change the captured stream, and :meth:`nbytes` accounts for them
    so the artifact store's LRU budget sees the true footprint.
    """

    __slots__ = ("meta", "_views", "_prep", "_backing", "_digest") + tuple(
        name for name, _ in _COLUMNS
    )

    def __init__(self, meta: Dict, **columns) -> None:
        self.meta = meta
        for name, _ in _COLUMNS:
            setattr(self, name, columns[name])
        #: name -> cached numpy view of the column buffer (zero-copy).
        self._views: Dict[str, np.ndarray] = {}
        #: Replay precompute cache (owned by repro.uarch.replay_vec).
        self._prep = None
        #: Keep-alive for an external buffer the columns view into (a
        #: ``multiprocessing.shared_memory`` handle when the trace was
        #: attached through the shared trace plane); ``None`` for
        #: traces that own their columns.
        self._backing = None
        #: Lazily computed :meth:`content_digest` (columns are
        #: immutable after capture, so one hash serves forever).
        self._digest: Optional[str] = None

    @classmethod
    def from_views(
        cls, meta: Dict, views: Dict[str, np.ndarray], backing=None
    ) -> "Trace":
        """Build a trace whose columns are externally-backed numpy
        views (zero-copy attach -- see :mod:`repro.experiments.plane`).

        ``views`` must carry every canonical column with the canonical
        dtype; ``backing`` is any object that must stay alive as long
        as the views do (e.g. the ``SharedMemory`` handle).  The views
        behave exactly like owned columns: ``len``/indexing/iteration
        in the scalar replay loops, and :meth:`column` returns them
        directly.
        """
        missing = [name for name, _ in _COLUMNS if name not in views]
        if missing:
            raise TraceError(f"missing attached columns: {missing}")
        trace = cls(meta, **{name: views[name] for name, _ in _COLUMNS})
        trace._views = dict(views)
        trace._backing = backing
        return trace

    @property
    def committed(self) -> int:
        return len(self.pcs)

    def column(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of one column.

        ``array('i')``/``array('q')`` columns view as int32/int64; the
        0/1-per-byte bit columns view as uint8.  Views share the
        column's buffer -- they cost no extra memory and stay valid for
        the trace's lifetime (columns are never mutated after capture).
        """
        view = self._views.get(name)
        if view is None:
            for cname, typecode in _COLUMNS:
                if cname == name:
                    column = getattr(self, name)
                    if isinstance(column, np.ndarray):
                        view = column  # attached trace: already a view
                    else:
                        view = np.frombuffer(
                            column, dtype=_NP_DTYPES[typecode]
                        )
                    break
            else:
                raise KeyError(name)
            self._views[name] = view
        return view

    def nbytes(self) -> int:
        """In-memory footprint (for LRU budgeting): raw columns plus
        any replay-preparation arrays cached on the trace.  Column
        views are zero-copy and cost nothing extra."""
        total = 0
        for name, typecode in _COLUMNS:
            column = getattr(self, name)
            if typecode == "bits":
                total += len(column)
            else:
                total += len(column) * column.itemsize
        prep = self._prep
        if prep is not None:
            total += prep.nbytes()
        return total

    def content_digest(self) -> str:
        """Content hash of the *captured stream itself*: the identity
        meta fields plus every column's raw bytes.

        The program digest in ``meta`` identifies what was run; this
        digest identifies what was recorded -- derived artifacts keyed
        on it (the persisted replay-prep slices of
        :mod:`repro.uarch.replay_vec`) invalidate automatically when a
        recapture produces different columns (new budget, new
        predictor steering a decomposed program, a semantics change
        reflected in ``meta['program']``).  Cached after the first
        call; columns never mutate after capture.
        """
        if self._digest is not None:
            return self._digest
        digest = hashlib.sha256()
        identity = {
            name: self.meta.get(name)
            for name in (
                "schema", "program", "budget", "predictor",
                "has_decomposed", "committed", "halted",
            )
        }
        digest.update(
            json.dumps(identity, sort_keys=True).encode()
        )
        for name, typecode in _COLUMNS:
            column = getattr(self, name)
            if isinstance(column, np.ndarray):
                raw = column.tobytes()
            elif typecode == "bits":
                raw = bytes(column)
            else:
                raw = column.tobytes()
            digest.update(name.encode())
            digest.update(raw)
        self._digest = digest.hexdigest()
        return self._digest

    def max_outstanding_predicts(self, program) -> int:
        """High-water mark of PREDICTs awaiting their RESOLVE.

        Mirrors ``DecomposedBranchBuffer`` exactly: +1 per insert
        (PREDICT), floor-at-zero decrement per resolve -- the DBB's
        occupancy statistic is independent of its size, so the
        ablation sweep reads it off the trace instead of the core.
        Computed array-at-a-time: the reflected-at-zero running sum
        ``o_i = c_i - min(0, min_{j<=i} c_j)`` of the +1/-1 event
        deltas, so the peak falls out of two accumulations.
        """
        rows = predecode(program).rows
        if not len(self.pcs):
            return 0
        kind_by_pc = np.fromiter(
            (row[0] for row in rows), dtype=np.int8, count=len(rows)
        )
        kinds = kind_by_pc[self.column("pcs")]
        delta = np.zeros(len(kinds), dtype=np.int64)
        delta[kinds == K_PREDICT] = 1
        delta[kinds == K_RESOLVE] = -1
        walk = np.cumsum(delta)
        floor = np.minimum(np.minimum.accumulate(walk), 0)
        peak = int(np.max(walk - floor, initial=0))
        return peak

    # -------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        """Binary container: magic, compressed JSON header (meta plus
        per-column descriptors with checksums), then the compressed
        column payloads in canonical order."""
        payloads: List[bytes] = []
        descriptors: List[Dict] = []
        for name, typecode in _COLUMNS:
            column = getattr(self, name)
            if typecode == "bits":
                raw = _pack_bits(column)
                count = len(column)
            else:
                raw = column.tobytes()
                count = len(column)
            blob = zlib.compress(raw, _ZLIB_LEVEL)
            payloads.append(blob)
            descriptors.append(
                {
                    "name": name,
                    "type": typecode,
                    "count": count,
                    "zlen": len(blob),
                    "sha256": hashlib.sha256(blob).hexdigest(),
                }
            )
        header = zlib.compress(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA,
                    "byteorder": sys.byteorder,
                    "meta": self.meta,
                    "columns": descriptors,
                },
                sort_keys=True,
            ).encode(),
            _ZLIB_LEVEL,
        )
        return b"".join(
            [_MAGIC, struct.pack("<I", len(header)), header] + payloads
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Trace":
        """Parse and *validate* a container; raises :class:`TraceError`
        on any corruption (bad magic/schema, truncation, checksum or
        count mismatch) so callers can quarantine the file."""
        if len(blob) < len(_MAGIC) + 4 or blob[: len(_MAGIC)] != _MAGIC:
            raise TraceError("bad magic")
        offset = len(_MAGIC)
        (header_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if offset + header_len > len(blob):
            raise TraceError("truncated header")
        try:
            header = json.loads(
                zlib.decompress(blob[offset : offset + header_len])
            )
        except (ValueError, zlib.error) as exc:
            raise TraceError(f"unreadable header: {exc}") from None
        offset += header_len
        if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
            raise TraceError(f"wrong schema: {header.get('schema')!r}")
        if header.get("byteorder") != sys.byteorder:
            raise TraceError("foreign byte order")
        meta = header.get("meta")
        descriptors = header.get("columns")
        if not isinstance(meta, dict) or not isinstance(descriptors, list):
            raise TraceError("malformed header")
        if [(d.get("name"), d.get("type")) for d in descriptors] != list(
            _COLUMNS
        ):
            raise TraceError("unexpected column set")
        columns = {}
        for descriptor in descriptors:
            name = descriptor["name"]
            typecode = descriptor["type"]
            zlen = descriptor["zlen"]
            chunk = blob[offset : offset + zlen]
            if len(chunk) != zlen:
                raise TraceError(f"truncated column {name!r}")
            if hashlib.sha256(chunk).hexdigest() != descriptor["sha256"]:
                raise TraceError(f"checksum mismatch in column {name!r}")
            offset += zlen
            try:
                raw = zlib.decompress(chunk)
            except zlib.error as exc:
                raise TraceError(
                    f"undecompressable column {name!r}: {exc}"
                ) from None
            if typecode == "bits":
                column = _unpack_bits(raw, descriptor["count"])
            else:
                column = array(typecode)
                column.frombytes(raw)
            if len(column) != descriptor["count"]:
                raise TraceError(f"count mismatch in column {name!r}")
            columns[name] = column
        if len(columns["pcs"]) != meta.get("committed"):
            raise TraceError("committed count disagrees with pcs column")
        return cls(meta, **columns)


def _pack_bits(bits) -> bytes:
    """Pack a 0/1-per-byte column into 8 bits per byte (LSB first).
    Accepts a ``bytearray`` or an already-viewed uint8 ndarray."""
    flags = np.asarray(bits, dtype=np.uint8)
    return np.packbits(flags, bitorder="little").tobytes()


def _unpack_bits(raw: bytes, count: int) -> bytearray:
    if len(raw) != (count + 7) >> 3:
        raise TraceError("bit column length mismatch")
    packed = np.frombuffer(raw, dtype=np.uint8)
    flags = np.unpackbits(packed, count=count, bitorder="little")
    return bytearray(flags.tobytes())
