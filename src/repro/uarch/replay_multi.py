"""Sweep-fused multi-config replay: one trace pass scores K configs.

After the prep-slice work, every point of a width/ports/front-end
sweep already shares one fused kernel table (``prep_config_class``
deliberately excludes width, ports, front-end depth and bubbles) --
yet each point still burns its own serial walk of the fused action
codes.  This module collapses those K walks into **one fused pass**
over a run-length *region* view of the stream.

The trick is that the serial in-order kernel
(:func:`repro.uarch.replay_vec.replay_inorder_stats`) is translation
-invariant in time: shift every clock-coupled quantity (fetch cycle,
scoreboard entries, issue-ring stamps, miss-buffer deadlines) by a
constant and the deltas it produces are unchanged.  So the stream is
cut into *regions* at every front-end redirect, region contents are
interned (identical code stretches recur constantly in loop-heavy
traces), and each lane's clock-coupled state between regions is
*canonicalised relative to its own issue frontier*.  A lane entering
an already-seen ``(region content, entry scoreboard-source mask,
canonical state)`` replays the memoised transition -- an integer
dict hit -- instead of re-walking the region instruction by
instruction.  The memo key is exact, so every lane's accumulators are
**bit-identical** to the per-point kernel by construction; the golden
suite and the fused equivalence tests hold it there.

Lane layout: per-config serial state (issue frontier, width/port
counters, fetch state, gate ring, scoreboard, miss heap) lives in
per-lane slots; the shared region table, interned canonical states
and region stream are walked once, oldest region to newest, updating
every lane at each region boundary.  Per-lane memo tables key on
``state_id * n_sites + site_id`` -- one int -- because transition
deltas depend on the lane's width/port constants.

Fallback rules (the caller sees ``None`` and runs per-point):

* K == 1 -- nothing to fuse;
* any lane outside the vectorized path's own guards (degenerate
  width/ports/fetch buffer, unnameable live predictor, ineligible
  trace);
* lanes that do not share one fused kernel table (different cache
  geometry / BTB / RAS / predictor -- i.e. different prep slices);
* OOO cores (fusing the stamped-ring OOO kernel is future work).

Lane-divergence containment: the fused pass re-checks cheap per-lane
invariants (non-negative stall accumulators, the width bound
``cycles * width >= issued``) and raises
:class:`FusedLaneDivergence` on violation; the artifact store catches
it, falls back to per-point replay, and counts the degradation
(``fused_diverges``).  The ``fused_diverge`` fault kind corrupts one
seeded lane's accumulators right before validation to prove that
whole chain end to end.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .config import MachineConfig
from .stats import SimStats
from .trace import Trace
from . import replay_vec as rv


class FusedLaneDivergence(RuntimeError):
    """A fused lane's accumulators failed the sanity invariants; the
    caller must discard the fused pass and replay per-point."""


#: Fused action codes that redirect the front end: region boundaries.
#: (Mispredicted returns ``F_RET_MISP`` redirect too; ``F_NOP`` shares
#: the dispatch arm but never moves ``fetch_cycle``.)
_REDIRECTS = frozenset(
    {
        rv.F_JMP,
        rv.F_BR_TAKEN,
        rv.F_BR_TAKEN_MISSBTB,
        rv.F_BR_MISP,
        rv.F_RS_MISP,
        rv.F_CALL,
        rv.F_RET_OK,
        rv.F_RET_MISP,
        rv.F_PREDICT_TAKEN,
        rv.F_PREDICT_TAKEN_MISSBTB,
    }
)


# ------------------------------------------------------------ region table


def _build_regions(base: Dict, mem: Dict, kernel: Dict) -> Dict:
    """Cut the fused stream at every redirect, intern region contents
    and occurrence sites.

    Returns the shared (lane-independent) region table:

    * ``contents``   -- region id -> 7 column tuples (act, fetch_add,
      lat, fu, dest, src0, rest) for the region's instructions;
    * ``sites``      -- occurrence index -> site id, where a *site* is
      an interned ``(region id, entry scoreboard-source mask)`` pair:
      two occurrences share a site exactly when a lane entering them
      in the same canonical state must behave identically;
    * ``site_rids`` / ``site_masks`` -- site id -> components.

    The entry mask records which architectural registers were last
    written by a load at region entry (``reg_from_load``).  It is
    stream-determined -- ALU/CALL writes clear a bit, load writes set
    it -- hence shared by every lane, and stale scoreboard *times*
    never consult it (a ``reg_ready`` at or below the lane's issue
    frontier can never win the operand-ready max).
    """
    act = kernel["act"]
    lat = kernel["lat"]
    add = mem["fetch_add"]
    fu = base["fu_list"]
    dest = base["dest_list"]
    s0 = base["src0_list"]
    rest = base["rest_list"]
    n = len(act)

    cuts = [0]
    cuts_append = cuts.append
    redirects = _REDIRECTS
    for i, a in enumerate(act):
        if a in redirects:
            cuts_append(i + 1)
    if cuts[-1] != n:
        cuts_append(n)

    ALU = rv.F_ALU
    CALL = rv.F_CALL
    LD_HIT = rv.F_LD_HIT
    LD_MISS = rv.F_LD_MISS

    intern: Dict[tuple, int] = {}
    contents: List[tuple] = []
    site_intern: Dict[Tuple[int, int], int] = {}
    site_rids: List[int] = []
    site_masks: List[int] = []
    sites: List[int] = []
    mask = 0
    for s, e in zip(cuts[:-1], cuts[1:]):
        key = (
            tuple(act[s:e]),
            tuple(add[s:e]),
            tuple(lat[s:e]),
            tuple(fu[s:e]),
            tuple(dest[s:e]),
            tuple(s0[s:e]),
            tuple(rest[s:e]),
        )
        rid = intern.get(key)
        if rid is None:
            rid = len(contents)
            intern[key] = rid
            contents.append(key)
        site_key = (rid, mask)
        sid = site_intern.get(site_key)
        if sid is None:
            sid = len(site_rids)
            site_intern[site_key] = sid
            site_rids.append(rid)
            site_masks.append(mask)
        sites.append(sid)
        for i in range(s, e):
            a = act[i]
            if a == ALU or a == CALL:
                mask &= ~(1 << dest[i])
            elif a == LD_HIT or a == LD_MISS:
                mask |= 1 << dest[i]
    return {
        "contents": contents,
        "sites": sites,
        "site_rids": site_rids,
        "site_masks": site_masks,
    }


def _regions_for(prepared, trace: Trace):
    """The shared region table for one fused kernel, cached as its own
    prep layer (same key shape as the kernel layer it derives from)."""
    base, stream, mem, kernel, _ = prepared
    prep = trace._prep
    # Recover the kernel's cache key by identity: the kernels dict is
    # small (one entry per sweep class), so a linear scan is free and
    # avoids re-deriving the mode/geometry key here.
    for key, cached in prep.kernels.items():
        if cached is kernel:
            regions = prep.regions.get(key)
            if regions is None:
                regions = _build_regions(base, mem, kernel)
                prep.regions[key] = regions
            return regions
    # Kernel not cached on the trace (cannot happen via _prepare, which
    # always plants it) -- build unshared rather than fail.
    return _build_regions(base, mem, kernel)


# ----------------------------------------------- canonical state handling

# Lane state between regions is canonicalised relative to the lane's
# issue frontier ``pi`` (``prev_issue``): every absolute cycle in it
# becomes a delta, dead entries collapse to sentinels, and the result
# interns to a small integer id.  Canonical tuples:
#   (fetch_rel, fetch_slots, width_rel, port_rel, ring_rel,
#    actives, heap_rel)
# where ring entries at or below the fetch cycle clamp to the fetch
# delta (the gate test is strictly ``gate > fetch_cycle`` and the
# fetch cycle is monotone inside a region, so any such entry is
# equivalent), scoreboard entries at or below ``pi`` drop (they can
# never win the operand max), and heap entries at or below ``pi``
# drop (the kernel pops them before they are ever compared).


def _canon(state) -> tuple:
    fc, fs, pi, wt, wc, pts, pcs, rr, ring, rp, heap = state
    fb = len(ring)
    fcrel = fc - pi
    rel_ring = tuple(
        (ring[(rp + j) % fb] - pi)
        if ring[(rp + j) % fb] > fc
        else fcrel
        for j in range(fb)
    )
    actives = tuple(
        (i, rr[i] - pi) for i in range(65) if rr[i] > pi
    )
    h = tuple(sorted(x - pi for x in heap if x > pi))
    wrel = (0, wc) if wt == pi else (-1, 0)
    prel = tuple(
        (0, pcs[f]) if pts[f] == pi else (-1, 0) for f in (1, 2, 3)
    )
    return (fcrel, fs, wrel, prel, rel_ring, actives, h)


def _materialize(c: tuple, pi: int):
    fcrel, fs, wrel, prel, rel_ring, actives, h = c
    ring = [pi + r for r in rel_ring]
    rr = [0] * 65
    for i, rel in actives:
        rr[i] = pi + rel
    heap = [pi + x for x in h]
    wt = pi if wrel[0] == 0 else -1
    wc = wrel[1]
    pts = [-1, -1, -1, -1]
    pcs = [0, 0, 0, 0]
    for f in (1, 2, 3):
        if prel[f - 1][0] == 0:
            pts[f] = pi
            pcs[f] = prel[f - 1][1]
    return (pi + fcrel, fs, pi, wt, wc, pts, pcs, rr, ring, 0, heap)


def _step_region(content, entry_mask: int, state, consts):
    """Walk one region from a materialised absolute state: the exact
    per-instruction body of ``replay_vec.replay_inorder_stats``, with
    the stamped gate ring always consulted (its entries start at 0 and
    the gate test is strict, so an unfilled ring never gates).

    Returns ``(state', d_load_use, d_resolution, max_complete,
    halted)``.
    """
    width, port_caps, front_depth, fb, taken_bubble, miss_bubble, \
        mb_entries = consts
    fc, fs, pi, wt, wc, pts, pcs, rr, ring, rp, heap = state
    rfl = [(entry_mask >> i) & 1 for i in range(65)]
    lus = 0
    rst = 0
    maxc = -1
    halted = False
    heappush = heapq.heappush
    heappop = heapq.heappop
    ALU = rv.F_ALU
    LD_HIT = rv.F_LD_HIT
    ST_HIT = rv.F_ST_HIT
    JMP = rv.F_JMP
    BR_TAKEN = rv.F_BR_TAKEN
    BR_TAKEN_MISSBTB = rv.F_BR_TAKEN_MISSBTB
    BR_MISP = rv.F_BR_MISP
    RS_MISP = rv.F_RS_MISP
    LD_MISS = rv.F_LD_MISS
    ST_MISS = rv.F_ST_MISS
    CALL = rv.F_CALL
    RET_OK = rv.F_RET_OK
    NOP = rv.F_NOP
    PRED_NONE = rv.F_PREDICT_NONE
    PRED_TAKEN = rv.F_PREDICT_TAKEN
    PRED_TAKEN_MISSBTB = rv.F_PREDICT_TAKEN_MISSBTB

    for a, add, lat, fu, dest, s0, rest in zip(*content):
        if add:
            fc += add
            fs = 0
        if fs >= width:
            fc += 1
            fs = 0
        gate = ring[rp]
        if gate > fc:
            fc = gate
            fs = 0
        fs += 1

        if a >= PRED_NONE:
            if maxc < fc:
                maxc = fc
            if a == PRED_NONE:
                continue
            if a == PRED_TAKEN:
                fc += taken_bubble
                fs = 0
                continue
            if a == PRED_TAKEN_MISSBTB:
                fc += miss_bubble
                fs = 0
                continue
            halted = True
            break

        bt0 = fc + front_depth
        base_t = pi if pi > bt0 else bt0
        if rest:
            operand_ready = base_t
            wait_from_load = False
            ready = rr[s0]
            if ready > operand_ready:
                operand_ready = ready
                wait_from_load = rfl[s0]
            for reg in rest:
                ready = rr[reg]
                if ready > operand_ready:
                    operand_ready = ready
                    wait_from_load = rfl[reg]
            if wait_from_load and operand_ready > base_t:
                lus += operand_ready - base_t
        else:
            ready = rr[s0]
            if ready > base_t:
                operand_ready = ready
                if rfl[s0]:
                    lus += ready - base_t
            else:
                operand_ready = base_t

        issue = operand_ready
        if fu:
            pt = pts[fu]
            pc = pcs[fu]
            if (issue == wt and wc >= width) or (
                issue == pt and pc >= port_caps[fu]
            ):
                issue += 1
            if issue == wt:
                wc += 1
            else:
                wt = issue
                wc = 1
            if issue == pt:
                pcs[fu] = pc + 1
            else:
                pts[fu] = issue
                pcs[fu] = 1
        pi = issue
        ring[rp] = issue
        rp += 1
        if rp == fb:
            rp = 0

        complete = issue + lat

        if a == ALU:
            rr[dest] = complete
            rfl[dest] = False
        elif a == LD_HIT:
            rr[dest] = complete
            rfl[dest] = True
        elif a <= RS_MISP:
            if a == ST_HIT:
                complete = issue + 1
            elif a == JMP:
                fc += taken_bubble
                fs = 0
            else:
                wait = issue - bt0
                if wait > 0:
                    rst += wait
                if a == BR_TAKEN:
                    fc += taken_bubble
                    fs = 0
                elif a == BR_MISP or a == RS_MISP:
                    fc = complete + 1
                    fs = 0
                elif a == BR_TAKEN_MISSBTB:
                    fc += miss_bubble
                    fs = 0
        elif a == LD_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                complete = heap[0] + lat
            else:
                complete = issue + lat
            heappush(heap, complete)
            rr[dest] = complete
            rfl[dest] = True
        elif a == ST_MISS:
            while heap and heap[0] <= issue:
                heappop(heap)
            if len(heap) >= mb_entries:
                done = heap[0] + lat
            else:
                done = issue + lat
            heappush(heap, done)
            complete = issue + 1
        elif a == CALL:
            rr[dest] = complete
            rfl[dest] = False
            fc += taken_bubble
            fs = 0
        elif a == RET_OK:
            fc += taken_bubble
            fs = 0
        else:
            if a != NOP:
                fc = complete + 1
                fs = 0

        if complete > maxc:
            maxc = complete

    return (fc, fs, pi, wt, wc, pts, pcs, rr, ring, rp, heap), \
        lus, rst, maxc, halted


# ------------------------------------------------------------- fused pass


def _lane_consts(config: MachineConfig) -> tuple:
    return (
        config.width,
        (0, config.int_ports, config.mem_ports, config.fp_ports),
        config.front_end_stages,
        config.fetch_buffer_entries,
        config.taken_redirect_bubble,
        config.taken_redirect_bubble + config.btb_miss_bubble,
        config.hierarchy.miss_buffer_entries,
    )


def _validate_lanes(
    configs: Sequence[MachineConfig],
    lcs: List[int],
    luss: List[int],
    rsts: List[int],
    issued: int,
) -> None:
    """Cheap always-on lane invariants; violation means a lane's
    accumulators cannot be trusted and the fused pass is void."""
    for config, lc, lus, rst in zip(configs, lcs, luss, rsts):
        if lus < 0 or rst < 0 or lc < 0:
            raise FusedLaneDivergence(
                f"negative accumulator in fused lane "
                f"(width={config.width}): cycles-1={lc}, "
                f"load_use={lus}, resolution={rst}"
            )
        if (lc + 1) * config.width < issued:
            raise FusedLaneDivergence(
                f"fused lane (width={config.width}) reports "
                f"{lc + 1} cycles for {issued} issued instructions: "
                f"below the width bound"
            )


def replay_inorder_multi_stats(
    program,
    trace: Trace,
    configs: Sequence[MachineConfig],
    recorded: bool,
) -> Optional[List[SimStats]]:
    """One fused pass over ``trace`` scoring every config lane.

    Returns one :class:`SimStats` per config (bit-identical to
    ``replay_vec.replay_inorder_stats`` lane by lane), or ``None``
    when the sweep is not fusable -- the caller then replays
    per-point.  Raises :class:`FusedLaneDivergence` when a lane fails
    validation (or the ``fused_diverge`` fault fires).
    """
    k = len(configs)
    if k <= 1:
        return None
    for config in configs:
        if config.fetch_buffer_entries <= 0 or config.width <= 0:
            return None
        if min(config.int_ports, config.mem_ports, config.fp_ports) <= 0:
            return None
    prepared_all = [
        rv._prepare(program, trace, config, recorded, "inorder")
        for config in configs
    ]
    if any(p is None for p in prepared_all):
        return None
    kernel0 = prepared_all[0][3]
    if any(p[3] is not kernel0 for p in prepared_all[1:]):
        return None  # mismatched prep slices: not one shared kernel
    prepared = prepared_all[0]
    base, stream, mem, kernel, btb_misses = prepared
    regions = _regions_for(prepared, trace)

    contents = regions["contents"]
    sites = regions["sites"]
    site_rids = regions["site_rids"]
    site_masks = regions["site_masks"]
    n_sites = len(site_rids)

    state_ids: Dict[tuple, int] = {}
    states: List[tuple] = []

    def intern_state(c: tuple) -> int:
        cid = state_ids.get(c)
        if cid is None:
            cid = len(states)
            state_ids[c] = cid
            states.append(c)
        return cid

    consts = [_lane_consts(config) for config in configs]
    pis = [0] * k
    lcs = [0] * k
    luss = [0] * k
    rsts = [0] * k
    halts = [False] * k
    memos: List[Dict[int, tuple]] = [dict() for _ in range(k)]
    cids = [
        intern_state(
            (0, 0, (-1, 0), ((-1, 0),) * 3, (0,) * c[3], (), ())
        )
        for c in consts
    ]

    lane_range = range(k)
    for sid in sites:
        key_base = sid  # key = cid * n_sites + sid
        for li in lane_range:
            if halts[li]:
                continue
            memo = memos[li]
            cid = cids[li]
            key = cid * n_sites + key_base
            t = memo.get(key)
            if t is None:
                pi = pis[li]
                st = _materialize(states[cid], pi)
                st2, dlus, drst, maxc, halted = _step_region(
                    contents[site_rids[sid]],
                    site_masks[sid],
                    st,
                    consts[li],
                )
                pi2 = st2[2]
                ecid = intern_state(_canon(st2))
                memo[key] = (
                    pi2 - pi, maxc - pi, dlus, drst, ecid, halted,
                )
                pis[li] = pi2
                luss[li] += dlus
                rsts[li] += drst
                if maxc > lcs[li]:
                    lcs[li] = maxc
                cids[li] = ecid
                halts[li] = halted
            else:
                dpi, relmax, dlus, drst, ecid, halted = t
                pi = pis[li]
                pis[li] = pi + dpi
                luss[li] += dlus
                rsts[li] += drst
                m = pi + relmax
                if m > lcs[li]:
                    lcs[li] = m
                cids[li] = ecid
                halts[li] = halted
        if halts[0]:
            break

    if any(halts) != all(halts):
        raise FusedLaneDivergence(
            "fused lanes disagree on the halt position"
        )

    _maybe_inject_divergence(trace, k, lcs, luss)
    _validate_lanes(configs, lcs, luss, rsts, base["issued"])

    n = base["n"]
    return [
        SimStats.from_counts(
            cycles=lcs[li] + 1,
            committed=n,
            issued=base["issued"],
            fetched=n,
            loads=len(base["ld_pos"]),
            stores=len(base["st_pos"]),
            load_use_stall_cycles=luss[li],
            cond_branches=len(base["br_pos"]),
            cond_mispredicts=stream["cond_mispredicts"],
            taken_redirects=stream["taken_redirects_inorder"],
            btb_miss_bubbles=btb_misses,
            predicts=len(base["pr_pos"]),
            resolves=len(base["rs_pos"]),
            resolve_mispredicts=stream["resolve_mispredicts"],
            resolution_stall_cycles=rsts[li],
            hoisted_committed=base["hoisted"],
            speculative_loads=base["speculative_loads"],
            ras_mispredicts=stream["ras_mispredicts"],
            icache_misses=mem["icache_misses"],
            icache_misses_under_mispredict=mem["icache_under"],
            halted=base["halted"],
        )
        for li in lane_range
    ]


def _maybe_inject_divergence(
    trace: Trace, k: int, lcs: List[int], luss: List[int]
) -> None:
    """Apply the seeded ``fused_diverge`` fault: corrupt one lane's
    accumulators right before validation, so the detection + per-point
    fallback + manifest accounting chain is exercised end to end."""
    import os

    if not os.environ.get("REPRO_FAULT_INJECT"):
        return
    from ..experiments import faults

    label = f"{trace.meta.get('program', '?')}|K={k}"
    lane = faults.fuse_diverge_lane(label, k)
    if lane is not None:
        luss[lane] = -1 - luss[lane]
        lcs[lane] //= 2
