"""Cycle-level in-order superscalar timing model.

The model executes a program functionally *in fetch order* while computing,
per dynamic instruction, the cycle it fetches and the cycle it issues under
the machine constraints of Table 1:

* width-limited fetch groups, I-cache timing, a fetch buffer that bounds how
  far fetch runs ahead of issue;
* a 5-stage front end (a redirect costs that depth before the first
  correct-path instruction can issue);
* strictly in-order issue with per-cycle width and per-class FU-port limits
  (2x LD/ST, 2x INT, 4x FP) -- head-of-line blocking falls out naturally;
* operand readiness through a scoreboard with 1-cycle bypass;
* loads timed by the cache hierarchy (4-cycle L1 hit .. 140-cycle DRAM),
  with the dual LD/ST ports providing MLP.

Decomposed-branch semantics follow the paper exactly: a PREDICT is consumed
by the front end (it steers fetch and allocates a DBB entry but never
occupies an issue slot); the architecture then *commits* the predicted
path.  The RESOLVE issues like a branch, and on a mispredict redirects
fetch into the compiler's correction code and triggers the deferred
predictor update through the DBB.  Ordinary branches predict at fetch and
squash-and-redirect at execute on a mispredict.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..branchpred import BranchTargetBuffer, ReturnAddressStack
from ..core.dbb import DecomposedBranchBuffer
from ..isa import (
    FuClass,
    Instruction,
    Memory,
    Opcode,
    Program,
    branch_taken,
    resolve_diverts,
    wrap_int,
)
from .config import MachineConfig
from .stats import SimStats

Value = Union[int, float]

#: Bytes per instruction for I-cache addressing.
_INST_BYTES = 4
_LINE_SHIFT = 6  # 64-byte lines


class SimulationError(Exception):
    """Raised when a program misbehaves (runs off the end, bad opcode...)."""


@dataclass
class SimulationResult:
    """Architectural and timing outcome of one run."""

    stats: SimStats
    registers: List[Value]
    memory: Memory
    program: Program

    def register(self, index: int) -> Value:
        return self.registers[index]

    def memory_snapshot(self) -> Tuple[Tuple[int, Value], ...]:
        return self.memory.snapshot()

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class InOrderCore:
    """One in-order superscalar core built from a :class:`MachineConfig`."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()

    # The run loop is deliberately one long function: it is the hot path of
    # every experiment, and locals are markedly faster than attribute
    # lookups in CPython.
    def run(
        self,
        program: Program,
        max_instructions: int = 2_000_000,
        trace=None,
    ) -> SimulationResult:
        """Simulate ``program``.

        ``trace``, if given, is called as ``trace(pc, inst, fetch_cycle,
        issue_cycle, complete_cycle)`` for every back-end instruction --
        a debugging/visualisation hook (PREDICTs do not reach the back
        end and are not traced).
        """
        from ..memory import MemoryHierarchy

        config = self.config
        stats = SimStats()
        instructions = program.instructions
        program_len = len(instructions)

        regs: List[Value] = [0] * 64
        reg_ready = [0] * 64
        reg_from_load = [False] * 64
        memory = Memory()
        for address, value in program.data.items():
            memory.store(address, value)

        hierarchy = MemoryHierarchy(config.hierarchy)
        predictor = config.predictor_factory()
        btb = BranchTargetBuffer(config.btb_entries)
        ras = ReturnAddressStack(config.ras_entries)
        dbb = DecomposedBranchBuffer(config.dbb_entries)

        width = config.width
        front_depth = config.front_end_stages
        fetch_buffer = config.fetch_buffer_entries
        port_cap = {
            FuClass.INT: config.int_ports,
            FuClass.MEM: config.mem_ports,
            FuClass.FP: config.fp_ports,
        }

        issued_at: Dict[int, int] = {}
        port_at: Dict[FuClass, Dict[int, int]] = {
            FuClass.INT: {},
            FuClass.MEM: {},
            FuClass.FP: {},
        }

        fetch_cycle = 0
        fetch_slots = 0
        current_line = -1
        prev_issue = 0
        last_cycle = 0
        under_mispredict_window = False
        # Issue cycles of the last `fetch_buffer` back-end instructions;
        # when full, its head gates fetch (the buffer entry frees at issue).
        issue_ring = deque(maxlen=fetch_buffer)
        prune_mark = 0

        pc = 0
        committed = 0
        mem_limit = memory.limit

        while committed < max_instructions:
            if pc < 0 or pc >= program_len:
                raise SimulationError(
                    f"pc {pc} outside program of length {program_len}"
                )
            inst = instructions[pc]
            op = inst.opcode

            # ---------------- fetch timing ----------------
            byte_pc = pc << 2
            line = byte_pc >> _LINE_SHIFT
            if line != current_line:
                ready = hierarchy.access_inst(byte_pc, fetch_cycle)
                if ready > fetch_cycle:
                    stats.icache_misses += 1
                    if under_mispredict_window:
                        stats.icache_misses_under_mispredict += 1
                    fetch_cycle = ready
                    fetch_slots = 0
                under_mispredict_window = False
                current_line = line
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0
            if len(issue_ring) == fetch_buffer:
                # The fetch buffer is full until the instruction
                # `fetch_buffer` back has issued.
                gate = issue_ring[0]
                if gate > fetch_cycle:
                    fetch_cycle = gate
                    fetch_slots = 0
            fetch_time = fetch_cycle
            fetch_slots += 1
            stats.fetched += 1

            committed += 1
            stats.committed += 1
            if inst.hoisted:
                stats.hoisted_committed += 1

            # ---------------- PREDICT: front-end only ----------------
            if op is Opcode.PREDICT:
                stats.predicts += 1
                branch_id = inst.branch_id if inst.branch_id is not None else pc
                prediction = predictor.lookup(branch_id)
                dbb.insert(prediction, branch_id)
                if prediction.taken:
                    target = inst.target
                    if btb.lookup(pc) is None:
                        fetch_cycle = (
                            fetch_time
                            + config.taken_redirect_bubble
                            + config.btb_miss_bubble
                        )
                        stats.btb_miss_bubbles += 1
                        btb.insert(pc, target)
                    else:
                        fetch_cycle = fetch_time + config.taken_redirect_bubble
                    fetch_slots = 0
                    current_line = -1
                    stats.taken_redirects += 1
                    pc = target
                else:
                    pc += 1
                if last_cycle < fetch_time:
                    last_cycle = fetch_time
                continue

            if op is Opcode.HALT:
                stats.halted = True
                if last_cycle < fetch_time:
                    last_cycle = fetch_time
                break

            # ---------------- issue-slot computation ----------------
            base = fetch_time + front_depth
            if base < prev_issue:
                base = prev_issue
            operand_wait_from_load = 0
            operand_ready = base
            for reg in inst.srcs:
                ready = reg_ready[reg]
                if ready > operand_ready:
                    operand_ready = ready
                    operand_wait_from_load = reg_from_load[reg]
            if operand_wait_from_load and operand_ready > base:
                stats.load_use_stall_cycles += operand_ready - base

            fu = inst.fu_class
            t = operand_ready
            if fu is FuClass.NONE:  # NOP
                issue = t
            else:
                cap = port_cap[fu]
                ports = port_at[fu]
                while (
                    issued_at.get(t, 0) >= width or ports.get(t, 0) >= cap
                ):
                    t += 1
                issued_at[t] = issued_at.get(t, 0) + 1
                ports[t] = ports.get(t, 0) + 1
                issue = t
                stats.issued += 1
            prev_issue = issue
            issue_ring.append(issue)
            if (
                op is Opcode.BNZ
                or op is Opcode.BZ
                or op is Opcode.RESOLVE_NZ
                or op is Opcode.RESOLVE_Z
            ):
                # Total back-end queueing delay of the resolution point:
                # how long the branch sat past its earliest front-end
                # arrival before it could issue (the ASPCB numerator).
                wait = issue - (fetch_time + front_depth)
                if wait > 0:
                    stats.resolution_stall_cycles += wait

            # Periodically prune per-cycle tables (t only moves forward).
            if issue - prune_mark > 50_000:
                issued_at = {
                    c: n for c, n in issued_at.items() if c >= prev_issue
                }
                for key in port_at:
                    port_at[key] = {
                        c: n for c, n in port_at[key].items() if c >= prev_issue
                    }
                prune_mark = issue

            complete = issue + inst.latency
            next_pc = pc + 1

            # ---------------- execute ----------------
            if op is Opcode.LOAD:
                address = regs[inst.srcs[0]] + (inst.imm or 0)
                if inst.speculative and not (0 <= address < mem_limit):
                    memory.faults_suppressed += 1
                    value = 0
                    complete = issue + config.hierarchy.l1_latency
                else:
                    value = memory.load(address, speculative=inst.speculative)
                    complete = hierarchy.access_data(address << 3, issue)
                dest = inst.dest
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = True
                stats.loads += 1
                if inst.speculative:
                    stats.speculative_loads += 1
            elif op is Opcode.STORE:
                address = regs[inst.srcs[1]] + (inst.imm or 0)
                memory.store(address, regs[inst.srcs[0]])
                hierarchy.access_data(address << 3, issue)
                stats.stores += 1
                complete = issue + 1
            elif op is Opcode.BNZ or op is Opcode.BZ:
                stats.cond_branches += 1
                branch_id = inst.branch_id if inst.branch_id is not None else pc
                prediction = predictor.lookup(branch_id)
                taken = branch_taken(op, regs[inst.srcs[0]])
                predictor.update(prediction, taken)
                actual_target = inst.target if taken else next_pc
                if prediction.taken != taken:
                    stats.cond_mispredicts += 1
                    dbb.recover_tail(dbb.tail)
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    under_mispredict_window = True
                elif taken:
                    stats.taken_redirects += 1
                    if btb.lookup(pc) is None:
                        fetch_cycle = (
                            fetch_time
                            + config.taken_redirect_bubble
                            + config.btb_miss_bubble
                        )
                        stats.btb_miss_bubbles += 1
                        btb.insert(pc, inst.target)
                    else:
                        fetch_cycle = fetch_time + config.taken_redirect_bubble
                    fetch_slots = 0
                    current_line = -1
                next_pc = actual_target
            elif op is Opcode.RESOLVE_NZ or op is Opcode.RESOLVE_Z:
                stats.resolves += 1
                diverted = resolve_diverts(op, regs[inst.srcs[0]])
                actual_taken = (
                    (not inst.predicted_dir) if diverted else inst.predicted_dir
                )
                dbb.resolve(dbb.tail, actual_taken, predictor)
                if diverted:
                    stats.resolve_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    under_mispredict_window = True
                    next_pc = inst.target
            elif op is Opcode.JMP:
                stats.taken_redirects += 1
                fetch_cycle = fetch_time + config.taken_redirect_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = inst.target
            elif op is Opcode.CALL:
                regs[inst.dest] = pc + 1
                reg_ready[inst.dest] = complete
                reg_from_load[inst.dest] = False
                ras.push(pc + 1)
                stats.taken_redirects += 1
                fetch_cycle = fetch_time + config.taken_redirect_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = inst.target
            elif op is Opcode.RET:
                actual = regs[inst.srcs[0]]
                predicted = ras.pop()
                if predicted != actual:
                    stats.ras_mispredicts += 1
                    fetch_cycle = complete + 1
                    under_mispredict_window = True
                else:
                    stats.taken_redirects += 1
                    fetch_cycle = fetch_time + config.taken_redirect_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = actual
            elif op is Opcode.NOP:
                pass
            else:
                # Straight-line ALU / FP / compare / move.
                value = _evaluate(op, inst, regs)
                dest = inst.dest
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = False

            if complete > last_cycle:
                last_cycle = complete
            if trace is not None:
                trace(pc, inst, fetch_time, issue, complete)
            pc = next_pc

        stats.cycles = last_cycle + 1
        return SimulationResult(
            stats=stats,
            registers=list(regs),
            memory=memory,
            program=program,
        )


def _evaluate(op: Opcode, inst: Instruction, regs: List[Value]) -> Value:
    """Evaluate one ALU/FP/compare/move instruction."""
    srcs = inst.srcs
    a = regs[srcs[0]] if srcs else 0
    b = inst.imm if inst.imm is not None else (
        regs[srcs[1]] if len(srcs) > 1 else 0
    )
    if op is Opcode.ADD:
        return wrap_int(a + b) if isinstance(a, int) and isinstance(b, int) else a + b
    if op is Opcode.SUB:
        return wrap_int(a - b) if isinstance(a, int) and isinstance(b, int) else a - b
    if op is Opcode.MUL:
        return wrap_int(a * b) if isinstance(a, int) and isinstance(b, int) else a * b
    if op is Opcode.DIV:
        if b == 0:
            return 0
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            return wrap_int(quotient)
        return a / b
    if op is Opcode.AND:
        return wrap_int(int(a) & int(b))
    if op is Opcode.OR:
        return wrap_int(int(a) | int(b))
    if op is Opcode.XOR:
        return wrap_int(int(a) ^ int(b))
    if op is Opcode.SHL:
        return wrap_int(int(a) << (int(b) & 63))
    if op is Opcode.SHR:
        return wrap_int(int(a) >> (int(b) & 63))
    if op is Opcode.SEL:
        return regs[srcs[1]] if a else regs[srcs[2]]
    if op is Opcode.MOV:
        return a
    if op is Opcode.LI:
        return inst.imm if inst.imm is not None else 0
    if op is Opcode.FADD:
        return float(a) + float(b)
    if op is Opcode.FSUB:
        return float(a) - float(b)
    if op is Opcode.FMUL:
        return float(a) * float(b)
    if op is Opcode.FDIV:
        return float(a) / float(b) if b else 0.0
    if op is Opcode.CMP_EQ:
        return int(a == b)
    if op is Opcode.CMP_NE:
        return int(a != b)
    if op is Opcode.CMP_LT:
        return int(a < b)
    if op is Opcode.CMP_LE:
        return int(a <= b)
    if op is Opcode.CMP_GT:
        return int(a > b)
    if op is Opcode.CMP_GE:
        return int(a >= b)
    raise SimulationError(f"unhandled opcode {op}")
