"""Cycle-level in-order superscalar timing model.

The model executes a program functionally *in fetch order* while computing,
per dynamic instruction, the cycle it fetches and the cycle it issues under
the machine constraints of Table 1:

* width-limited fetch groups, I-cache timing, a fetch buffer that bounds how
  far fetch runs ahead of issue;
* a 5-stage front end (a redirect costs that depth before the first
  correct-path instruction can issue);
* strictly in-order issue with per-cycle width and per-class FU-port limits
  (2x LD/ST, 2x INT, 4x FP) -- head-of-line blocking falls out naturally;
* operand readiness through a scoreboard with 1-cycle bypass;
* loads timed by the cache hierarchy (4-cycle L1 hit .. 140-cycle DRAM),
  with the dual LD/ST ports providing MLP.

Decomposed-branch semantics follow the paper exactly: a PREDICT is consumed
by the front end (it steers fetch and allocates a DBB entry but never
occupies an issue slot); the architecture then *commits* the predicted
path.  The RESOLVE issues like a branch, and on a mispredict redirects
fetch into the compiler's correction code and triggers the deferred
predictor update through the DBB.  Ordinary branches predict at fetch and
squash-and-redirect at execute on a mispredict.

Performance: the run loop drives off the program's pre-decoded rows
(:mod:`repro.isa.decode`) -- flat tuples of ints, flags and bound
evaluator functions -- instead of ``Instruction`` dataclasses, dispatches
on an integer *kind* instead of ``is Opcode.X`` chains, and tracks
per-cycle issue/port occupancy in fixed-size stamped rings instead of
unbounded dicts.  Issue cycles are monotone in an in-order machine, so a
ring slot whose stamp does not match the probed cycle is provably dead
and reads as empty; this replaces the old 50k-entry periodic prune with
O(1) state.  The architectural and stats output is bit-identical to the
pre-decoded-free implementation (see ``tests/golden/``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..branchpred import BranchTargetBuffer, ReturnAddressStack
from ..core.dbb import DecomposedBranchBuffer
from ..isa import (
    Instruction,
    Memory,
    Opcode,
    Program,
)
from ..isa.decode import (
    K_BINOP,
    K_BRANCH,
    K_CALL,
    K_CONST,
    K_JMP,
    K_LOAD,
    K_NOP,
    K_PREDICT,
    K_RESOLVE,
    K_RET,
    K_SEL,
    K_STORE,
    evaluate_code,
    predecode,
)
from .config import MachineConfig
from .stats import SimStats

Value = Union[int, float]

#: Bytes per instruction for I-cache addressing.
_INST_BYTES = 4
_LINE_SHIFT = 6  # 64-byte lines

#: Stamped-ring size for the per-cycle issue/port occupancy tables.  Any
#: power of two works (stamps disambiguate aliased cycles; in-order issue
#: makes entries below the current issue cycle dead), sized generously so
#: a ring slot is rarely recycled within one scheduling burst.
_RING = 4096
_RING_MASK = _RING - 1


class SimulationError(Exception):
    """Raised when a program misbehaves (runs off the end, bad opcode...)."""


@dataclass
class SimulationResult:
    """Architectural and timing outcome of one run."""

    stats: SimStats
    registers: List[Value]
    memory: Memory
    program: Program

    def register(self, index: int) -> Value:
        return self.registers[index]

    def memory_snapshot(self) -> Tuple[Tuple[int, Value], ...]:
        return self.memory.snapshot()

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class InOrderCore:
    """One in-order superscalar core built from a :class:`MachineConfig`."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()

    # The run loop is deliberately one long function: it is the hot path of
    # every experiment, and locals are markedly faster than attribute
    # lookups in CPython.
    def run(
        self,
        program: Program,
        max_instructions: int = 2_000_000,
        trace=None,
        capture=None,
    ) -> SimulationResult:
        """Simulate ``program``.

        ``trace``, if given, is called as ``trace(pc, inst, fetch_cycle,
        issue_cycle, complete_cycle)`` for every back-end instruction --
        a debugging/visualisation hook (PREDICTs do not reach the back
        end and are not traced).

        ``capture``, if given, is a :class:`repro.uarch.trace.TraceCapture`
        that records the committed instruction stream (pcs, branch
        outcomes, load/store addresses...) for later trace replay; it
        never changes the simulated result.
        """
        from ..memory import MemoryHierarchy

        config = self.config
        stats = SimStats()
        decoded = predecode(program)
        rows = decoded.rows
        program_len = decoded.length
        instructions = program.instructions  # only for the trace hook

        regs: List[Value] = [0] * 64
        reg_ready = [0] * 64
        reg_from_load = [False] * 64
        memory = Memory()
        for address, value in program.data.items():
            memory.store(address, value)

        hierarchy = MemoryHierarchy(config.hierarchy)
        predictor = config.predictor_factory()
        btb = BranchTargetBuffer(config.btb_entries)
        ras = ReturnAddressStack(config.ras_entries)
        dbb = DecomposedBranchBuffer(config.dbb_entries)

        # Bound methods as locals: every one of these is called per
        # dynamic instruction or branch.
        access_inst = hierarchy.access_inst
        access_data = hierarchy.access_data
        predictor_lookup = predictor.lookup
        predictor_update = predictor.update
        btb_lookup = btb.lookup
        btb_insert = btb.insert
        dbb_insert = dbb.insert
        dbb_resolve = dbb.resolve
        dbb_recover_tail = dbb.recover_tail
        ras_push = ras.push
        ras_pop = ras.pop
        mem_load = memory.load
        mem_store = memory.store
        mem_spec_load = memory.load_speculative

        width = config.width
        front_depth = config.front_end_stages
        fetch_buffer = config.fetch_buffer_entries
        l1_latency = config.hierarchy.l1_latency
        taken_bubble = config.taken_redirect_bubble
        btb_bubble = config.btb_miss_bubble
        port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)

        # Per-cycle occupancy over the scheduling horizon: stamped rings
        # indexed by ``cycle & _RING_MASK``; a mismatched stamp reads as
        # an empty cycle (see the module docstring for why this is exact).
        issued_cnt = [0] * _RING
        issued_stamp = [-1] * _RING
        port_cnt = (None, [0] * _RING, [0] * _RING, [0] * _RING)
        port_stamp = (None, [-1] * _RING, [-1] * _RING, [-1] * _RING)

        # Capture appends as pre-bound locals; ``cap_pc`` doubles as the
        # is-capturing flag so the disabled case costs one None test per
        # committed instruction.
        if capture is not None:
            cap_pc = capture.pcs.append
            cap_branch_pred = capture.branch_pred.append
            cap_branch_taken = capture.branch_taken.append
            cap_predict_taken = capture.predict_taken.append
            cap_resolve_diverted = capture.resolve_diverted.append
            cap_load_addr = capture.load_addrs.append
            cap_load_suppressed = capture.load_suppressed.append
            cap_store_addr = capture.store_addrs.append
            cap_ret_target = capture.ret_targets.append
        else:
            cap_pc = None

        fetch_cycle = 0
        fetch_slots = 0
        current_line = -1
        prev_issue = 0
        last_cycle = 0
        under_mispredict_window = False
        # Issue cycles of the last `fetch_buffer` back-end instructions;
        # when full, its head gates fetch (the buffer entry frees at issue).
        issue_ring = deque(maxlen=fetch_buffer)

        # Stats counters as locals; folded into `stats` once at the end.
        fetched = 0
        committed = 0
        hoisted_committed = 0
        issued = 0
        loads = 0
        stores = 0
        load_use_stall_cycles = 0
        cond_branches = 0
        cond_mispredicts = 0
        taken_redirects = 0
        btb_miss_bubbles = 0
        predicts = 0
        resolves = 0
        resolve_mispredicts = 0
        resolution_stall_cycles = 0
        speculative_loads = 0
        ras_mispredicts = 0
        icache_misses = 0
        icache_misses_under_mispredict = 0
        halted = False

        pc = 0

        while committed < max_instructions:
            if pc < 0 or pc >= program_len:
                raise SimulationError(
                    f"pc {pc} outside program of length {program_len}"
                )
            row = rows[pc]
            kind = row[0]

            # ---------------- fetch timing ----------------
            byte_pc = pc << 2
            line = byte_pc >> _LINE_SHIFT
            if line != current_line:
                ready = access_inst(byte_pc, fetch_cycle)
                if ready > fetch_cycle:
                    icache_misses += 1
                    if under_mispredict_window:
                        icache_misses_under_mispredict += 1
                    fetch_cycle = ready
                    fetch_slots = 0
                under_mispredict_window = False
                current_line = line
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0
            if len(issue_ring) == fetch_buffer:
                # The fetch buffer is full until the instruction
                # `fetch_buffer` back has issued.
                gate = issue_ring[0]
                if gate > fetch_cycle:
                    fetch_cycle = gate
                    fetch_slots = 0
            fetch_time = fetch_cycle
            fetch_slots += 1
            fetched += 1

            committed += 1
            if cap_pc is not None:
                cap_pc(pc)
            if row[10]:  # hoisted
                hoisted_committed += 1

            # ------------- front-end-only kinds (PREDICT / HALT) -------
            if kind >= K_PREDICT:
                if kind == K_PREDICT:
                    predicts += 1
                    branch_id = row[6]
                    prediction = predictor_lookup(branch_id)
                    dbb_insert(prediction, branch_id)
                    if cap_pc is not None:
                        cap_predict_taken(1 if prediction.taken else 0)
                    if prediction.taken:
                        target = row[5]
                        if btb_lookup(pc) is None:
                            fetch_cycle = (
                                fetch_time + taken_bubble + btb_bubble
                            )
                            btb_miss_bubbles += 1
                            btb_insert(pc, target)
                        else:
                            fetch_cycle = fetch_time + taken_bubble
                        fetch_slots = 0
                        current_line = -1
                        taken_redirects += 1
                        pc = target
                    else:
                        pc += 1
                    if last_cycle < fetch_time:
                        last_cycle = fetch_time
                    continue
                # HALT
                halted = True
                if last_cycle < fetch_time:
                    last_cycle = fetch_time
                break

            # ---------------- issue-slot computation ----------------
            base = fetch_time + front_depth
            if base < prev_issue:
                base = prev_issue
            operand_wait_from_load = False
            operand_ready = base
            for reg in row[2]:
                ready = reg_ready[reg]
                if ready > operand_ready:
                    operand_ready = ready
                    operand_wait_from_load = reg_from_load[reg]
            if operand_wait_from_load and operand_ready > base:
                load_use_stall_cycles += operand_ready - base

            fu = row[8]
            t = operand_ready
            if fu == 0:  # FU_NONE: NOP
                issue = t
            else:
                cap = port_caps[fu]
                pcnt = port_cnt[fu]
                pstamp = port_stamp[fu]
                while True:
                    slot = t & _RING_MASK
                    have = issued_cnt[slot] if issued_stamp[slot] == t else 0
                    if have >= width:
                        t += 1
                        continue
                    used = pcnt[slot] if pstamp[slot] == t else 0
                    if used >= cap:
                        t += 1
                        continue
                    break
                issued_stamp[slot] = t
                issued_cnt[slot] = have + 1
                pstamp[slot] = t
                pcnt[slot] = used + 1
                issue = t
                issued += 1
            prev_issue = issue
            issue_ring.append(issue)
            if kind == K_BRANCH or kind == K_RESOLVE:
                # Total back-end queueing delay of the resolution point:
                # how long the branch sat past its earliest front-end
                # arrival before it could issue (the ASPCB numerator).
                wait = issue - (fetch_time + front_depth)
                if wait > 0:
                    resolution_stall_cycles += wait

            complete = issue + row[7]
            next_pc = pc + 1

            # ---------------- execute ----------------
            if kind == K_BINOP:
                b_reg = row[4]
                value = row[12](
                    regs[row[2][0]], row[3] if b_reg < 0 else regs[b_reg]
                )
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = False
            elif kind == K_LOAD:
                address = regs[row[4]] + row[3]
                if row[9]:  # speculative: faults are suppressed
                    value, suppressed = mem_spec_load(address)
                    if suppressed:
                        complete = issue + l1_latency
                    else:
                        complete = access_data(address << 3, issue)
                    speculative_loads += 1
                    if cap_pc is not None:
                        cap_load_addr(address)
                        cap_load_suppressed(1 if suppressed else 0)
                else:
                    value = mem_load(address)
                    complete = access_data(address << 3, issue)
                    if cap_pc is not None:
                        cap_load_addr(address)
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = True
                loads += 1
            elif kind == K_BRANCH:
                cond_branches += 1
                branch_id = row[6]
                prediction = predictor_lookup(branch_id)
                taken = (regs[row[4]] != 0) == row[12]
                predictor_update(prediction, taken)
                if cap_pc is not None:
                    cap_branch_pred(1 if prediction.taken else 0)
                    cap_branch_taken(1 if taken else 0)
                actual_target = row[5] if taken else next_pc
                if prediction.taken != taken:
                    cond_mispredicts += 1
                    dbb_recover_tail(dbb.tail)
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    under_mispredict_window = True
                elif taken:
                    taken_redirects += 1
                    if btb_lookup(pc) is None:
                        fetch_cycle = (
                            fetch_time + taken_bubble + btb_bubble
                        )
                        btb_miss_bubbles += 1
                        btb_insert(pc, row[5])
                    else:
                        fetch_cycle = fetch_time + taken_bubble
                    fetch_slots = 0
                    current_line = -1
                next_pc = actual_target
            elif kind == K_STORE:
                address = regs[row[4]] + row[3]
                mem_store(address, regs[row[2][0]])
                access_data(address << 3, issue)
                stores += 1
                complete = issue + 1
                if cap_pc is not None:
                    cap_store_addr(address)
            elif kind == K_CONST:
                dest = row[1]
                regs[dest] = row[3]
                reg_ready[dest] = complete
                reg_from_load[dest] = False
            elif kind == K_SEL:
                srcs = row[2]
                value = regs[srcs[1]] if regs[srcs[0]] else regs[srcs[2]]
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = False
            elif kind == K_RESOLVE:
                resolves += 1
                diverted = (regs[row[4]] != 0) == row[12]
                if cap_pc is not None:
                    cap_resolve_diverted(1 if diverted else 0)
                predicted_dir = row[11]
                actual_taken = (
                    (not predicted_dir) if diverted else predicted_dir
                )
                dbb_resolve(dbb.tail, actual_taken, predictor)
                if diverted:
                    resolve_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    under_mispredict_window = True
                    next_pc = row[5]
            elif kind == K_JMP:
                taken_redirects += 1
                fetch_cycle = fetch_time + taken_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = row[5]
            elif kind == K_CALL:
                dest = row[1]
                regs[dest] = pc + 1
                reg_ready[dest] = complete
                reg_from_load[dest] = False
                ras_push(pc + 1)
                taken_redirects += 1
                fetch_cycle = fetch_time + taken_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = row[5]
            elif kind == K_RET:
                actual = regs[row[4]]
                if cap_pc is not None:
                    cap_ret_target(actual)
                predicted = ras_pop()
                if predicted != actual:
                    ras_mispredicts += 1
                    fetch_cycle = complete + 1
                    under_mispredict_window = True
                else:
                    taken_redirects += 1
                    fetch_cycle = fetch_time + taken_bubble
                fetch_slots = 0
                current_line = -1
                next_pc = actual
            elif kind == K_NOP:
                pass
            else:  # K_EVAL_GEN: degenerate ALU shapes
                value = _evaluate_row(row, regs)
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
                reg_from_load[dest] = False

            if complete > last_cycle:
                last_cycle = complete
            if trace is not None:
                trace(pc, instructions[pc], fetch_time, issue, complete)
            pc = next_pc

        stats.cycles = last_cycle + 1
        stats.fetched = fetched
        stats.committed = committed
        stats.hoisted_committed = hoisted_committed
        stats.issued = issued
        stats.loads = loads
        stats.stores = stores
        stats.load_use_stall_cycles = load_use_stall_cycles
        stats.cond_branches = cond_branches
        stats.cond_mispredicts = cond_mispredicts
        stats.taken_redirects = taken_redirects
        stats.btb_miss_bubbles = btb_miss_bubbles
        stats.predicts = predicts
        stats.resolves = resolves
        stats.resolve_mispredicts = resolve_mispredicts
        stats.resolution_stall_cycles = resolution_stall_cycles
        stats.speculative_loads = speculative_loads
        stats.ras_mispredicts = ras_mispredicts
        stats.icache_misses = icache_misses
        stats.icache_misses_under_mispredict = (
            icache_misses_under_mispredict
        )
        stats.halted = halted
        return SimulationResult(
            stats=stats,
            registers=list(regs),
            memory=memory,
            program=program,
        )


def _evaluate_row(row, regs: List[Value]) -> Value:
    """Evaluate a K_EVAL_GEN row (opcode carried in the fn slot)."""
    try:
        return evaluate_code(row[12], row[2], row[3], regs)
    except KeyError:
        raise SimulationError(f"unhandled opcode {row[12]}") from None


def _evaluate(op: Opcode, inst: Instruction, regs: List[Value]) -> Value:
    """Evaluate one ALU/FP/compare/move instruction.

    Kept as the generic (non-pre-decoded) evaluation entry point; the
    dispatch itself now lives in :mod:`repro.isa.decode` so the fast
    paths and this helper cannot drift apart.
    """
    try:
        return evaluate_code(op, inst.srcs, inst.imm, regs)
    except KeyError:
        raise SimulationError(f"unhandled opcode {op}") from None
