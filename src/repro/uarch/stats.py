"""Per-run statistics collected by the simulator.

These feed every column of Table 2 and the side-effect analyses of
Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Counters for one simulation."""

    cycles: int = 0
    #: Instructions architecturally committed (includes wrong-path work the
    #: transformation commits and later corrects -- that is the design).
    committed: int = 0
    #: Instructions that consumed a back-end issue slot (excludes PREDICT,
    #: which is dropped at decode, and NOPs).
    issued: int = 0
    fetched: int = 0

    loads: int = 0
    stores: int = 0
    load_use_stall_cycles: int = 0

    cond_branches: int = 0
    cond_mispredicts: int = 0
    taken_redirects: int = 0
    btb_miss_bubbles: int = 0

    predicts: int = 0
    resolves: int = 0
    resolve_mispredicts: int = 0
    #: Stall cycles attributable to waiting for a branch/resolve condition
    #: operand (the ASPCB numerator).
    resolution_stall_cycles: int = 0
    #: Committed instructions carrying the ``hoisted`` mark (PDIH numerator).
    hoisted_committed: int = 0
    speculative_loads: int = 0

    ras_mispredicts: int = 0

    icache_misses: int = 0
    icache_misses_under_mispredict: int = 0

    halted: bool = False
    by_opcode: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def mppki(self) -> float:
        """Branch mispredictions per thousand committed instructions."""
        if not self.committed:
            return 0.0
        mispredicts = self.cond_mispredicts + self.resolve_mispredicts
        return 1000.0 * mispredicts / self.committed

    @property
    def branch_accuracy(self) -> float:
        total = self.cond_branches + self.resolves
        if not total:
            return 1.0
        wrong = self.cond_mispredicts + self.resolve_mispredicts
        return 1.0 - wrong / total

    @property
    def aspcb(self) -> float:
        """Average stall cycles per (converted or convertible) branch."""
        denom = self.resolves if self.resolves else self.cond_branches
        if not denom:
            return 0.0
        return self.resolution_stall_cycles / denom

    def count_opcode(self, name: str) -> None:
        self.by_opcode[name] = self.by_opcode.get(name, 0) + 1

    @classmethod
    def from_counts(cls, **counts) -> "SimStats":
        """Build a stats object from keyword totals.

        The vectorized replay kernels (:mod:`repro.uarch.replay_vec`)
        derive most counters array-at-a-time instead of incrementing
        them per instruction; this materialises their totals with
        unnamed fields left at the dataclass defaults."""
        return cls(**counts)
