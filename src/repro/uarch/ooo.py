"""Out-of-order reference core.

The paper's motivation (Section 1, citing the authors' ASPLOS'13 study) is
that control speculation already lets *out-of-order* machines schedule
around predictable branches dynamically -- the decomposed branch
transformation exists because in-order machines cannot.  This model makes
that premise testable: a window-based OOO core over the same ISA, caches
and predictors, on which the transformation should yield ~nothing.

Model: instructions enter a ROB-like window in fetch order and issue when
their operands are ready and a port is free -- no in-order issue
constraint; the window size and commit width bound how far execution runs
ahead.  Branches still predict at fetch and squash-and-redirect at
execute.  This is deliberately idealised (perfect renaming, no issue-queue
capacity separate from the window): it over-approximates a real OOO, which
only *strengthens* the motivation result.

The run loop shares the in-order core's fast-path machinery: pre-decoded
rows (:mod:`repro.isa.decode`), integer-kind dispatch, local stats
counters, and stamped occupancy rings instead of unbounded per-cycle
dicts.  OOO issue is not monotone, so the rings are sized well past the
completion run-ahead the 64-entry window permits.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..core.dbb import DecomposedBranchBuffer
from ..isa import Memory, Program
from ..isa.decode import (
    K_BINOP,
    K_BRANCH,
    K_CALL,
    K_CONST,
    K_JMP,
    K_LOAD,
    K_NOP,
    K_PREDICT,
    K_RESOLVE,
    K_RET,
    K_SEL,
    K_STORE,
    predecode,
)
from .config import MachineConfig
from .core import SimulationError, SimulationResult, _evaluate_row
from .stats import SimStats

Value = Union[int, float]

_LINE_SHIFT = 6

#: Occupancy-ring size.  OOO issue cycles are not monotone, so stale ring
#: slots are only provably dead when the completion-gated window keeps the
#: live issue-cycle span far below the ring size; 64 in-flight
#: instructions cannot spread issue over anything near 2^16 cycles.
_RING = 65536
_RING_MASK = _RING - 1


class OutOfOrderCore:
    """A window-based OOO core sharing the in-order core's front end."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        window: int = 64,
    ) -> None:
        self.config = config or MachineConfig()
        self.window = window

    def run(
        self,
        program: Program,
        max_instructions: int = 2_000_000,
    ) -> SimulationResult:
        from ..branchpred import BranchTargetBuffer, ReturnAddressStack
        from ..memory import MemoryHierarchy

        config = self.config
        stats = SimStats()
        decoded = predecode(program)
        rows = decoded.rows
        program_len = decoded.length
        window = self.window

        regs: List[Value] = [0] * 64
        reg_ready = [0] * 64
        memory = Memory()
        for address, value in program.data.items():
            memory.store(address, value)

        hierarchy = MemoryHierarchy(config.hierarchy)
        predictor = config.predictor_factory()
        btb = BranchTargetBuffer(config.btb_entries)
        ras = ReturnAddressStack(config.ras_entries)
        dbb = DecomposedBranchBuffer(config.dbb_entries)

        access_inst = hierarchy.access_inst
        access_data = hierarchy.access_data
        predictor_lookup = predictor.lookup
        predictor_update = predictor.update
        btb_lookup = btb.lookup
        btb_insert = btb.insert
        dbb_insert = dbb.insert
        dbb_resolve = dbb.resolve
        ras_push = ras.push
        ras_pop = ras.pop
        mem_load = memory.load
        mem_store = memory.store
        mem_spec_load = memory.load_speculative

        width = config.width
        front_depth = config.front_end_stages
        l1_latency = config.hierarchy.l1_latency
        port_caps = (0, config.int_ports, config.mem_ports, config.fp_ports)

        issued_cnt = [0] * _RING
        issued_stamp = [-1] * _RING
        port_cnt = (None, [0] * _RING, [0] * _RING, [0] * _RING)
        port_stamp = (None, [-1] * _RING, [-1] * _RING, [-1] * _RING)

        fetch_cycle = 0
        fetch_slots = 0
        current_line = -1
        last_cycle = 0
        # Completion times of the youngest `window` instructions: entry to
        # the window stalls until the instruction `window` back completes
        # (a commit-bound ROB approximation).
        inflight: List[int] = []
        inflight_append = inflight.append

        fetched = 0
        committed = 0
        hoisted_committed = 0
        issued = 0
        loads = 0
        stores = 0
        cond_branches = 0
        cond_mispredicts = 0
        taken_redirects = 0
        predicts = 0
        resolves = 0
        resolve_mispredicts = 0
        resolution_stall_cycles = 0
        speculative_loads = 0
        ras_mispredicts = 0
        icache_misses = 0
        halted = False

        pc = 0

        while committed < max_instructions:
            if pc < 0 or pc >= program_len:
                raise SimulationError(
                    f"pc {pc} outside program of length {program_len}"
                )
            row = rows[pc]
            kind = row[0]

            # ---- fetch (same model as the in-order core) ----
            byte_pc = pc << 2
            line = byte_pc >> _LINE_SHIFT
            if line != current_line:
                ready = access_inst(byte_pc, fetch_cycle)
                if ready > fetch_cycle:
                    icache_misses += 1
                    fetch_cycle = ready
                    fetch_slots = 0
                current_line = line
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0
            inflight_len = len(inflight)
            if inflight_len >= window:
                gate = inflight[inflight_len - window]
                if gate > fetch_cycle:
                    fetch_cycle = gate
                    fetch_slots = 0
            fetch_time = fetch_cycle
            fetch_slots += 1
            fetched += 1
            committed += 1
            if row[10]:  # hoisted
                hoisted_committed += 1

            if kind >= K_PREDICT:
                if kind == K_PREDICT:
                    predicts += 1
                    branch_id = row[6]
                    prediction = predictor_lookup(branch_id)
                    dbb_insert(prediction, branch_id)
                    if prediction.taken:
                        if btb_lookup(pc) is None:
                            btb_insert(pc, row[5])
                            fetch_cycle = fetch_time + 2
                        else:
                            fetch_cycle = fetch_time + 1
                        fetch_slots = 0
                        current_line = -1
                        pc = row[5]
                    else:
                        pc += 1
                    continue
                # HALT
                halted = True
                break

            # ---- dataflow issue: operands + a free port, no ordering ----
            base = fetch_time + front_depth
            operand_ready = base
            for reg in row[2]:
                if reg_ready[reg] > operand_ready:
                    operand_ready = reg_ready[reg]

            fu = row[8]
            t = operand_ready
            if fu:
                cap = port_caps[fu]
                pcnt = port_cnt[fu]
                pstamp = port_stamp[fu]
                while True:
                    slot = t & _RING_MASK
                    have = issued_cnt[slot] if issued_stamp[slot] == t else 0
                    if have >= width:
                        t += 1
                        continue
                    used = pcnt[slot] if pstamp[slot] == t else 0
                    if used >= cap:
                        t += 1
                        continue
                    break
                issued_stamp[slot] = t
                issued_cnt[slot] = have + 1
                pstamp[slot] = t
                pcnt[slot] = used + 1
                issued += 1
            issue = t
            if kind == K_BRANCH or kind == K_RESOLVE:
                wait = issue - base
                if wait > 0:
                    resolution_stall_cycles += wait

            complete = issue + row[7]
            next_pc = pc + 1

            # ---- execute (architecturally identical to the in-order) ----
            if kind == K_BINOP:
                b_reg = row[4]
                value = row[12](
                    regs[row[2][0]], row[3] if b_reg < 0 else regs[b_reg]
                )
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
            elif kind == K_LOAD:
                address = regs[row[4]] + row[3]
                if row[9]:  # speculative
                    value, suppressed = mem_spec_load(address)
                    if suppressed:
                        complete = issue + l1_latency
                    else:
                        complete = access_data(address << 3, issue)
                    speculative_loads += 1
                else:
                    value = mem_load(address)
                    complete = access_data(address << 3, issue)
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
                loads += 1
            elif kind == K_BRANCH:
                cond_branches += 1
                branch_id = row[6]
                prediction = predictor_lookup(branch_id)
                taken = (regs[row[4]] != 0) == row[12]
                predictor_update(prediction, taken)
                if prediction.taken != taken:
                    cond_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                elif taken:
                    taken_redirects += 1
                    fetch_cycle = fetch_time + 1
                    fetch_slots = 0
                    current_line = -1
                next_pc = row[5] if taken else next_pc
            elif kind == K_STORE:
                address = regs[row[4]] + row[3]
                mem_store(address, regs[row[2][0]])
                access_data(address << 3, issue)
                stores += 1
                complete = issue + 1
            elif kind == K_CONST:
                dest = row[1]
                regs[dest] = row[3]
                reg_ready[dest] = complete
            elif kind == K_SEL:
                srcs = row[2]
                value = regs[srcs[1]] if regs[srcs[0]] else regs[srcs[2]]
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete
            elif kind == K_RESOLVE:
                resolves += 1
                diverted = (regs[row[4]] != 0) == row[12]
                predicted_dir = row[11]
                actual = (
                    (not predicted_dir) if diverted else predicted_dir
                )
                dbb_resolve(dbb.tail, actual, predictor)
                if diverted:
                    resolve_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    next_pc = row[5]
            elif kind == K_JMP:
                taken_redirects += 1
                fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = row[5]
            elif kind == K_CALL:
                dest = row[1]
                regs[dest] = pc + 1
                reg_ready[dest] = complete
                ras_push(pc + 1)
                fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = row[5]
            elif kind == K_RET:
                actual = regs[row[4]]
                predicted = ras_pop()
                if predicted != actual:
                    ras_mispredicts += 1
                    fetch_cycle = complete + 1
                else:
                    fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = actual
            elif kind == K_NOP:
                pass
            else:  # K_EVAL_GEN
                value = _evaluate_row(row, regs)
                dest = row[1]
                regs[dest] = value
                reg_ready[dest] = complete

            inflight_append(complete)
            if len(inflight) > 4 * window:
                inflight = inflight[-window:]
                inflight_append = inflight.append
            if complete > last_cycle:
                last_cycle = complete
            pc = next_pc

        stats.cycles = last_cycle + 1
        stats.fetched = fetched
        stats.committed = committed
        stats.hoisted_committed = hoisted_committed
        stats.issued = issued
        stats.loads = loads
        stats.stores = stores
        stats.cond_branches = cond_branches
        stats.cond_mispredicts = cond_mispredicts
        stats.taken_redirects = taken_redirects
        stats.predicts = predicts
        stats.resolves = resolves
        stats.resolve_mispredicts = resolve_mispredicts
        stats.resolution_stall_cycles = resolution_stall_cycles
        stats.speculative_loads = speculative_loads
        stats.ras_mispredicts = ras_mispredicts
        stats.icache_misses = icache_misses
        stats.halted = halted
        return SimulationResult(
            stats=stats,
            registers=list(regs),
            memory=memory,
            program=program,
        )
