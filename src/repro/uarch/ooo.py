"""Out-of-order reference core.

The paper's motivation (Section 1, citing the authors' ASPLOS'13 study) is
that control speculation already lets *out-of-order* machines schedule
around predictable branches dynamically -- the decomposed branch
transformation exists because in-order machines cannot.  This model makes
that premise testable: a window-based OOO core over the same ISA, caches
and predictors, on which the transformation should yield ~nothing.

Model: instructions enter a ROB-like window in fetch order and issue when
their operands are ready and a port is free -- no in-order issue
constraint; the window size and commit width bound how far execution runs
ahead.  Branches still predict at fetch and squash-and-redirect at
execute.  This is deliberately idealised (perfect renaming, no issue-queue
capacity separate from the window): it over-approximates a real OOO, which
only *strengthens* the motivation result.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Union

from ..core.dbb import DecomposedBranchBuffer
from ..isa import (
    FuClass,
    Memory,
    Opcode,
    Program,
    branch_taken,
    resolve_diverts,
)
from .config import MachineConfig
from .core import SimulationError, SimulationResult, _evaluate
from .stats import SimStats

Value = Union[int, float]

_LINE_SHIFT = 6


class OutOfOrderCore:
    """A window-based OOO core sharing the in-order core's front end."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        window: int = 64,
    ) -> None:
        self.config = config or MachineConfig()
        self.window = window

    def run(
        self,
        program: Program,
        max_instructions: int = 2_000_000,
    ) -> SimulationResult:
        from ..branchpred import BranchTargetBuffer, ReturnAddressStack
        from ..memory import MemoryHierarchy

        config = self.config
        stats = SimStats()
        instructions = program.instructions
        program_len = len(instructions)

        regs: List[Value] = [0] * 64
        reg_ready = [0] * 64
        memory = Memory()
        for address, value in program.data.items():
            memory.store(address, value)

        hierarchy = MemoryHierarchy(config.hierarchy)
        predictor = config.predictor_factory()
        btb = BranchTargetBuffer(config.btb_entries)
        ras = ReturnAddressStack(config.ras_entries)
        dbb = DecomposedBranchBuffer(config.dbb_entries)

        width = config.width
        front_depth = config.front_end_stages
        port_cap = {
            FuClass.INT: config.int_ports,
            FuClass.MEM: config.mem_ports,
            FuClass.FP: config.fp_ports,
        }
        port_at: Dict[FuClass, Dict[int, int]] = {
            FuClass.INT: {},
            FuClass.MEM: {},
            FuClass.FP: {},
        }
        issued_at: Dict[int, int] = {}

        fetch_cycle = 0
        fetch_slots = 0
        current_line = -1
        last_cycle = 0
        # Completion times of the youngest `window` instructions: entry to
        # the window stalls until the instruction `window` back completes
        # (a commit-bound ROB approximation).
        inflight: List[int] = []
        prune_floor = 0

        pc = 0
        committed = 0
        mem_limit = memory.limit

        while committed < max_instructions:
            if pc < 0 or pc >= program_len:
                raise SimulationError(
                    f"pc {pc} outside program of length {program_len}"
                )
            inst = instructions[pc]
            op = inst.opcode

            # ---- fetch (same model as the in-order core) ----
            byte_pc = pc << 2
            line = byte_pc >> _LINE_SHIFT
            if line != current_line:
                ready = hierarchy.access_inst(byte_pc, fetch_cycle)
                if ready > fetch_cycle:
                    stats.icache_misses += 1
                    fetch_cycle = ready
                    fetch_slots = 0
                current_line = line
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0
            if len(inflight) >= self.window:
                gate = inflight[len(inflight) - self.window]
                if gate > fetch_cycle:
                    fetch_cycle = gate
                    fetch_slots = 0
            fetch_time = fetch_cycle
            fetch_slots += 1
            stats.fetched += 1
            committed += 1
            stats.committed += 1
            if inst.hoisted:
                stats.hoisted_committed += 1

            if op is Opcode.PREDICT:
                stats.predicts += 1
                branch_id = inst.branch_id if inst.branch_id is not None else pc
                prediction = predictor.lookup(branch_id)
                dbb.insert(prediction, branch_id)
                if prediction.taken:
                    if btb.lookup(pc) is None:
                        btb.insert(pc, inst.target)
                        fetch_cycle = fetch_time + 2
                    else:
                        fetch_cycle = fetch_time + 1
                    fetch_slots = 0
                    current_line = -1
                    pc = inst.target
                else:
                    pc += 1
                continue

            if op is Opcode.HALT:
                stats.halted = True
                break

            # ---- dataflow issue: operands + a free port, no ordering ----
            base = fetch_time + front_depth
            operand_ready = base
            for reg in inst.srcs:
                if reg_ready[reg] > operand_ready:
                    operand_ready = reg_ready[reg]

            fu = inst.fu_class
            t = operand_ready
            if fu is not FuClass.NONE:
                cap = port_cap[fu]
                ports = port_at[fu]
                while issued_at.get(t, 0) >= width or ports.get(t, 0) >= cap:
                    t += 1
                issued_at[t] = issued_at.get(t, 0) + 1
                ports[t] = ports.get(t, 0) + 1
                stats.issued += 1
            issue = t
            if (
                op is Opcode.BNZ or op is Opcode.BZ
                or op is Opcode.RESOLVE_NZ or op is Opcode.RESOLVE_Z
            ):
                wait = issue - base
                if wait > 0:
                    stats.resolution_stall_cycles += wait

            if issue - prune_floor > 50_000:
                floor = min(issue, fetch_cycle)
                issued_at = {c: n for c, n in issued_at.items() if c >= floor}
                for key in port_at:
                    port_at[key] = {
                        c: n for c, n in port_at[key].items() if c >= floor
                    }
                prune_floor = issue

            complete = issue + inst.latency
            next_pc = pc + 1

            # ---- execute (architecturally identical to the in-order) ----
            if op is Opcode.LOAD:
                address = regs[inst.srcs[0]] + (inst.imm or 0)
                if inst.speculative and not (0 <= address < mem_limit):
                    memory.faults_suppressed += 1
                    value = 0
                    complete = issue + config.hierarchy.l1_latency
                else:
                    value = memory.load(address, speculative=inst.speculative)
                    complete = hierarchy.access_data(address << 3, issue)
                regs[inst.dest] = value
                reg_ready[inst.dest] = complete
                stats.loads += 1
                if inst.speculative:
                    stats.speculative_loads += 1
            elif op is Opcode.STORE:
                address = regs[inst.srcs[1]] + (inst.imm or 0)
                memory.store(address, regs[inst.srcs[0]])
                hierarchy.access_data(address << 3, issue)
                stats.stores += 1
                complete = issue + 1
            elif op is Opcode.BNZ or op is Opcode.BZ:
                stats.cond_branches += 1
                branch_id = inst.branch_id if inst.branch_id is not None else pc
                prediction = predictor.lookup(branch_id)
                taken = branch_taken(op, regs[inst.srcs[0]])
                predictor.update(prediction, taken)
                if prediction.taken != taken:
                    stats.cond_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                elif taken:
                    stats.taken_redirects += 1
                    fetch_cycle = fetch_time + 1
                    fetch_slots = 0
                    current_line = -1
                next_pc = inst.target if taken else next_pc
            elif op is Opcode.RESOLVE_NZ or op is Opcode.RESOLVE_Z:
                stats.resolves += 1
                diverted = resolve_diverts(op, regs[inst.srcs[0]])
                actual = (
                    (not inst.predicted_dir) if diverted else inst.predicted_dir
                )
                dbb.resolve(dbb.tail, actual, predictor)
                if diverted:
                    stats.resolve_mispredicts += 1
                    fetch_cycle = complete + 1
                    fetch_slots = 0
                    current_line = -1
                    next_pc = inst.target
            elif op is Opcode.JMP:
                stats.taken_redirects += 1
                fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = inst.target
            elif op is Opcode.CALL:
                regs[inst.dest] = pc + 1
                reg_ready[inst.dest] = complete
                ras.push(pc + 1)
                fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = inst.target
            elif op is Opcode.RET:
                actual = regs[inst.srcs[0]]
                predicted = ras.pop()
                if predicted != actual:
                    stats.ras_mispredicts += 1
                    fetch_cycle = complete + 1
                else:
                    fetch_cycle = fetch_time + 1
                fetch_slots = 0
                current_line = -1
                next_pc = actual
            elif op is Opcode.NOP:
                pass
            else:
                value = _evaluate(op, inst, regs)
                regs[inst.dest] = value
                reg_ready[inst.dest] = complete

            inflight.append(complete)
            if len(inflight) > 4 * self.window:
                inflight = inflight[-self.window :]
            if complete > last_cycle:
                last_cycle = complete
            pc = next_pc

        stats.cycles = last_cycle + 1
        return SimulationResult(
            stats=stats,
            registers=list(regs),
            memory=memory,
            program=program,
        )
