"""Independent verifier for decomposed functions.

The Decomposed Branch Transformation is the part of the system a DBT
vendor would least want to get wrong -- it speculatively *commits*
wrong-path work and repairs it later.  This module re-checks a transformed
function against structural invariants derived from Section 2.1/3, without
sharing code with the transformation itself:

* every PREDICT has exactly two RESOLVEs downstream, one per predicted
  path, with matching ``branch_id`` and complementary ``predicted_dir``;
* no PREDICT/RESOLVE is reordered or interleaved with another decomposed
  branch (the compiler contract the DBB's FIFO discipline relies on);
* hoisted loads above a RESOLVE are marked non-faulting;
* no store appears between a PREDICT and its RESOLVEs (stores must stay
  below the resolution point);
* every RESOLVE's divert target exists and eventually rejoins the
  confirmed path's control flow.

It also offers a differential check that executes original and transformed
programs under several prediction policies and compares final memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import Function, lower, successor_map
from ..isa import Opcode
from ..uarch import always_not_taken, always_taken, execute


@dataclass
class VerificationReport:
    """Outcome of verifying one transformed function."""

    errors: List[str] = field(default_factory=list)
    predicts_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def fail(self, message: str) -> None:
        self.errors.append(message)


def _resolves_reachable_from(
    func: Function, start: str, limit: int = 64
) -> List[Tuple[str, object]]:
    """RESOLVE terminators reachable from ``start`` without crossing
    another PREDICT or a RESOLVE (BFS over the CFG)."""
    succs = successor_map(func)
    seen: Set[str] = set()
    frontier = [start]
    found: List[Tuple[str, object]] = []
    while frontier and len(seen) < limit:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        block = func.block(name)
        term = block.terminator
        if term is not None and term.is_resolve:
            found.append((name, term))
            continue  # do not look past the resolution point
        if term is not None and term.is_predict:
            continue  # a nested decomposed branch guards its own paths
        frontier.extend(succs[name])
    return found


def verify_function(func: Function) -> VerificationReport:
    """Statically check the decomposed-branch invariants."""
    report = VerificationReport()
    for name, block in func.blocks.items():
        term = block.terminator
        if term is None or not term.is_predict:
            continue
        report.predicts_checked += 1
        prefix = f"predict in {name}"

        if term.branch_id is None:
            report.fail(f"{prefix}: missing branch_id")
            continue
        taken_entry = term.target
        fall_entry = block.fallthrough
        if not isinstance(taken_entry, str) or fall_entry is None:
            report.fail(f"{prefix}: missing a successor path")
            continue

        for entry, expected_dir in (
            (taken_entry, True),
            (fall_entry, False),
        ):
            resolves = _resolves_reachable_from(func, entry)
            if len(resolves) != 1:
                report.fail(
                    f"{prefix}: path via {entry} reaches "
                    f"{len(resolves)} resolves (want exactly 1)"
                )
                continue
            resolve_block, resolve = resolves[0]
            if resolve.branch_id != term.branch_id:
                report.fail(
                    f"{prefix}: resolve in {resolve_block} has branch_id "
                    f"{resolve.branch_id}, predict has {term.branch_id}"
                )
            if resolve.predicted_dir is not expected_dir:
                report.fail(
                    f"{prefix}: resolve in {resolve_block} marks "
                    f"predicted_dir={resolve.predicted_dir}, "
                    f"path implies {expected_dir}"
                )
            if not isinstance(resolve.target, str) or (
                resolve.target not in func.blocks
            ):
                report.fail(
                    f"{prefix}: resolve in {resolve_block} diverts to "
                    f"missing block {resolve.target!r}"
                )
            _check_speculative_region(func, entry, resolve_block, report,
                                      prefix)
    return report


def _check_speculative_region(
    func: Function,
    entry: str,
    resolve_block: str,
    report: VerificationReport,
    prefix: str,
) -> None:
    """Blocks between a PREDICT and its RESOLVE hold speculative work:
    loads must be non-faulting, stores must not appear at all."""
    succs = successor_map(func)
    seen: Set[str] = set()
    frontier = [entry]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        block = func.block(name)
        for inst in block.body:
            if inst.is_store:
                report.fail(
                    f"{prefix}: store above the resolution point in {name}"
                )
            if inst.is_load and inst.hoisted and not inst.speculative:
                report.fail(
                    f"{prefix}: hoisted load in {name} is not marked "
                    f"non-faulting"
                )
        if name == resolve_block:
            continue
        term = block.terminator
        if term is not None and (term.is_resolve or term.is_predict):
            continue
        frontier.extend(succs[name])


def verify_equivalence(
    original: Function,
    transformed: Function,
    policies: int = 3,
    seed: int = 0,
    max_instructions: int = 3_000_000,
) -> VerificationReport:
    """Differentially execute both functions; memory images must match
    under taken-biased, not-taken-biased, and random prediction."""
    report = VerificationReport()
    reference = execute(
        lower(original), max_instructions=max_instructions
    )
    if not reference.halted:
        report.fail("original did not halt within the instruction budget")
        return report
    expected = reference.memory_snapshot()

    program = lower(transformed)
    rng = random.Random(seed)
    chosen = [always_taken, always_not_taken,
              lambda _bid: rng.random() < 0.5][:policies]
    for index, policy in enumerate(chosen):
        result = execute(
            program, predict_policy=policy, max_instructions=max_instructions
        )
        if not result.halted:
            report.fail(f"policy {index}: transformed did not halt")
            continue
        if result.memory_snapshot() != expected:
            report.fail(f"policy {index}: architectural memory differs")
    return report


def verify(
    original: Function, transformed: Function
) -> VerificationReport:
    """Full verification: structural invariants + differential execution."""
    report = verify_function(transformed)
    if report.ok:
        diff = verify_equivalence(original, transformed)
        report.errors.extend(diff.errors)
    return report
