"""The Decomposed Branch Buffer (Section 4, Figure 7).

Because the PC of a PREDICT and the PC of its RESOLVE differ, the predictor
update triggered by the RESOLVE must be re-associated with the metadata
captured when the PREDICT was looked up.  The paper does this with a small
FIFO in the front end:

* On fetching a PREDICT, the tail pointer is advanced and the prediction
  plus predictor-update metadata (table indices, history) is written at the
  tail (Fig. 7a).
* A RESOLVE always corresponds to the most recent PREDICT in program order;
  it reads the tail pointer and carries that index down the pipe (Fig. 7b).
* When the RESOLVE executes, the entry's metadata drives the predictor
  update; on a mispredict, the re-steer path also uses it (Fig. 7c).

The paper sizes it at 16 entries (4-bit index, 24 bits per entry) and notes
that exceptional control flow may desynchronise predicts and resolves; one
remedy is to invalidate entries and suppress updates from invalid entries,
which :meth:`invalidate_all` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..branchpred import DirectionPredictor, Prediction


@dataclass
class DBBEntry:
    prediction: Prediction
    branch_id: int
    valid: bool = True


class DecomposedBranchBuffer:
    """Circular FIFO re-associating RESOLVE outcomes with PREDICT metadata."""

    def __init__(self, entries: int = 16) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._buffer: List[Optional[DBBEntry]] = [None] * entries
        self._tail = entries - 1
        self.inserts = 0
        self.updates = 0
        self.suppressed_updates = 0
        self.max_outstanding = 0
        self._outstanding = 0

    @property
    def tail(self) -> int:
        return self._tail

    def insert(self, prediction: Prediction, branch_id: int) -> int:
        """Record a PREDICT's metadata; returns the 4-bit DBB index that the
        matching RESOLVE will carry down the pipeline."""
        self._tail = (self._tail + 1) & (self.entries - 1)
        self._buffer[self._tail] = DBBEntry(
            prediction=prediction, branch_id=branch_id
        )
        self.inserts += 1
        self._outstanding += 1
        self.max_outstanding = max(self.max_outstanding, self._outstanding)
        return self._tail

    def read(self, index: int) -> Optional[DBBEntry]:
        return self._buffer[index & (self.entries - 1)]

    def resolve(
        self,
        index: int,
        actual_taken: bool,
        predictor: DirectionPredictor,
    ) -> bool:
        """Apply the deferred predictor update for entry ``index``.

        Returns True when the PREDICT's direction was correct.  Updates from
        invalidated or missing entries are suppressed (the paper's remedy
        for exceptional control flow).
        """
        entry = self._buffer[index & (self.entries - 1)]
        self._outstanding = max(self._outstanding - 1, 0)
        if entry is None or not entry.valid:
            self.suppressed_updates += 1
            return True
        predictor.update(entry.prediction, actual_taken)
        self.updates += 1
        return entry.prediction.taken == actual_taken

    def recover_tail(self, tail: int) -> None:
        """Restore the tail pointer after a non-decomposed branch
        misprediction (Section 4: 'the same mechanism used to recover branch
        history can be used for this purpose')."""
        self._tail = tail & (self.entries - 1)

    def invalidate_all(self) -> None:
        """Mark every entry invalid, e.g. on interrupt/exception/context
        switch, so stale entries cannot cause spurious predictor updates."""
        for entry in self._buffer:
            if entry is not None:
                entry.valid = False
        self._outstanding = 0
