"""The Decomposed Branch Transformation (Section 3, Figures 5 and 6).

Given a predictable-but-unbiased forward branch terminating block **A** with
successors **B** (fall-through / not-taken) and **C** (taken), the transform:

1. Replaces the branch with a ``PREDICT`` and creates two resolution blocks
   **BA'** (predicted not-taken path) and **CA'** (predicted taken path),
   each ending in a ``RESOLVE`` (Fig. 5b).
2. Pushes the branch-resolution slice of **A** (the compare and anything
   feeding only it) down into both resolution blocks (Fig. 5c).
3. Hoists the safely-speculable prefix of **B** into **BA'** and of **C**
   into **CA'**, marking hoisted loads non-faulting and renaming
   destinations that are live into the alternate path (or that the
   resolution slice needs) to speculation temporaries (Fig. 5d).
4. Adds correction blocks **Correct-B** / **Correct-C** that re-execute the
   alternate side's hoisted work on the architecturally-correct path and
   jump back into the main flow, and fix-up blocks that copy temporaries
   into their architected registers in the shadow of a confirming RESOLVE.

Correction blocks are appended at the end of the function, mirroring the
paper's observation that recovery code can live on separate pages so it
does not disturb I-cache behaviour.

The transformation is semantics-preserving for *any* prediction stream;
the property-based tests drive transformed programs down adversarial
predictions and assert architectural equivalence with the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa import FIRST_TEMP_REGISTER, Instruction, LINK_REGISTER, Opcode
from ..ir import (
    BasicBlock,
    Function,
    analyze_liveness,
    available_above,
    registers_referenced,
)
from .selection import Candidate

_ALL_REGS = frozenset(range(64))


@dataclass(frozen=True)
class TransformConfig:
    """Tuning knobs for the transformation."""

    #: Maximum instructions hoisted from each successor block.
    max_hoist_per_side: int = 12
    #: Whether to push the resolution slice of A down into the A' blocks.
    push_down_slice: bool = True


@dataclass
class BranchTransform:
    """What happened to one converted branch."""

    block: str
    branch_id: int
    pushed_down: int
    hoisted_not_taken: int
    hoisted_taken: int
    temps_used: int
    fixup_moves: int


@dataclass
class TransformReport:
    """Aggregate outcome over one function."""

    static_before: int = 0
    static_after: int = 0
    transforms: List[BranchTransform] = field(default_factory=list)

    @property
    def converted(self) -> int:
        return len(self.transforms)

    @property
    def pisc(self) -> float:
        """% increase in static code size (Table 2's PISCS)."""
        if not self.static_before:
            return 0.0
        return 100.0 * (self.static_after - self.static_before) / self.static_before

    @property
    def total_hoisted(self) -> int:
        return sum(
            t.hoisted_not_taken + t.hoisted_taken for t in self.transforms
        )


class TransformError(Exception):
    """Raised when a requested decomposition is structurally impossible."""


def _resolution_slice(
    body: Sequence[Instruction], cond_reg: int
) -> List[int]:
    """Indices of A-body instructions safely pushable into the A' blocks.

    We take the backward closure feeding only the condition, restricted to
    non-memory operations, and honour reordering constraints against the
    instructions that stay in A (a pushed instruction moves *after* every
    unpushed instruction that followed it).
    """
    needed: Set[int] = {cond_reg}
    unpushed_uses: Set[int] = set()
    unpushed_writes: Set[int] = set()
    pushed: List[int] = []
    for i in range(len(body) - 1, -1, -1):
        inst = body[i]
        dest = inst.dest
        can_push = (
            dest is not None
            and dest in needed
            and not inst.is_mem
            and dest not in unpushed_uses
            and dest not in unpushed_writes
            and all(src not in unpushed_writes for src in inst.srcs)
        )
        if can_push:
            pushed.append(i)
            needed.update(inst.srcs)
        else:
            unpushed_uses.update(inst.srcs)
            if dest is not None:
                unpushed_writes.add(dest)
    pushed.reverse()
    return pushed


def _rename_hoisted(
    body: Sequence[Instruction],
    hoist_indices: List[int],
    protected: Set[int],
    temp_pool: List[int],
) -> Tuple[List[Instruction], List[Instruction], Dict[int, int]]:
    """Produce the speculative copies of the hoisted instructions.

    Destinations in ``protected`` (live into the alternate path, or needed
    by the resolution slice / condition) are renamed to temporaries drawn
    from ``temp_pool``; fix-up MOVs restore the architected registers on
    the confirmed path.  Hoisting stops early if temporaries run out.

    Returns (hoisted copies, fix-up moves, rename map).
    """
    rename: Dict[int, int] = {}
    hoisted: List[Instruction] = []
    for i in hoist_indices:
        inst = body[i]
        # Sources map through the rename state *before* this instruction:
        # an instruction that reads and writes the same register (e.g. a
        # pointer-chase step ``load r, [r]``) must read the live-in value.
        new_srcs = tuple(rename.get(src, src) for src in inst.srcs)
        dest = inst.dest
        new_dest = dest
        if dest is not None and dest in protected:
            if dest not in rename:
                if not temp_pool:
                    break  # out of temps: hoist nothing further
                rename[dest] = temp_pool.pop()
            new_dest = rename[dest]
        hoisted.append(
            replace(
                inst,
                dest=new_dest,
                srcs=new_srcs,
                speculative=inst.speculative or inst.is_load,
                hoisted=True,
            )
        )
    fixups = [
        Instruction(opcode=Opcode.MOV, dest=orig, srcs=(temp,))
        for orig, temp in sorted(rename.items())
    ]
    return hoisted, fixups, rename


def _resolve_opcodes(branch_op: Opcode) -> Tuple[Opcode, Opcode]:
    """(opcode for the predicted-not-taken RESOLVE, for the predicted-taken
    RESOLVE) given the original branch opcode.

    On the not-taken path we divert when the branch would actually have
    been taken, and vice versa.
    """
    if branch_op is Opcode.BNZ:
        return Opcode.RESOLVE_NZ, Opcode.RESOLVE_Z
    if branch_op is Opcode.BZ:
        return Opcode.RESOLVE_Z, Opcode.RESOLVE_NZ
    raise TransformError(f"{branch_op} is not a decomposable branch")


def free_temp_registers(func: Function) -> List[int]:
    """Speculation temporaries not referenced anywhere in ``func``."""
    used = registers_referenced(func)
    return [
        reg
        for reg in range(FIRST_TEMP_REGISTER, LINK_REGISTER)
        if reg not in used
    ]


def decompose_branch(
    func: Function,
    block_name: str,
    config: TransformConfig = TransformConfig(),
    temp_pool: Optional[List[int]] = None,
) -> BranchTransform:
    """Apply the Decomposed Branch Transformation to one branch, in place."""
    block_a = func.block(block_name)
    branch = block_a.terminator
    if branch is None or not branch.is_cond_branch:
        raise TransformError(f"block {block_name} does not end in a branch")
    if not isinstance(branch.target, str) or block_a.fallthrough is None:
        raise TransformError(f"branch in {block_name} has no two-way targets")

    name_b = block_a.fallthrough  # not-taken successor
    name_c = branch.target  # taken successor
    if name_b == name_c or block_name in (name_b, name_c):
        raise TransformError(f"branch in {block_name} is not a diamond")
    block_b = func.block(name_b)
    block_c = func.block(name_c)

    cond_reg = branch.srcs[0]
    branch_id = branch.branch_id
    if branch_id is None:
        raise TransformError(f"branch in {block_name} has no branch_id")
    if temp_pool is None:
        temp_pool = free_temp_registers(func)

    liveness = analyze_liveness(func)

    # -- step 2: the resolution slice of A ------------------------------
    if config.push_down_slice:
        slice_indices = _resolution_slice(block_a.body, cond_reg)
    else:
        slice_indices = []
    slice_insts = [block_a.body[i] for i in slice_indices]
    slice_regs: Set[int] = {cond_reg}
    for inst in slice_insts:
        slice_regs.update(inst.srcs)
        if inst.dest is not None:
            slice_regs.add(inst.dest)

    # -- step 3: hoistable prefixes of B and C ---------------------------
    hoist_b = available_above(block_b.body, set(_ALL_REGS))
    hoist_b = hoist_b[: config.max_hoist_per_side]
    hoist_c = available_above(block_c.body, set(_ALL_REGS))
    hoist_c = hoist_c[: config.max_hoist_per_side]

    protected_b = set(slice_regs) | set(liveness.live_in[name_c])
    protected_c = set(slice_regs) | set(liveness.live_in[name_b])

    hoisted_b, fixups_b, rename_b = _rename_hoisted(
        block_b.body, hoist_b, protected_b, temp_pool
    )
    hoisted_c, fixups_c, rename_c = _rename_hoisted(
        block_c.body, hoist_c, protected_c, temp_pool
    )
    # _rename_hoisted may stop early on temp exhaustion.
    hoist_b = hoist_b[: len(hoisted_b)]
    hoist_c = hoist_c[: len(hoisted_c)]

    # -- block names ------------------------------------------------------
    name_ba = func.fresh_block_name(f"{block_name}.nt")
    name_ca = func.fresh_block_name(f"{block_name}.t")
    name_b_fix = func.fresh_block_name(f"{name_b}.fix") if fixups_b else None
    name_c_fix = func.fresh_block_name(f"{name_c}.fix") if fixups_c else None
    name_correct_c = (
        func.fresh_block_name(f"{block_name}.correct.t") if hoist_c else None
    )
    name_correct_b = (
        func.fresh_block_name(f"{block_name}.correct.nt") if hoist_b else None
    )

    resolve_nt_op, resolve_t_op = _resolve_opcodes(branch.opcode)

    # -- build BA' (predicted not taken) ----------------------------------
    ba = BasicBlock(name=name_ba)
    ba.body.extend(slice_insts)
    ba.body.extend(hoisted_b)
    ba.set_terminator(
        Instruction(
            opcode=resolve_nt_op,
            srcs=(cond_reg,),
            target=name_correct_c if name_correct_c else name_c,
            branch_id=branch_id,
            predicted_dir=False,
        ),
        fallthrough=name_b_fix if name_b_fix else name_b,
    )

    # -- build CA' (predicted taken) ---------------------------------------
    ca = BasicBlock(name=name_ca)
    ca.body.extend(slice_insts)
    ca.body.extend(hoisted_c)
    ca.set_terminator(
        Instruction(
            opcode=resolve_t_op,
            srcs=(cond_reg,),
            target=name_correct_b if name_correct_b else name_b,
            branch_id=branch_id,
            predicted_dir=True,
        ),
        fallthrough=name_c_fix if name_c_fix else name_c,
    )

    # -- rewrite A ----------------------------------------------------------
    slice_set = set(slice_indices)
    block_a.body = [
        inst for i, inst in enumerate(block_a.body) if i not in slice_set
    ]
    block_a.set_terminator(
        Instruction(
            opcode=Opcode.PREDICT, target=name_ca, branch_id=branch_id
        ),
        fallthrough=name_ba,
    )

    # -- trim the hoisted prefixes out of B and C ----------------------------
    hoist_b_set = set(hoist_b)
    hoist_c_set = set(hoist_c)
    original_b_prefix = [block_b.body[i] for i in hoist_b]
    original_c_prefix = [block_c.body[i] for i in hoist_c]
    block_b.body = [
        inst for i, inst in enumerate(block_b.body) if i not in hoist_b_set
    ]
    block_c.body = [
        inst for i, inst in enumerate(block_c.body) if i not in hoist_c_set
    ]

    # -- lay out the new blocks ----------------------------------------------
    func.add_block(ba, after=block_name)
    if name_b_fix:
        fix_b = BasicBlock(
            name=name_b_fix, body=list(fixups_b), fallthrough=name_b
        )
        func.add_block(fix_b, after=name_ba)

    layout = func.layout()
    before_c = layout[layout.index(name_c) - 1]
    func.add_block(ca, after=before_c)
    if name_c_fix:
        fix_c = BasicBlock(
            name=name_c_fix, body=list(fixups_c), fallthrough=name_c
        )
        func.add_block(fix_c, after=name_ca)

    # Correction blocks go at the end of the function, off the hot path
    # (the paper places recovery code on separate pages).
    tail = func.layout()[-1]
    if name_correct_c:
        correct_c = BasicBlock(name=name_correct_c, body=list(original_c_prefix))
        correct_c.set_terminator(
            Instruction(opcode=Opcode.JMP, target=name_c)
        )
        func.add_block(correct_c, after=tail)
        tail = name_correct_c
    if name_correct_b:
        correct_b = BasicBlock(name=name_correct_b, body=list(original_b_prefix))
        correct_b.set_terminator(
            Instruction(opcode=Opcode.JMP, target=name_b)
        )
        func.add_block(correct_b, after=tail)

    return BranchTransform(
        block=block_name,
        branch_id=branch_id,
        pushed_down=len(slice_insts),
        hoisted_not_taken=len(hoisted_b),
        hoisted_taken=len(hoisted_c),
        temps_used=len(rename_b) + len(rename_c),
        fixup_moves=len(fixups_b) + len(fixups_c),
    )


def transform_function(
    func: Function,
    candidates: Sequence[Candidate],
    config: TransformConfig = TransformConfig(),
) -> Tuple[Function, TransformReport]:
    """Decompose every candidate branch in a clone of ``func``."""
    worked = func.clone()
    report = TransformReport(static_before=func.static_instruction_count())
    base_pool = free_temp_registers(worked)
    for candidate in candidates:
        # Temporaries are live only between a resolution block and its
        # fix-up block, so the pool is reusable across branches.
        result = decompose_branch(
            worked, candidate.block, config, temp_pool=list(base_pool)
        )
        report.transforms.append(result)
    worked.validate()
    report.static_after = worked.static_instruction_count()
    return worked, report
