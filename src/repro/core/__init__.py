"""The paper's contribution: prediction/resolution branch decomposition.

* :mod:`repro.core.selection` -- the Figure 1 taxonomy and the
  profile-guided heuristic (predictability - bias >= 5%, forward branches).
* :mod:`repro.core.decompose` -- the Decomposed Branch Transformation
  (Section 3, Figures 5/6).
* :mod:`repro.core.dbb` -- the Decomposed Branch Buffer (Section 4,
  Figure 7) used by the front end to defer predictor updates.
"""

from .dbb import DBBEntry, DecomposedBranchBuffer
from .decompose import (
    BranchTransform,
    TransformConfig,
    TransformError,
    TransformReport,
    decompose_branch,
    free_temp_registers,
    transform_function,
)
from .verify import (
    VerificationReport,
    verify,
    verify_equivalence,
    verify_function,
)
from .selection import (
    BranchClass,
    Candidate,
    SelectionConfig,
    SelectionReport,
    classify_branch,
    select_candidates,
    select_predication_candidates,
)

__all__ = [
    "BranchClass",
    "BranchTransform",
    "Candidate",
    "DBBEntry",
    "DecomposedBranchBuffer",
    "SelectionConfig",
    "SelectionReport",
    "TransformConfig",
    "TransformError",
    "TransformReport",
    "VerificationReport",
    "classify_branch",
    "decompose_branch",
    "free_temp_registers",
    "select_candidates",
    "select_predication_candidates",
    "transform_function",
    "verify",
    "verify_equivalence",
    "verify_function",
]
