"""Profile-guided branch selection (Section 5) and the Figure 1 taxonomy.

The paper transforms *forward* conditional branches whose measured
predictability exceeds their bias by at least 5% ("this heuristic provided
the best overall performance").  Loop (backward) branches are excluded --
they are highly biased and ably handled by loop transformations
(footnote 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..branchpred import BranchStats
from ..ir import Function, is_forward_branch, predecessor_map


class BranchClass(enum.Enum):
    """Figure 1: transformation choice by bias x predictability."""

    SUPERBLOCK = "superblock"  # highly biased (predictable follows)
    DECOMPOSE = "decompose"  # low bias, high predictability: our contribution
    PREDICATE = "predicate"  # low bias, low predictability
    RARE = "rare"  # highly biased yet unpredictable: rarely occurs


@dataclass(frozen=True)
class SelectionConfig:
    """Knobs of the selection heuristic."""

    #: Minimum (predictability - bias) to convert; the paper's 5%.
    min_exposed_predictability: float = 0.05
    #: Branches at or above this bias go to superblock formation instead.
    superblock_bias: float = 0.90
    #: Predictability floor below which predication wins.
    min_predictability: float = 0.70
    #: Ignore sites with fewer profiled executions than this.
    min_executions: int = 32
    #: Only forward branches are eligible (paper footnote 1).
    require_forward: bool = True


def classify_branch(
    stats: BranchStats, config: SelectionConfig = SelectionConfig()
) -> BranchClass:
    """Place one branch in the Figure 1 quadrant."""
    if stats.bias >= config.superblock_bias:
        if stats.predictability >= config.min_predictability:
            return BranchClass.SUPERBLOCK
        return BranchClass.RARE
    if (
        stats.predictability >= config.min_predictability
        and stats.exposed_predictability >= config.min_exposed_predictability
    ):
        return BranchClass.DECOMPOSE
    return BranchClass.PREDICATE


@dataclass
class Candidate:
    """One branch chosen for decomposition."""

    block: str
    branch_id: int
    stats: BranchStats


@dataclass
class SelectionReport:
    candidates: List[Candidate] = field(default_factory=list)
    #: Static forward conditional branches examined.
    forward_branches: int = 0
    #: All static conditional branches examined.
    conditional_branches: int = 0

    @property
    def pbc(self) -> float:
        """% of static forward branches converted (Table 2's PBC)."""
        if not self.forward_branches:
            return 0.0
        return 100.0 * len(self.candidates) / self.forward_branches


def _structurally_eligible(func: Function, block_name: str) -> bool:
    """The transformation's CFG preconditions.

    Both successors must be distinct blocks whose only predecessor is the
    branch block, so that splitting off their hoistable prefixes cannot
    perturb other paths.
    """
    block = func.block(block_name)
    term = block.terminator
    if term is None or not term.is_cond_branch:
        return False
    taken = term.target
    fall = block.fallthrough
    if not isinstance(taken, str) or fall is None or taken == fall:
        return False
    if block_name in (taken, fall):
        return False
    preds = predecessor_map(func)
    return len(preds[taken]) == 1 and len(preds[fall]) == 1


def select_predication_candidates(
    func: Function,
    profile: Dict[int, BranchStats],
    config: SelectionConfig = SelectionConfig(),
) -> SelectionReport:
    """Figure 1's other quadrant: unbiased *unpredictable* branches, the
    ones predication (if-conversion) should treat."""
    report = SelectionReport()
    for name, block in func.blocks.items():
        term = block.terminator
        if term is None or not term.is_cond_branch:
            continue
        report.conditional_branches += 1
        if is_forward_branch(func, block):
            report.forward_branches += 1
        else:
            continue
        branch_id = term.branch_id
        if branch_id is None or branch_id not in profile:
            continue
        stats = profile[branch_id]
        if stats.executions < config.min_executions:
            continue
        if classify_branch(stats, config) is not BranchClass.PREDICATE:
            continue
        if not _structurally_eligible(func, name):
            continue
        report.candidates.append(
            Candidate(block=name, branch_id=branch_id, stats=stats)
        )
    return report


def select_candidates(
    func: Function,
    profile: Dict[int, BranchStats],
    config: SelectionConfig = SelectionConfig(),
) -> SelectionReport:
    """Apply the paper's heuristic to a profiled function."""
    report = SelectionReport()
    for name, block in func.blocks.items():
        term = block.terminator
        if term is None or not term.is_cond_branch:
            continue
        report.conditional_branches += 1
        forward = is_forward_branch(func, block)
        if forward:
            report.forward_branches += 1
        if config.require_forward and not forward:
            continue
        branch_id = term.branch_id
        if branch_id is None or branch_id not in profile:
            continue
        stats = profile[branch_id]
        if stats.executions < config.min_executions:
            continue
        if classify_branch(stats, config) is not BranchClass.DECOMPOSE:
            continue
        if not _structurally_eligible(func, name):
            continue
        report.candidates.append(
            Candidate(block=name, branch_id=branch_id, stats=stats)
        )
    return report
