"""Branch Vanguard reproduction (McFarlin & Zilles, ISCA 2015).

A full-system reproduction of "Branch Vanguard: Decomposing Branch
Functionality into Prediction and Resolution Instructions": a RISC-like ISA
extended with PREDICT/RESOLVE, a cycle-level in-order superscalar model, the
Decomposed Branch Transformation with profile-guided selection, the
Decomposed Branch Buffer, and synthetic SPEC-calibrated workloads that
regenerate every table and figure of the paper's evaluation.

Quick start::

    from repro import quick_comparison
    from repro.workloads import spec_benchmark

    workload = spec_benchmark("omnetpp")
    outcome = quick_comparison(workload.build(seed=1))
    print(f"speedup: {outcome.speedup_percent:.1f}%")
"""

from dataclasses import dataclass
from typing import Optional

from .compiler import compile_baseline, compile_decomposed
from .ir import Function
from .uarch import InOrderCore, MachineConfig, SimulationResult

__version__ = "1.0.0"


@dataclass
class ComparisonOutcome:
    """Baseline vs decomposed run of one workload on one machine."""

    baseline: SimulationResult
    decomposed: SimulationResult

    @property
    def speedup_percent(self) -> float:
        """Percentage cycle-count speedup of decomposed over baseline."""
        if not self.decomposed.cycles:
            return 0.0
        return 100.0 * (
            self.baseline.cycles / self.decomposed.cycles - 1.0
        )


def quick_comparison(
    func: Function,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 500_000,
) -> ComparisonOutcome:
    """Compile ``func`` both ways and simulate both on the same machine."""
    config = config or MachineConfig.paper_default()
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)
    return ComparisonOutcome(
        baseline=InOrderCore(config).run(
            baseline.program, max_instructions=max_instructions
        ),
        decomposed=InOrderCore(config).run(
            decomposed.program, max_instructions=max_instructions
        ),
    )


__all__ = [
    "ComparisonOutcome",
    "InOrderCore",
    "MachineConfig",
    "SimulationResult",
    "compile_baseline",
    "compile_decomposed",
    "quick_comparison",
    "__version__",
]
