"""Instruction set architecture for the Branch Vanguard reproduction.

Public surface: :class:`Instruction`, :class:`Opcode`, :class:`Program`,
:class:`RegisterFile`, :class:`Memory`, and the helpers used by the
simulator to evaluate control flow.
"""

from .instructions import (
    FuClass,
    INSTRUCTION_BYTES,
    Instruction,
    LATENCY,
    Opcode,
    branch_taken,
    resolve_diverts,
)
from .asmtext import AsmSyntaxError, program_to_text, text_to_program
from .memory import Memory, MemoryFault, WORD_BYTES
from .program import AssemblyError, Program, assemble
from .registers import (
    FIRST_TEMP_REGISTER,
    LINK_REGISTER,
    NUM_REGISTERS,
    RegisterFile,
    wrap_int,
)

__all__ = [
    "AsmSyntaxError",
    "AssemblyError",
    "FIRST_TEMP_REGISTER",
    "FuClass",
    "INSTRUCTION_BYTES",
    "Instruction",
    "LATENCY",
    "LINK_REGISTER",
    "Memory",
    "MemoryFault",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "RegisterFile",
    "WORD_BYTES",
    "assemble",
    "program_to_text",
    "text_to_program",
    "branch_taken",
    "resolve_diverts",
    "wrap_int",
]
