"""Architected register file.

The paper's DBT substrate exposes "additional registers to hold speculative
values" (Section 2.2, item 3).  We model 64 general registers; by convention
the workload generator keeps a contiguous high range free so that the
Decomposed Branch Transformation always has temporaries available without
spilling.
"""

from __future__ import annotations

from typing import Iterable, List, Union

#: Total architected registers.
NUM_REGISTERS = 64

#: Registers >= this index are reserved as speculation temporaries for the
#: transformation (the paper's "additional registers", Section 2.2).
FIRST_TEMP_REGISTER = 48

#: Link register used by CALL/RET.
LINK_REGISTER = NUM_REGISTERS - 1

Value = Union[int, float]

_INT_MASK = (1 << 64) - 1


def wrap_int(value: int) -> int:
    """Wrap an integer to signed 64-bit two's-complement range."""
    value &= _INT_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class RegisterFile:
    """A flat file of ``NUM_REGISTERS`` values, zero-initialised."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: List[Value] = [0] * NUM_REGISTERS

    def read(self, index: int) -> Value:
        return self._regs[index]

    def write(self, index: int, value: Value) -> None:
        if isinstance(value, int):
            value = wrap_int(value)
        self._regs[index] = value

    def snapshot(self) -> List[Value]:
        """A copy of the full register state, for differential testing."""
        return list(self._regs)

    def load_many(self, values: Iterable[Value]) -> None:
        for index, value in enumerate(values):
            self.write(index, value)

    def __len__(self) -> int:
        return NUM_REGISTERS
