"""Program container: a linear instruction sequence with resolved labels.

The IR assembler (:mod:`repro.ir.lower`) produces these.  A :class:`Program`
also carries its initial data segment so that a run is fully reproducible
from the object alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .instructions import INSTRUCTION_BYTES, Instruction

Value = Union[int, float]


class AssemblyError(Exception):
    """Raised when labels cannot be resolved."""


@dataclass
class Program:
    """An executable program for the simulator.

    ``instructions`` have integer ``target`` fields (PC indices).
    ``labels`` maps label name -> PC for diagnostics and disassembly.
    ``data`` maps word address -> initial value for the data segment.
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, Value] = field(default_factory=dict)
    name: str = "program"

    @property
    def static_size_bytes(self) -> int:
        """Static code size; feeds the PISCS column of Table 2."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def __len__(self) -> int:
        return len(self.instructions)

    def label_at(self, pc: int) -> Optional[str]:
        for name, addr in self.labels.items():
            if addr == pc:
                return name
        return None

    def disassemble(self, start: int = 0, count: Optional[int] = None) -> str:
        """Human-readable listing, used by the examples."""
        end = len(self.instructions) if count is None else start + count
        lines = []
        addr_to_label = {addr: name for name, addr in self.labels.items()}
        for pc in range(start, min(end, len(self.instructions))):
            label = addr_to_label.get(pc)
            if label is not None:
                lines.append(f"{label}:")
            inst = self.instructions[pc]
            text = str(inst)
            if isinstance(inst.target, int) and inst.target in addr_to_label:
                text = text.replace(
                    f"-> {inst.target}", f"-> {addr_to_label[inst.target]}"
                )
            lines.append(f"  {pc:5d}  {text}")
        return "\n".join(lines)


def assemble(
    instructions: Sequence[Instruction],
    labels: Dict[str, int],
    data: Optional[Dict[int, Value]] = None,
    name: str = "program",
) -> Program:
    """Resolve string targets against ``labels`` and build a Program."""
    resolved: List[Instruction] = []
    for pc, inst in enumerate(instructions):
        if isinstance(inst.target, str):
            if inst.target not in labels:
                raise AssemblyError(
                    f"undefined label {inst.target!r} at pc {pc}"
                )
            inst = inst.with_target(labels[inst.target])
        resolved.append(inst)
    return Program(
        instructions=resolved,
        labels=dict(labels),
        data=dict(data or {}),
        name=name,
    )
