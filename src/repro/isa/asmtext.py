"""Textual assembly: print and parse programs.

A small, line-oriented format so programs can be saved, diffed, and
hand-edited -- the artifact a DBT vendor's tooling would dump when
debugging the translator.  Round-trips everything the ISA expresses,
including the decomposed-branch annotations::

    # directives
    .data 4096 7            ; one word of the data segment
    label:
        add r1, r2, #5
        load+ r3, [r4+16]    ; '+' = non-faulting (speculative)
        predict taken_path, b3
        resolve_nz r5, fixup, b3, pT

Grammar notes: destinations and sources are ``rN``; immediates are
``#value``; loads/stores use ``[rBASE+OFFSET]``; ``bN`` is a branch id;
``pT``/``pNT`` is a resolve's predicted direction; a trailing ``!`` marks
a hoisted instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .instructions import Instruction, Opcode
from .program import Program, assemble

Value = Union[int, float]


class AsmSyntaxError(Exception):
    """Raised on malformed assembly text."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


# ---------------------------------------------------------------- printing


def _format_operand_list(inst: Instruction) -> str:
    parts: List[str] = []
    if inst.opcode is Opcode.LOAD:
        parts.append(f"r{inst.dest}")
        parts.append(f"[r{inst.srcs[0]}+{inst.imm or 0}]")
    elif inst.opcode is Opcode.STORE:
        parts.append(f"r{inst.srcs[0]}")
        parts.append(f"[r{inst.srcs[1]}+{inst.imm or 0}]")
    else:
        if inst.dest is not None:
            parts.append(f"r{inst.dest}")
        parts.extend(f"r{src}" for src in inst.srcs)
        if inst.imm is not None:
            parts.append(f"#{inst.imm}")
    if inst.target is not None:
        parts.append(str(inst.target))
    if inst.branch_id is not None:
        parts.append(f"b{inst.branch_id}")
    if inst.predicted_dir is not None:
        parts.append("pT" if inst.predicted_dir else "pNT")
    return ", ".join(parts)


def program_to_text(program: Program) -> str:
    """Serialise ``program`` (labels, code, data) to assembly text."""
    lines: List[str] = [f"; program: {program.name}"]
    for address in sorted(program.data):
        lines.append(f".data {address} {program.data[address]}")
    labels_at: Dict[int, List[str]] = {}
    for name, pc in program.labels.items():
        labels_at.setdefault(pc, []).append(name)
    for pc, inst in enumerate(program.instructions):
        for name in sorted(labels_at.get(pc, [])):
            lines.append(f"{name}:")
        mnemonic = inst.opcode.name.lower()
        if inst.is_load and inst.speculative:
            mnemonic += "+"
        suffix = " !" if inst.hoisted else ""
        operands = _format_operand_list(inst)
        body = f"    {mnemonic} {operands}".rstrip()
        lines.append(body + suffix)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- parsing

_MNEMONICS = {op.name.lower(): op for op in Opcode}


def _parse_operand(token: str, line_number: int):
    token = token.strip()
    if token.startswith("r") and token[1:].isdigit():
        return ("reg", int(token[1:]))
    if token.startswith("#"):
        text = token[1:]
        try:
            return ("imm", float(text) if "." in text else int(text))
        except ValueError:
            raise AsmSyntaxError(line_number, f"bad immediate {token!r}")
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1]
        if "+" in inner:
            base_text, offset_text = inner.split("+", 1)
        else:
            base_text, offset_text = inner, "0"
        if not (base_text.startswith("r") and base_text[1:].isdigit()):
            raise AsmSyntaxError(line_number, f"bad address {token!r}")
        try:
            offset = int(offset_text)
        except ValueError:
            raise AsmSyntaxError(line_number, f"bad offset {token!r}")
        return ("mem", (int(base_text[1:]), offset))
    if token.startswith("b") and token[1:].isdigit():
        return ("branch_id", int(token[1:]))
    if token in ("pT", "pNT"):
        return ("pdir", token == "pT")
    return ("label", token)


def _build_instruction(
    opcode: Opcode,
    operands,
    speculative: bool,
    hoisted: bool,
    line_number: int,
) -> Instruction:
    dest: Optional[int] = None
    srcs: List[int] = []
    imm: Optional[Value] = None
    target = None
    branch_id = None
    predicted_dir = None
    mem: Optional[Tuple[int, int]] = None

    for kind, value in operands:
        if kind == "reg":
            srcs.append(value)
        elif kind == "imm":
            imm = value
        elif kind == "mem":
            mem = value
        elif kind == "branch_id":
            branch_id = value
        elif kind == "pdir":
            predicted_dir = value
        elif kind == "label":
            target = value

    if opcode is Opcode.LOAD:
        if mem is None or len(srcs) != 1:
            raise AsmSyntaxError(line_number, "load needs rD, [rB+OFF]")
        return Instruction(
            opcode=opcode, dest=srcs[0], srcs=(mem[0],), imm=mem[1],
            speculative=speculative, hoisted=hoisted,
        )
    if opcode is Opcode.STORE:
        if mem is None or len(srcs) != 1:
            raise AsmSyntaxError(line_number, "store needs rV, [rB+OFF]")
        return Instruction(
            opcode=opcode, srcs=(srcs[0], mem[0]), imm=mem[1],
            hoisted=hoisted,
        )

    writes_dest = opcode not in (
        Opcode.BNZ, Opcode.BZ, Opcode.JMP, Opcode.RET,
        Opcode.RESOLVE_NZ, Opcode.RESOLVE_Z, Opcode.PREDICT,
        Opcode.NOP, Opcode.HALT, Opcode.STORE,
    )
    if writes_dest and srcs:
        dest = srcs.pop(0)
    return Instruction(
        opcode=opcode, dest=dest, srcs=tuple(srcs), imm=imm, target=target,
        branch_id=branch_id, predicted_dir=predicted_dir,
        speculative=speculative, hoisted=hoisted,
    )


def text_to_program(text: str, name: str = "program") -> Program:
    """Parse assembly text back into an executable :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    data: Dict[int, Value] = {}

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".data"):
            parts = line.split()
            if len(parts) != 3:
                raise AsmSyntaxError(line_number, ".data needs ADDR VALUE")
            value_text = parts[2]
            value = (
                float(value_text) if "." in value_text else int(value_text)
            )
            data[int(parts[1])] = value
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label:
                raise AsmSyntaxError(line_number, "empty label")
            if label in labels:
                raise AsmSyntaxError(line_number, f"duplicate label {label}")
            labels[label] = len(instructions)
            continue

        hoisted = line.endswith("!")
        if hoisted:
            line = line[:-1].rstrip()
        mnemonic, _, rest = line.partition(" ")
        speculative = mnemonic.endswith("+")
        if speculative:
            mnemonic = mnemonic[:-1]
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AsmSyntaxError(line_number, f"unknown mnemonic {mnemonic!r}")
        operands = [
            _parse_operand(token, line_number)
            for token in rest.split(",")
            if token.strip()
        ]
        instructions.append(
            _build_instruction(opcode, operands, speculative, hoisted,
                               line_number)
        )

    # Numeric labels in text form parse as "label" strings like "12"; keep
    # direct integer targets working by converting digit-only labels that
    # match no defined label.
    fixed: List[Instruction] = []
    for inst in instructions:
        target = inst.target
        if isinstance(target, str) and target.isdigit() and target not in labels:
            inst = inst.with_target(int(target))
        fixed.append(inst)
    return assemble(fixed, labels, data=data, name=name)
