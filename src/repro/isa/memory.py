"""Functional data memory.

Word-addressed sparse memory.  The timing side (caches, latencies) lives in
:mod:`repro.memory`; this class only provides architectural load/store
semantics, including the non-faulting behaviour that speculative loads rely
on (Section 2.2: "non-faulting or deferred-faulting load instructions").
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

Value = Union[int, float]

#: Bytes per data word, used to convert word addresses into byte addresses
#: for the cache models.
WORD_BYTES = 8


class MemoryFault(Exception):
    """Raised by a *non-speculative* access to an invalid address."""


class Memory:
    """Sparse word-addressed memory with a configurable valid range.

    Addresses in ``[0, limit)`` are valid; anything else faults unless the
    access is speculative, in which case the load returns 0 with the fault
    suppressed (the behaviour the transformation depends on when hoisting
    loads above a resolution point).
    """

    __slots__ = ("_words", "limit", "faults_suppressed")

    def __init__(self, limit: int = 1 << 24) -> None:
        self._words: Dict[int, Value] = {}
        self.limit = limit
        #: Count of faults suppressed on speculative loads (observability).
        self.faults_suppressed = 0

    def _check(self, address: int) -> bool:
        return 0 <= address < self.limit

    def load(self, address: int, speculative: bool = False) -> Value:
        if speculative:
            return self.load_speculative(address)[0]
        if not self._check(address):
            raise MemoryFault(f"load from invalid address {address:#x}")
        return self._words.get(address, 0)

    def load_speculative(self, address: int) -> Tuple[Value, bool]:
        """Non-faulting load: ``(value, suppressed)``.

        This is the *single* home of the out-of-range suppression
        semantics (zero value, ``faults_suppressed`` bump) so that the
        simulators' hoisted-load paths and :meth:`load` cannot drift.
        The flag lets timing models charge a suppressed access the L1
        latency instead of consulting the cache hierarchy.
        """
        if 0 <= address < self.limit:
            return self._words.get(address, 0), False
        self.faults_suppressed += 1
        return 0, True

    def store(self, address: int, value: Value) -> None:
        if not self._check(address):
            raise MemoryFault(f"store to invalid address {address:#x}")
        self._words[address] = value

    def load_block(self, base: int, values: Iterable[Value]) -> None:
        """Initialise consecutive words starting at ``base``."""
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    @classmethod
    def from_snapshot(
        cls, pairs: Iterable[Tuple[int, Value]], faults_suppressed: int = 0
    ) -> "Memory":
        """Rebuild a memory from :meth:`snapshot`-shaped pairs.

        The pairs come from a previously validated run (a trace's final
        state), so this skips the per-word bounds check of
        :meth:`store` and bulk-loads at C speed -- snapshots can hold
        hundreds of thousands of words.
        """
        memory = cls()
        memory._words.update(pairs)
        memory.faults_suppressed = faults_suppressed
        return memory

    def snapshot(self) -> Tuple[Tuple[int, Value], ...]:
        """Sorted (address, value) pairs with zero entries dropped."""
        return tuple(
            sorted((a, v) for a, v in self._words.items() if v != 0)
        )

    def __len__(self) -> int:
        return len(self._words)
