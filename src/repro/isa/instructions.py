"""Instruction set for the Branch Vanguard reproduction.

The paper targets a hidden, vendor-private RISC/VLIW ISA reached through
dynamic binary translation (Transmeta Crusoe / NVIDIA Project Denver style).
We model a small load/store register ISA with the two instructions the paper
adds (Section 2.1):

* ``PREDICT`` -- opcode + target only.  The front end consults the branch
  predictor when this instruction is fetched; if predicted taken, fetch
  continues at the target.  The instruction then retires without occupying a
  back-end slot (it is "dropped from the fetch buffer", Fig. 7a).
* ``RESOLVE_*`` -- shaped like a conditional branch, always predicted
  not-taken by the front end.  If the condition resolves contrary to the
  direction chosen by the matching ``PREDICT``, control transfers to the
  correction-code target.  Either way the predictor entries of the
  ``PREDICT`` are updated through the Decomposed Branch Buffer.

Everything else is a conventional RISC subset sufficient to express the
paper's workloads: ALU / FP arithmetic, loads and stores (plus non-faulting
speculative loads for hoisting, Section 2.2), compares that write a boolean
register, conditional and unconditional branches, and call/return.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union


class FuClass(enum.Enum):
    """Functional-unit class an instruction issues to (Table 1)."""

    INT = "int"  # 2x INT / SIMD-permute ports
    MEM = "mem"  # 2x LD/ST ports
    FP = "fp"  # 4x 64-bit SIMD/FP ports
    NONE = "none"  # consumed by the front end (PREDICT, NOP, HALT)


class Opcode(enum.Enum):
    """Every operation in the ISA."""

    # Integer ALU.
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    MOV = enum.auto()
    LI = enum.auto()  # load immediate
    #: Conditional select (the predication primitive, Fig. 1's
    #: low-bias/low-predictability treatment): dest = srcs[1] if srcs[0]
    #: else srcs[2].
    SEL = enum.auto()

    # Floating point.
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()

    # Compares: write 1/0 into the destination register.
    CMP_EQ = enum.auto()
    CMP_NE = enum.auto()
    CMP_LT = enum.auto()
    CMP_LE = enum.auto()
    CMP_GT = enum.auto()
    CMP_GE = enum.auto()

    # Memory.
    LOAD = enum.auto()
    STORE = enum.auto()

    # Control flow.
    BNZ = enum.auto()  # branch to target if cond != 0
    BZ = enum.auto()  # branch to target if cond == 0
    JMP = enum.auto()
    CALL = enum.auto()
    RET = enum.auto()

    # The paper's decomposed-branch extension.
    PREDICT = enum.auto()
    RESOLVE_NZ = enum.auto()  # divert to correction target if cond != 0
    RESOLVE_Z = enum.auto()  # divert to correction target if cond == 0

    # Misc.
    NOP = enum.auto()
    HALT = enum.auto()


_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOV,
        Opcode.LI,
        Opcode.SEL,
    }
)
_FP_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
_CMP_OPS = frozenset(
    {
        Opcode.CMP_EQ,
        Opcode.CMP_NE,
        Opcode.CMP_LT,
        Opcode.CMP_LE,
        Opcode.CMP_GT,
        Opcode.CMP_GE,
    }
)
_COND_BRANCH_OPS = frozenset({Opcode.BNZ, Opcode.BZ})
_RESOLVE_OPS = frozenset({Opcode.RESOLVE_NZ, Opcode.RESOLVE_Z})
_CONTROL_OPS = (
    _COND_BRANCH_OPS
    | _RESOLVE_OPS
    | {Opcode.JMP, Opcode.CALL, Opcode.RET, Opcode.PREDICT}
)

#: Execution latency in cycles per opcode (loads are the L1 hit latency;
#: the simulator's memory hierarchy supersedes it with the actual level's
#: latency -- the static value drives the scheduler's priorities).
LATENCY = {
    Opcode.LOAD: 4,
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
}
_DEFAULT_LATENCY = 1

#: All instructions occupy four bytes; used for the static-code-size
#: metric (PISCS) and for I-cache addressing.
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    ``target`` holds a label name until the assembler resolves it to a PC
    (an index into the program's instruction list).

    Annotations carried for the paper's metrics and mechanisms:

    * ``branch_id`` -- static branch-site identity shared by a decomposed
      branch's PREDICT and both RESOLVEs (and by an ordinary branch with
      itself); it is what the direction predictor is indexed by.
    * ``predicted_dir`` -- on a RESOLVE, the direction the matching PREDICT
      chose on this path (True = taken).  Fall-through through the RESOLVE
      confirms that direction.
    * ``speculative`` -- non-faulting load hoisted above a resolution point
      (rendered with a ``+`` in the paper's Fig. 6).
    * ``hoisted`` -- instruction moved above a resolution point by the
      transformation; feeds the PDIH column of Table 2.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[Union[int, float]] = None
    target: Optional[Union[str, int]] = None
    branch_id: Optional[int] = None
    predicted_dir: Optional[bool] = None
    speculative: bool = False
    hoisted: bool = False

    # -- classification ------------------------------------------------

    @property
    def is_alu(self) -> bool:
        return self.opcode in _ALU_OPS or self.opcode in _CMP_OPS

    @property
    def is_fp(self) -> bool:
        return self.opcode in _FP_OPS

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_mem(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode in _COND_BRANCH_OPS

    @property
    def is_resolve(self) -> bool:
        return self.opcode in _RESOLVE_OPS

    @property
    def is_predict(self) -> bool:
        return self.opcode is Opcode.PREDICT

    @property
    def is_control(self) -> bool:
        return self.opcode in _CONTROL_OPS

    @property
    def is_terminator(self) -> bool:
        """True for opcodes that may end a basic block."""
        return self.opcode in _CONTROL_OPS or self.opcode is Opcode.HALT

    @property
    def fu_class(self) -> FuClass:
        if self.opcode in (Opcode.PREDICT, Opcode.NOP, Opcode.HALT):
            return FuClass.NONE
        if self.is_mem:
            return FuClass.MEM
        if self.is_fp:
            return FuClass.FP
        return FuClass.INT

    @property
    def latency(self) -> int:
        return LATENCY.get(self.opcode, _DEFAULT_LATENCY)

    # -- convenience ---------------------------------------------------

    def with_target(self, target: Union[str, int]) -> "Instruction":
        return replace(self, target=target)

    def reads(self) -> Tuple[int, ...]:
        return self.srcs

    def writes(self) -> Optional[int]:
        return self.dest

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.name.lower()]
        if self.dest is not None:
            parts.append(f"r{self.dest}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"-> {self.target}")
        flags = []
        if self.speculative:
            flags.append("+")
        if self.hoisted:
            flags.append("h")
        if self.branch_id is not None:
            flags.append(f"b{self.branch_id}")
        if self.predicted_dir is not None:
            flags.append("pT" if self.predicted_dir else "pNT")
        if flags:
            parts.append("[" + ",".join(flags) + "]")
        return " ".join(parts)


def resolve_diverts(op: Opcode, cond_value: Union[int, float]) -> bool:
    """Whether a RESOLVE opcode diverts to its correction target."""
    if op is Opcode.RESOLVE_NZ:
        return bool(cond_value)
    if op is Opcode.RESOLVE_Z:
        return not bool(cond_value)
    raise ValueError(f"not a resolve opcode: {op}")


def branch_taken(op: Opcode, cond_value: Union[int, float]) -> bool:
    """Whether a conditional branch opcode takes its target."""
    if op is Opcode.BNZ:
        return bool(cond_value)
    if op is Opcode.BZ:
        return not bool(cond_value)
    raise ValueError(f"not a conditional branch opcode: {op}")
