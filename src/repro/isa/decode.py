"""One-time pre-decode of a :class:`Program` into flat dispatch arrays.

The timing and functional simulators are the hot path of every
experiment: they execute the same static program millions of dynamic
instructions at a time, across several widths and REF seeds.  Walking
``Instruction`` dataclasses per dynamic instruction pays for attribute
lookups, ``Opcode`` enum identity chains, and property recomputation
(``fu_class`` re-derives frozenset membership on every call) -- none of
which depends on anything but the static instruction.

:func:`predecode` lowers each instruction once into a flat tuple of
plain ints/bools/functions (a "row"), pre-resolving everything the
simulators dispatch on:

* an integer *kind* (see the ``K_*`` constants) replacing the
  ``is Opcode.X`` chains;
* the functional-unit index and latency (``FU_*``), pre-resolved from
  the ``fu_class``/``latency`` properties;
* the effective branch id (``branch_id`` falling back to the pc);
* the branch/resolve *sense* bit, unifying BNZ/BZ and
  RESOLVE_NZ/RESOLVE_Z;
* a bound evaluator function for straight-line ALU/FP/compare ops, so
  executing one costs a single call instead of an opcode chain.

The decoded form is cached on the ``Program`` instance, keyed on the
identity of its instruction list, so repeated runs (every width x seed
combination the experiment engine schedules) decode exactly once.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .instructions import Instruction, LATENCY, Opcode, _DEFAULT_LATENCY
from .registers import wrap_int

__all__ = [
    "DecodedProgram",
    "predecode",
    "K_BINOP",
    "K_CONST",
    "K_SEL",
    "K_EVAL_GEN",
    "K_LOAD",
    "K_STORE",
    "K_BRANCH",
    "K_RESOLVE",
    "K_JMP",
    "K_CALL",
    "K_RET",
    "K_NOP",
    "K_PREDICT",
    "K_HALT",
    "FU_NONE",
    "FU_INT",
    "FU_MEM",
    "FU_FP",
    "evaluate_code",
]

# ---------------------------------------------------------------------------
# Dispatch kinds.  PREDICT/HALT sit at the top so the front-end-only gate
# in the simulators is a single ``kind >= K_PREDICT`` comparison.
# ---------------------------------------------------------------------------

K_BINOP = 0  # ALU/FP/compare with the standard (a, b) operand plan
K_CONST = 1  # LI: value fully known at decode time
K_SEL = 2  # conditional select, three register reads
K_EVAL_GEN = 3  # degenerate ALU shapes (no sources); generic evaluator
K_LOAD = 4
K_STORE = 5
K_BRANCH = 6  # BNZ / BZ
K_RESOLVE = 7  # RESOLVE_NZ / RESOLVE_Z
K_JMP = 8
K_CALL = 9
K_RET = 10
K_NOP = 11
K_PREDICT = 12
K_HALT = 13

#: Functional-unit indices (list-indexable, unlike the FuClass enum).
FU_NONE = 0
FU_INT = 1
FU_MEM = 2
FU_FP = 3

#: Row layout (indices into one decoded row tuple).
#: (kind, dest, srcs, imm, aux, target, branch_id, latency, fu,
#:  speculative, hoisted, predicted_dir, fn)
#: ``imm``  -- op-normalised immediate: the ``b`` operand for an
#:             immediate-form binop, the address offset for LOAD/STORE
#:             (``None`` mapped to 0), the constant for LI.
#: ``aux``  -- op-specific small int: the ``b`` source register for a
#:             register-form binop (-1 = use ``imm``), the condition /
#:             address register for branches, resolves, loads and RET,
#:             the value register for STORE.
#: ``fn``   -- bound ``(a, b)`` evaluator for K_BINOP rows, the
#:             taken/divert *sense* bool for K_BRANCH / K_RESOLVE rows,
#:             else ``None``.


def _int_binop(op):
    """Evaluators replicating :func:`repro.uarch.core._evaluate` exactly,
    including the int-vs-float wrap_int behaviour."""

    def add(a, b):
        if isinstance(a, int) and isinstance(b, int):
            return wrap_int(a + b)
        return a + b

    def sub(a, b):
        if isinstance(a, int) and isinstance(b, int):
            return wrap_int(a - b)
        return a - b

    def mul(a, b):
        if isinstance(a, int) and isinstance(b, int):
            return wrap_int(a * b)
        return a * b

    def div(a, b):
        if b == 0:
            return 0
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            return wrap_int(quotient)
        return a / b

    return {
        Opcode.ADD: add,
        Opcode.SUB: sub,
        Opcode.MUL: mul,
        Opcode.DIV: div,
    }[op]


_EVAL_FNS = {
    Opcode.ADD: _int_binop(Opcode.ADD),
    Opcode.SUB: _int_binop(Opcode.SUB),
    Opcode.MUL: _int_binop(Opcode.MUL),
    Opcode.DIV: _int_binop(Opcode.DIV),
    Opcode.AND: lambda a, b: wrap_int(int(a) & int(b)),
    Opcode.OR: lambda a, b: wrap_int(int(a) | int(b)),
    Opcode.XOR: lambda a, b: wrap_int(int(a) ^ int(b)),
    Opcode.SHL: lambda a, b: wrap_int(int(a) << (int(b) & 63)),
    Opcode.SHR: lambda a, b: wrap_int(int(a) >> (int(b) & 63)),
    Opcode.MOV: lambda a, b: a,
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FDIV: lambda a, b: float(a) / float(b) if b else 0.0,
    Opcode.CMP_EQ: lambda a, b: int(a == b),
    Opcode.CMP_NE: lambda a, b: int(a != b),
    Opcode.CMP_LT: lambda a, b: int(a < b),
    Opcode.CMP_LE: lambda a, b: int(a <= b),
    Opcode.CMP_GT: lambda a, b: int(a > b),
    Opcode.CMP_GE: lambda a, b: int(a >= b),
}

_KIND_BY_OPCODE = {
    Opcode.LOAD: K_LOAD,
    Opcode.STORE: K_STORE,
    Opcode.BNZ: K_BRANCH,
    Opcode.BZ: K_BRANCH,
    Opcode.RESOLVE_NZ: K_RESOLVE,
    Opcode.RESOLVE_Z: K_RESOLVE,
    Opcode.JMP: K_JMP,
    Opcode.CALL: K_CALL,
    Opcode.RET: K_RET,
    Opcode.NOP: K_NOP,
    Opcode.PREDICT: K_PREDICT,
    Opcode.HALT: K_HALT,
    Opcode.LI: K_CONST,
    Opcode.SEL: K_SEL,
}

#: Opcodes whose condition sense is "nonzero" (taken/divert when the
#: condition register is truthy).
_NONZERO_SENSE = frozenset({Opcode.BNZ, Opcode.RESOLVE_NZ})


def evaluate_code(op: Opcode, srcs, imm, regs):
    """Generic straight-line evaluation (the pre-decoded twin of the
    legacy ``_evaluate``); used for degenerate operand shapes and by
    callers that still hold an :class:`Instruction`."""
    if op is Opcode.LI:
        return imm if imm is not None else 0
    if op is Opcode.SEL:
        return regs[srcs[1]] if regs[srcs[0]] else regs[srcs[2]]
    fn = _EVAL_FNS.get(op)
    if fn is None:
        raise KeyError(f"unhandled opcode {op}")
    a = regs[srcs[0]] if srcs else 0
    if imm is not None:
        b = imm
    elif len(srcs) > 1:
        b = regs[srcs[1]]
    else:
        b = 0
    return fn(a, b)


def _fu_index(inst: Instruction) -> int:
    op = inst.opcode
    if op in (Opcode.PREDICT, Opcode.NOP, Opcode.HALT):
        return FU_NONE
    if op in (Opcode.LOAD, Opcode.STORE):
        return FU_MEM
    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        return FU_FP
    return FU_INT


def _decode_one(pc: int, inst: Instruction) -> Tuple:
    op = inst.opcode
    srcs = inst.srcs
    imm = inst.imm
    dest = inst.dest
    latency = LATENCY.get(op, _DEFAULT_LATENCY)
    fu = _fu_index(inst)
    branch_id = inst.branch_id if inst.branch_id is not None else pc
    kind = _KIND_BY_OPCODE.get(op)
    aux = -1
    fn = None

    if kind is None:  # straight-line ALU/FP/compare/move
        fn = _EVAL_FNS.get(op)
        if srcs and fn is not None:
            # Standard operand plan: a = regs[srcs[0]]; b comes from the
            # immediate when present, from regs[aux] when aux >= 0,
            # else a literal 0 (normalised into ``imm``).
            kind = K_BINOP
            if imm is not None:
                aux = -1
            elif len(srcs) > 1:
                aux = srcs[1]
            else:
                aux = -1
                imm = 0
        else:
            # Degenerate shapes (no sources) and unknown opcodes fall
            # back to the generic evaluator at execute time, carrying
            # the opcode in the fn slot.
            kind = K_EVAL_GEN
            fn = op
    elif kind == K_CONST:
        imm = imm if imm is not None else 0
    elif kind in (K_BRANCH, K_RESOLVE):
        aux = srcs[0]
        fn = op in _NONZERO_SENSE  # sense bit
    elif kind == K_LOAD:
        aux = srcs[0]
        imm = imm if imm is not None else 0
    elif kind == K_STORE:
        aux = srcs[1]  # address register; value register is srcs[0]
        imm = imm if imm is not None else 0
    elif kind == K_RET:
        aux = srcs[0]

    return (
        kind,
        dest,
        srcs,
        imm,
        aux,
        inst.target,
        branch_id,
        latency,
        fu,
        inst.speculative,
        inst.hoisted,
        inst.predicted_dir,
        fn,
    )


class DecodedProgram:
    """Flat pre-decoded form of one :class:`Program`."""

    __slots__ = ("rows", "length", "source_id", "has_decomposed")

    def __init__(self, program) -> None:
        instructions = program.instructions
        self.rows: List[Tuple] = [
            _decode_one(pc, inst) for pc, inst in enumerate(instructions)
        ]
        self.length = len(instructions)
        #: Identity of the instruction list the rows were decoded from;
        #: a mutated Program (new list) re-decodes, an unchanged one
        #: hits the cache.
        self.source_id = id(instructions)
        #: Whether any PREDICT/RESOLVE row exists.  A program without
        #: them commits a predictor-independent instruction stream (the
        #: predictor only steers *timing*), so its execution trace can
        #: be keyed -- and shared -- across predictor sweeps
        #: (:mod:`repro.uarch.trace`).
        self.has_decomposed = any(
            row[0] == K_PREDICT or row[0] == K_RESOLVE
            for row in self.rows
        )


def predecode(program) -> DecodedProgram:
    """Return the cached :class:`DecodedProgram` for ``program``.

    Decodes at most once per (program, instruction-list) pair; the
    decoded rows are attached to the program instance so every
    simulation of the same object -- across widths, seeds and predictor
    sweeps -- shares one decode pass.
    """
    cached: Optional[DecodedProgram] = getattr(program, "_decoded", None)
    if cached is not None and cached.source_id == id(program.instructions):
        return cached
    decoded = DecodedProgram(program)
    try:
        program._decoded = decoded
    except AttributeError:  # exotic Program stand-ins without __dict__
        pass
    return decoded
