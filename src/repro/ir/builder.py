"""Fluent builders for constructing IR functions.

Used by the workload generator, the Figure-6 kernel, the examples, and the
tests.  Each emit method appends one instruction to the current block and
returns it, so callers can inspect or annotate what they emitted.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..isa import Instruction, Opcode
from .basic_block import BasicBlock
from .function import Function

Value = Union[int, float]


class BlockBuilder:
    """Appends instructions to one basic block."""

    def __init__(self, function: Function, block: BasicBlock) -> None:
        self._function = function
        self.block = block

    # -- straight-line emission -----------------------------------------

    def _emit(self, **kwargs) -> Instruction:
        inst = Instruction(**kwargs)
        self.block.append(inst)
        return inst

    def li(self, dest: int, value: Value) -> Instruction:
        return self._emit(opcode=Opcode.LI, dest=dest, imm=value)

    def mov(self, dest: int, src: int) -> Instruction:
        return self._emit(opcode=Opcode.MOV, dest=dest, srcs=(src,))

    def _binop(
        self, opcode: Opcode, dest: int, a: int, b: Optional[int], imm
    ) -> Instruction:
        srcs: Tuple[int, ...] = (a,) if b is None else (a, b)
        return self._emit(opcode=opcode, dest=dest, srcs=srcs, imm=imm)

    def add(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.ADD, dest, a, b, imm)

    def sub(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.SUB, dest, a, b, imm)

    def mul(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.MUL, dest, a, b, imm)

    def div(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.DIV, dest, a, b, imm)

    def and_(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.AND, dest, a, b, imm)

    def or_(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.OR, dest, a, b, imm)

    def xor(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.XOR, dest, a, b, imm)

    def shl(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.SHL, dest, a, b, imm)

    def shr(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.SHR, dest, a, b, imm)

    def fadd(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.FADD, dest, a, b, imm)

    def fsub(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.FSUB, dest, a, b, imm)

    def fmul(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.FMUL, dest, a, b, imm)

    def fdiv(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.FDIV, dest, a, b, imm)

    def cmp_eq(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_EQ, dest, a, b, imm)

    def cmp_ne(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_NE, dest, a, b, imm)

    def cmp_lt(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_LT, dest, a, b, imm)

    def cmp_le(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_LE, dest, a, b, imm)

    def cmp_gt(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_GT, dest, a, b, imm)

    def cmp_ge(self, dest, a, b=None, imm=None):
        return self._binop(Opcode.CMP_GE, dest, a, b, imm)

    def load(
        self, dest: int, base: int, offset: int = 0, speculative: bool = False
    ) -> Instruction:
        return self._emit(
            opcode=Opcode.LOAD,
            dest=dest,
            srcs=(base,),
            imm=offset,
            speculative=speculative,
        )

    def store(self, src: int, base: int, offset: int = 0) -> Instruction:
        return self._emit(opcode=Opcode.STORE, srcs=(src, base), imm=offset)

    def sel(self, dest: int, cond: int, if_true: int, if_false: int) -> Instruction:
        return self._emit(
            opcode=Opcode.SEL, dest=dest, srcs=(cond, if_true, if_false)
        )

    def nop(self) -> Instruction:
        return self._emit(opcode=Opcode.NOP)

    # -- terminators -----------------------------------------------------

    def _terminate(self, inst: Instruction, fallthrough: Optional[str]) -> Instruction:
        self.block.set_terminator(inst, fallthrough)
        return inst

    def bnz(
        self,
        cond: int,
        target: str,
        fallthrough: str,
        branch_id: Optional[int] = None,
    ) -> Instruction:
        return self._terminate(
            Instruction(
                opcode=Opcode.BNZ,
                srcs=(cond,),
                target=target,
                branch_id=branch_id,
            ),
            fallthrough,
        )

    def bz(
        self,
        cond: int,
        target: str,
        fallthrough: str,
        branch_id: Optional[int] = None,
    ) -> Instruction:
        return self._terminate(
            Instruction(
                opcode=Opcode.BZ,
                srcs=(cond,),
                target=target,
                branch_id=branch_id,
            ),
            fallthrough,
        )

    def jmp(self, target: str) -> Instruction:
        return self._terminate(
            Instruction(opcode=Opcode.JMP, target=target), None
        )

    def halt(self) -> Instruction:
        return self._terminate(Instruction(opcode=Opcode.HALT), None)

    def ret(self, link: int) -> Instruction:
        return self._terminate(
            Instruction(opcode=Opcode.RET, srcs=(link,)), None
        )

    def call(self, target: str, link: int, fallthrough: str) -> Instruction:
        return self._terminate(
            Instruction(opcode=Opcode.CALL, dest=link, target=target),
            fallthrough,
        )

    def predict(
        self, target: str, fallthrough: str, branch_id: int
    ) -> Instruction:
        return self._terminate(
            Instruction(
                opcode=Opcode.PREDICT, target=target, branch_id=branch_id
            ),
            fallthrough,
        )

    def resolve_nz(
        self,
        cond: int,
        target: str,
        fallthrough: str,
        branch_id: int,
        predicted_dir: bool,
    ) -> Instruction:
        return self._terminate(
            Instruction(
                opcode=Opcode.RESOLVE_NZ,
                srcs=(cond,),
                target=target,
                branch_id=branch_id,
                predicted_dir=predicted_dir,
            ),
            fallthrough,
        )

    def resolve_z(
        self,
        cond: int,
        target: str,
        fallthrough: str,
        branch_id: int,
        predicted_dir: bool,
    ) -> Instruction:
        return self._terminate(
            Instruction(
                opcode=Opcode.RESOLVE_Z,
                srcs=(cond,),
                target=target,
                branch_id=branch_id,
                predicted_dir=predicted_dir,
            ),
            fallthrough,
        )


class FunctionBuilder:
    """Builds a :class:`Function` block by block, in layout order."""

    def __init__(self, name: str) -> None:
        self.function = Function(name=name)
        self._next_branch_id = 0

    def block(self, name: str) -> BlockBuilder:
        block = self.function.add_block(BasicBlock(name=name))
        return BlockBuilder(self.function, block)

    def data(self, base: int, values) -> None:
        for offset, value in enumerate(values):
            self.function.data[base + offset] = value

    def fresh_branch_id(self) -> int:
        branch_id = self._next_branch_id
        self._next_branch_id += 1
        return branch_id

    def build(self) -> Function:
        self.function.validate()
        return self.function
