"""IR functions: an ordered collection of basic blocks plus a data segment.

Block *layout order* matters: fall-through edges go to the next block the
lowering emits, and the paper's notion of a "forward branch" (the only kind
the transformation targets) is defined against layout order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from ..isa import Instruction
from .basic_block import BasicBlock, IRError

Value = Union[int, float]


@dataclass
class Function:
    """A function: named blocks in layout order, entry first."""

    name: str
    blocks: Dict[str, BasicBlock] = field(default_factory=dict)
    data: Dict[int, Value] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(
        self, block: BasicBlock, after: Optional[str] = None
    ) -> BasicBlock:
        """Insert ``block``, optionally right after block ``after`` in layout."""
        if block.name in self.blocks:
            raise IRError(f"duplicate block {block.name}")
        if after is None:
            self.blocks[block.name] = block
            return block
        if after not in self.blocks:
            raise IRError(f"no block named {after}")
        items = []
        for name, existing in self.blocks.items():
            items.append((name, existing))
            if name == after:
                items.append((block.name, block))
        self.blocks = dict(items)
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block named {name}") from None

    def layout_index(self, name: str) -> int:
        for index, block_name in enumerate(self.blocks):
            if block_name == name:
                return index
        raise IRError(f"no block named {name}")

    def layout(self) -> List[str]:
        return list(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions()

    def static_instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def fresh_block_name(self, base: str) -> str:
        """A block name derived from ``base`` that is not yet used."""
        if base not in self.blocks:
            return base
        index = 1
        while f"{base}.{index}" in self.blocks:
            index += 1
        return f"{base}.{index}"

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IRError` on failure."""
        for block in self.blocks.values():
            for succ in block.successors():
                if succ not in self.blocks:
                    raise IRError(
                        f"block {block.name} references missing block {succ}"
                    )
            term = block.terminator
            if term is None and block.fallthrough is None:
                raise IRError(f"block {block.name} has no successor and no halt")
            for inst in block.body:
                if inst.is_terminator:
                    raise IRError(
                        f"terminator {inst.opcode.name} inside body of "
                        f"{block.name}"
                    )

    def clone(self) -> "Function":
        """Deep-enough copy: instructions are immutable, blocks are not."""
        copied = Function(name=self.name, data=dict(self.data))
        for block in self.blocks.values():
            copied.blocks[block.name] = BasicBlock(
                name=block.name,
                body=list(block.body),
                terminator=block.terminator,
                fallthrough=block.fallthrough,
            )
        return copied
