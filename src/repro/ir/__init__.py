"""Compiler intermediate representation: blocks, functions, CFG analyses,
liveness, dependence graphs, builders, and lowering to ISA programs."""

from .basic_block import BasicBlock, IRError
from .builder import BlockBuilder, FunctionBuilder
from .cfg import (
    back_edges,
    conditional_branch_blocks,
    dominators,
    is_forward_branch,
    predecessor_map,
    reachable_blocks,
    successor_map,
)
from .depgraph import DepGraph, available_above, build as build_depgraph
from .function import Function
from .liveness import (
    LivenessResult,
    analyze as analyze_liveness,
    block_use_def,
    defs,
    registers_referenced,
    registers_written,
    uses,
)
from .lower import lower

__all__ = [
    "BasicBlock",
    "BlockBuilder",
    "DepGraph",
    "Function",
    "FunctionBuilder",
    "IRError",
    "LivenessResult",
    "analyze_liveness",
    "available_above",
    "back_edges",
    "block_use_def",
    "build_depgraph",
    "conditional_branch_blocks",
    "defs",
    "dominators",
    "is_forward_branch",
    "lower",
    "predecessor_map",
    "reachable_blocks",
    "registers_referenced",
    "registers_written",
    "successor_map",
    "uses",
]
