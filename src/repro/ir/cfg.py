"""Control-flow-graph analyses over :class:`repro.ir.Function`.

Provides predecessor maps, reachability, back-edge (loop) detection, and
the forward-branch test the paper's selection heuristic needs (footnote 1:
backward/loop branches are excluded; they are handled by loop techniques
such as modulo scheduling).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .basic_block import BasicBlock
from .function import Function


def successor_map(func: Function) -> Dict[str, List[str]]:
    return {name: block.successors() for name, block in func.blocks.items()}


def predecessor_map(func: Function) -> Dict[str, List[str]]:
    preds: Dict[str, List[str]] = {name: [] for name in func.blocks}
    for name, block in func.blocks.items():
        for succ in block.successors():
            preds[succ].append(name)
    return preds


def reachable_blocks(func: Function) -> Set[str]:
    """Blocks reachable from the entry."""
    seen: Set[str] = set()
    stack = [func.entry.name]
    succs = successor_map(func)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(succs[name])
    return seen


def back_edges(func: Function) -> Set[Tuple[str, str]]:
    """(source, destination) pairs that close loops, via DFS colouring."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in func.blocks}
    edges: Set[Tuple[str, str]] = set()
    succs = successor_map(func)

    # Iterative DFS with explicit post-visit events to avoid recursion
    # limits on large synthetic CFGs.
    stack: List[Tuple[str, bool]] = [(func.entry.name, False)]
    while stack:
        name, post = stack.pop()
        if post:
            colour[name] = BLACK
            continue
        if colour[name] != WHITE:
            continue
        colour[name] = GREY
        stack.append((name, True))
        for succ in succs[name]:
            if colour[succ] == GREY:
                edges.add((name, succ))
            elif colour[succ] == WHITE:
                stack.append((succ, False))
    return edges


def is_forward_branch(func: Function, block: BasicBlock) -> bool:
    """True when ``block`` ends in a conditional branch whose taken target
    lies later in layout order (a forward, non-loop branch)."""
    term = block.terminator
    if term is None or not term.is_cond_branch:
        return False
    if not isinstance(term.target, str):
        return False
    return func.layout_index(term.target) > func.layout_index(block.name)


def conditional_branch_blocks(func: Function) -> List[str]:
    """Names of blocks terminated by an ordinary conditional branch."""
    return [
        name
        for name, block in func.blocks.items()
        if block.terminator is not None and block.terminator.is_cond_branch
    ]


def dominators(func: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator sets (small CFGs; clarity over speed)."""
    names = [n for n in func.layout() if n in reachable_blocks(func)]
    preds = predecessor_map(func)
    entry = func.entry.name
    all_names = set(names)
    dom: Dict[str, Set[str]] = {name: set(all_names) for name in names}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for name in names:
            if name == entry:
                continue
            pred_doms = [
                dom[p] for p in preds[name] if p in dom
            ]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(name)
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom
