"""Lowering: IR function -> executable :class:`repro.isa.Program`.

Blocks are emitted in layout order.  A fall-through edge to a non-adjacent
block materialises as an explicit JMP, so the transformation may link blocks
freely without worrying about placement.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import Instruction, Opcode, Program, assemble
from .basic_block import IRError
from .function import Function


def lower(func: Function, validate: bool = True) -> Program:
    """Lower ``func`` into a program with resolved branch targets."""
    if validate:
        func.validate()

    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    layout = func.layout()
    next_block = {
        layout[i]: layout[i + 1] if i + 1 < len(layout) else None
        for i in range(len(layout))
    }

    for name in layout:
        block = func.blocks[name]
        labels[name] = len(instructions)
        instructions.extend(block.body)
        term = block.terminator
        if term is not None:
            instructions.append(term)
        if term is not None and term.opcode in (Opcode.HALT, Opcode.RET, Opcode.JMP):
            continue
        fallthrough = block.fallthrough
        if fallthrough is None:
            if term is None:
                raise IRError(f"block {name} falls off the end of {func.name}")
            continue
        if fallthrough != next_block[name]:
            instructions.append(
                Instruction(opcode=Opcode.JMP, target=fallthrough)
            )

    return assemble(instructions, labels, data=func.data, name=func.name)
