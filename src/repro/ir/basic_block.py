"""Basic blocks for the compiler IR.

IR instructions are :class:`repro.isa.Instruction` objects whose control-flow
``target`` fields are *label names* (block names); lowering resolves them to
PCs.  A block separates its straight-line ``body`` from its ``terminator``
and records its fall-through successor explicitly, which keeps the
Decomposed Branch Transformation's block surgery simple and checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..isa import Instruction, Opcode


class IRError(Exception):
    """Raised on malformed IR."""


@dataclass
class BasicBlock:
    """A labelled straight-line region with one optional terminator.

    Successor semantics:

    * no terminator            -> fall through to ``fallthrough``
    * JMP                      -> ``terminator.target`` only
    * BNZ / BZ                 -> taken: ``terminator.target``,
                                  not-taken: ``fallthrough``
    * PREDICT                  -> predicted-taken path: ``terminator.target``,
                                  predicted-not-taken path: ``fallthrough``
    * RESOLVE_NZ / RESOLVE_Z   -> divert: ``terminator.target``,
                                  confirm: ``fallthrough``
    * HALT / RET               -> no successors
    """

    name: str
    body: List[Instruction] = field(default_factory=list)
    terminator: Optional[Instruction] = None
    fallthrough: Optional[str] = None

    def append(self, inst: Instruction) -> None:
        if inst.is_terminator:
            raise IRError(
                f"terminator {inst.opcode.name} appended to body of {self.name}"
            )
        self.body.append(inst)

    def set_terminator(
        self, inst: Optional[Instruction], fallthrough: Optional[str] = None
    ) -> None:
        if inst is not None and not inst.is_terminator:
            raise IRError(f"{inst.opcode.name} cannot terminate {self.name}")
        self.terminator = inst
        if fallthrough is not None:
            self.fallthrough = fallthrough

    def successors(self) -> List[str]:
        """Successor block names in (taken, fallthrough) order."""
        term = self.terminator
        if term is None:
            return [self.fallthrough] if self.fallthrough else []
        if term.opcode in (Opcode.HALT, Opcode.RET):
            return []
        if term.opcode in (Opcode.JMP, Opcode.CALL):
            succs = [term.target] if isinstance(term.target, str) else []
            if term.opcode is Opcode.CALL and self.fallthrough:
                # Interprocedural edge is the call target; the return
                # continues at the fall-through.
                succs.append(self.fallthrough)
            return succs
        succs = []
        if isinstance(term.target, str):
            succs.append(term.target)
        if self.fallthrough:
            succs.append(self.fallthrough)
        return succs

    def instructions(self) -> Iterator[Instruction]:
        yield from self.body
        if self.terminator is not None:
            yield self.terminator

    def __len__(self) -> int:
        return len(self.body) + (1 if self.terminator is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.name!r}, {len(self)} insts)"
