"""Register liveness analysis.

The Decomposed Branch Transformation needs live-in sets for successor and
correction blocks to decide when a hoisted instruction's destination must be
renamed to a speculation temporary (Section 3: "we may need to write to
temporary registers in the speculative portions to prevent the clobbering of
live-in values for the alternate path").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from ..isa import Instruction
from .cfg import predecessor_map, successor_map
from .function import Function


def uses(inst: Instruction) -> FrozenSet[int]:
    return frozenset(inst.srcs)


def defs(inst: Instruction) -> FrozenSet[int]:
    return frozenset() if inst.dest is None else frozenset({inst.dest})


@dataclass(frozen=True)
class LivenessResult:
    """Per-block live-in / live-out register sets."""

    live_in: Dict[str, FrozenSet[int]]
    live_out: Dict[str, FrozenSet[int]]


def block_use_def(block_insts: List[Instruction]) -> "tuple[Set[int], Set[int]]":
    """(upward-exposed uses, defs) for a straight-line sequence."""
    used: Set[int] = set()
    defined: Set[int] = set()
    for inst in block_insts:
        for reg in uses(inst):
            if reg not in defined:
                used.add(reg)
        defined |= defs(inst)
    return used, defined


def analyze(func: Function) -> LivenessResult:
    """Iterative backward liveness to a fixed point."""
    succs = successor_map(func)
    use_map: Dict[str, Set[int]] = {}
    def_map: Dict[str, Set[int]] = {}
    for name, block in func.blocks.items():
        used, defined = block_use_def(list(block.instructions()))
        use_map[name] = used
        def_map[name] = defined

    live_in: Dict[str, Set[int]] = {name: set() for name in func.blocks}
    live_out: Dict[str, Set[int]] = {name: set() for name in func.blocks}

    changed = True
    while changed:
        changed = False
        for name in reversed(func.layout()):
            out: Set[int] = set()
            for succ in succs[name]:
                out |= live_in[succ]
            new_in = use_map[name] | (out - def_map[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True

    return LivenessResult(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
    )


def registers_written(func: Function) -> Set[int]:
    """Every register defined anywhere in the function."""
    written: Set[int] = set()
    for inst in func.instructions():
        written |= defs(inst)
    return written


def registers_referenced(func: Function) -> Set[int]:
    """Every register read or written anywhere in the function."""
    refs: Set[int] = set()
    for inst in func.instructions():
        refs |= defs(inst)
        refs |= uses(inst)
    return refs
