"""Intra-block dependence DAG.

Used by the list scheduler (to reorder independent work, especially to issue
loads early) and by the transformation's hoisting legality check (an
instruction is hoistable only when every value it reads is available above
the resolution point).

Memory discipline is conservative and simple:

* loads may reorder freely with other loads,
* a store orders against every earlier memory operation and every later one
  (it is a full memory barrier within the block).

This matches the paper's compilation model: data speculation past
may-aliasing stores is *possible* on the substrate (Section 2.2, item 2) but
the transformation as described does not move loads above stores, and
neither do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..isa import Instruction


@dataclass
class DepGraph:
    """Dependences among ``insts``; edge u -> v means v depends on u."""

    insts: Sequence[Instruction]
    succs: Dict[int, Set[int]] = field(default_factory=dict)
    preds: Dict[int, Set[int]] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.succs.setdefault(src, set()).add(dst)
        self.preds.setdefault(dst, set()).add(src)

    def predecessors(self, index: int) -> Set[int]:
        return self.preds.get(index, set())

    def successors(self, index: int) -> Set[int]:
        return self.succs.get(index, set())

    def roots(self) -> List[int]:
        return [i for i in range(len(self.insts)) if not self.preds.get(i)]

    def critical_path_lengths(self) -> List[int]:
        """Latency-weighted longest path from each node to any sink."""
        n = len(self.insts)
        length = [0] * n
        for i in range(n - 1, -1, -1):
            best = 0
            for succ in self.succs.get(i, ()):
                best = max(best, length[succ])
            length[i] = self.insts[i].latency + best
        return length


def build(insts: Sequence[Instruction]) -> DepGraph:
    """Construct the dependence DAG for one straight-line sequence."""
    graph = DepGraph(insts=insts)
    last_def: Dict[int, int] = {}
    readers_since_def: Dict[int, List[int]] = {}
    last_store: Optional[int] = None
    mem_ops_since_store: List[int] = []

    for i, inst in enumerate(insts):
        # Register dependences.
        for reg in inst.srcs:
            if reg in last_def:
                graph.add_edge(last_def[reg], i)  # RAW
        if inst.dest is not None:
            reg = inst.dest
            if reg in last_def:
                graph.add_edge(last_def[reg], i)  # WAW
            for reader in readers_since_def.get(reg, ()):
                graph.add_edge(reader, i)  # WAR
            last_def[reg] = i
            readers_since_def[reg] = []
        for reg in inst.srcs:
            readers_since_def.setdefault(reg, []).append(i)

        # Memory dependences.
        if inst.is_store:
            for prior in mem_ops_since_store:
                graph.add_edge(prior, i)
            if last_store is not None:
                graph.add_edge(last_store, i)
            last_store = i
            mem_ops_since_store = []
        elif inst.is_load:
            if last_store is not None:
                graph.add_edge(last_store, i)
            mem_ops_since_store.append(i)

    return graph


def available_above(
    insts: Sequence[Instruction], defined_above: Set[int]
) -> List[int]:
    """Indices of a maximal *prefix-closed* hoistable set.

    The hoisted set executes (in original relative order) *before* the
    instructions left behind, so membership must respect every dependence
    against skipped instructions:

    * every register an instruction reads is defined above the block
      (``defined_above``) or produced by an already-hoistable instruction,
      and is not written by a skipped instruction (RAW);
    * its destination is not read or written by any skipped instruction
      (WAR / WAW against the left-behind portion);
    * it lies in the block's *upper portion*: the first store ends the
      hoistable region entirely (the paper's Fig. 5c splits each
      successor into an upper hoistable portion and a lower portion, and
      stores are never speculated -- Section 3 pushes them *below* the
      resolution point).
    """
    hoistable: List[int] = []
    produced: Set[int] = set()
    skipped_reads: Set[int] = set()
    skipped_writes: Set[int] = set()

    def skip(inst: Instruction) -> None:
        skipped_reads.update(inst.srcs)
        if inst.dest is not None:
            skipped_writes.add(inst.dest)

    for i, inst in enumerate(insts):
        if inst.is_store:
            break  # end of the upper portion
        reads_ok = all(
            (reg in defined_above or reg in produced)
            and reg not in skipped_writes
            for reg in inst.srcs
        )
        dest_ok = (
            inst.dest is None
            or (inst.dest not in skipped_reads and inst.dest not in skipped_writes)
        )
        if reads_ok and dest_ok:
            hoistable.append(i)
            if inst.dest is not None:
                produced.add(inst.dest)
        else:
            skip(inst)
    return hoistable
