"""The paper's default predictor (Table 1): "PTLSim default: GShare, 24 KB
3-table direction predictor".

PTLSim's default conditional predictor is a McFarling-style combining
predictor: a bimodal table, a gshare (two-level global) table, and a meta
chooser table -- three tables.  With 32K 2-bit counters per table this is
exactly 24 KB of direction-prediction state, matching Table 1.
"""

from __future__ import annotations

from .base import DirectionPredictor, Prediction, saturating_update


class HybridPredictor(DirectionPredictor):
    """Bimodal + gshare + chooser, 2-bit counters throughout."""

    name = "hybrid-24KB"

    def __init__(
        self,
        entries: int = 32768,
        history_bits: int = 15,
    ) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._bimodal = [2] * entries
        self._gshare = [2] * entries
        #: Chooser >= 2 selects gshare, else bimodal.
        self._chooser = [2] * entries
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0

    @property
    def storage_bits(self) -> int:
        return 3 * 2 * (self._mask + 1)

    def lookup(self, branch_id: int) -> Prediction:
        history = self._history
        bim_index = branch_id & self._mask
        gsh_index = (branch_id ^ history) & self._mask
        cho_index = branch_id & self._mask

        bim_taken = self._bimodal[bim_index] >= 2
        gsh_taken = self._gshare[gsh_index] >= 2
        use_gshare = self._chooser[cho_index] >= 2
        taken = gsh_taken if use_gshare else bim_taken

        self._history = ((history << 1) | int(taken)) & self._history_mask
        meta = (bim_index, gsh_index, cho_index, bim_taken, gsh_taken, history)
        return Prediction(taken=taken, meta=meta)

    def update(self, prediction: Prediction, taken: bool) -> None:
        bim_index, gsh_index, cho_index, bim_taken, gsh_taken, history = (
            prediction.meta
        )
        self._bimodal[bim_index] = saturating_update(
            self._bimodal[bim_index], taken
        )
        self._gshare[gsh_index] = saturating_update(
            self._gshare[gsh_index], taken
        )
        # Train the chooser only when the components disagree.
        if bim_taken != gsh_taken:
            self._chooser[cho_index] = saturating_update(
                self._chooser[cho_index], gsh_taken == taken
            )
        if taken != prediction.taken:
            self._history = ((history << 1) | int(taken)) & self._history_mask

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        # Trace-measurement fast path: identical table/history transitions
        # to lookup+update, minus the per-event Prediction and meta tuple.
        history = self._history
        bimodal = self._bimodal
        gshare = self._gshare
        index = branch_id & self._mask
        gsh_index = (branch_id ^ history) & self._mask

        bim_counter = bimodal[index]
        gsh_counter = gshare[gsh_index]
        bim_taken = bim_counter >= 2
        gsh_taken = gsh_counter >= 2
        predicted = gsh_taken if self._chooser[index] >= 2 else bim_taken

        if taken:
            if bim_counter < 3:
                bimodal[index] = bim_counter + 1
            if gsh_counter < 3:
                gshare[gsh_index] = gsh_counter + 1
        else:
            if bim_counter > 0:
                bimodal[index] = bim_counter - 1
            if gsh_counter > 0:
                gshare[gsh_index] = gsh_counter - 1
        if bim_taken != gsh_taken:
            chooser = self._chooser
            if gsh_taken == taken:
                if chooser[index] < 3:
                    chooser[index] += 1
            elif chooser[index] > 0:
                chooser[index] -= 1
        self._history = ((history << 1) | int(taken)) & self._history_mask
        return predicted == taken
