"""Bias / predictability measurement over branch-outcome streams.

This is the measurement the paper's Figures 2 and 3 plot and that its
selection heuristic consumes: *bias* is how often the branch goes its
majority direction; *predictability* is the accuracy a concrete predictor
achieves on the stream.  Predictability almost always exceeds bias -- the
gap is the opportunity the transformation exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from .base import DirectionPredictor
from .hybrid import HybridPredictor


@dataclass(frozen=True)
class BranchStats:
    """Measured statistics for one static branch site."""

    branch_id: int
    executions: int
    taken: int
    correct: int

    @property
    def bias(self) -> float:
        """Fraction of executions in the majority direction."""
        if not self.executions:
            return 1.0
        frac_taken = self.taken / self.executions
        return max(frac_taken, 1.0 - frac_taken)

    @property
    def predictability(self) -> float:
        if not self.executions:
            return 1.0
        return self.correct / self.executions

    @property
    def exposed_predictability(self) -> float:
        """predictability - bias: the paper's selection signal."""
        return self.predictability - self.bias


def measure_stream(
    branch_id: int,
    outcomes: Sequence[bool],
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
) -> BranchStats:
    """Measure one site's outcome stream with a fresh predictor."""
    predictor = predictor_factory()
    predict_and_train = predictor.predict_and_train
    correct = 0
    taken = 0
    for outcome in outcomes:
        if predict_and_train(branch_id, outcome):
            correct += 1
        if outcome:
            taken += 1
    return BranchStats(
        branch_id=branch_id,
        executions=len(outcomes),
        taken=taken,
        correct=correct,
    )


def measure_trace(
    trace: Iterable[Tuple[int, bool]],
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    warmup_fraction: float = 0.2,
) -> Dict[int, BranchStats]:
    """Measure an interleaved (branch_id, outcome) trace with one shared
    predictor -- this is what profiling a whole program run produces, and it
    captures cross-branch aliasing/history interactions.

    The first ``warmup_fraction`` of the trace trains the predictor but is
    excluded from the statistics, approximating the steady-state
    predictability a to-completion TRAIN run observes.
    """
    events = list(trace)
    warmup = int(len(events) * warmup_fraction)
    predictor = predictor_factory()
    predict_and_train = predictor.predict_and_train
    # One [executions, taken, correct] row per site instead of three
    # dicts probed with .get per event.
    counts: Dict[int, List[int]] = {}
    counts_get = counts.get
    index = 0
    for branch_id, outcome in events:
        was_correct = predict_and_train(branch_id, outcome)
        index += 1
        if index <= warmup:
            continue
        row = counts_get(branch_id)
        if row is None:
            row = counts[branch_id] = [0, 0, 0]
        row[0] += 1
        if outcome:
            row[1] += 1
        if was_correct:
            row[2] += 1
    return {
        branch_id: BranchStats(
            branch_id=branch_id,
            executions=row[0],
            taken=row[1],
            correct=row[2],
        )
        for branch_id, row in counts.items()
    }


def misses_per_kilo_instruction(
    stats: Iterable[BranchStats], dynamic_instructions: int
) -> float:
    """MPPKI over a set of branch sites for a run of given length."""
    if dynamic_instructions <= 0:
        return 0.0
    mispredicts = sum(s.executions - s.correct for s in stats)
    return 1000.0 * mispredicts / dynamic_instructions
