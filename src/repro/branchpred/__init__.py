"""Branch prediction substrate: direction predictors (static -> ISL-TAGE),
BTB, RAS, and bias/predictability measurement."""

from .base import DirectionPredictor, Prediction, saturating_update
from .btb import BranchTargetBuffer, ReturnAddressStack
from .hybrid import HybridPredictor
from .measure import (
    BranchStats,
    measure_stream,
    measure_trace,
    misses_per_kilo_instruction,
)
from .local import LocalPredictor
from .simple import BimodalPredictor, GSharePredictor, StaticTakenPredictor
from .traces import compare_predictors, load_trace, replay, save_trace
from .tage import IslTagePredictor, TagePredictor

#: The Section 5.3 predictor ladder, weakest to strongest.
PREDICTOR_LADDER = (
    StaticTakenPredictor,
    BimodalPredictor,
    LocalPredictor,
    GSharePredictor,
    HybridPredictor,
    TagePredictor,
    IslTagePredictor,
)

__all__ = [
    "BimodalPredictor",
    "BranchStats",
    "BranchTargetBuffer",
    "DirectionPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "IslTagePredictor",
    "LocalPredictor",
    "PREDICTOR_LADDER",
    "Prediction",
    "ReturnAddressStack",
    "StaticTakenPredictor",
    "TagePredictor",
    "measure_stream",
    "measure_trace",
    "misses_per_kilo_instruction",
    "compare_predictors",
    "load_trace",
    "replay",
    "save_trace",
    "saturating_update",
]
