"""TAGE and an ISL-TAGE-like predictor for the Section 5.3 sensitivity study.

The paper's best predictor is "a 64-KB version of ISL-TAGE" [Seznec, 2011].
We implement a standard TAGE (base bimodal table plus tagged components with
geometrically increasing history lengths, usefulness counters, and
allocation-on-mispredict) and layer the two ISL additions on top in
simplified form: a loop predictor for constant-trip-count branches and a
small statistical corrector that learns to distrust weak TAGE predictions
per site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import DirectionPredictor, Prediction, saturating_update


def _fold(history: int, length: int, bits: int) -> int:
    """Fold the low ``length`` history bits into ``bits`` bits by XOR."""
    value = history & ((1 << length) - 1)
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


@dataclass
class _TaggedEntry:
    tag: int = 0
    counter: int = 4  # 3-bit, weakly taken at 4 (range 0..7)
    useful: int = 0  # 2-bit


class TagePredictor(DirectionPredictor):
    """TAGE with a bimodal base and ``len(history_lengths)`` tagged tables."""

    name = "tage"

    def __init__(
        self,
        base_entries: int = 16384,
        table_bits: int = 12,
        tag_bits: int = 10,
        history_lengths: Tuple[int, ...] = (5, 11, 22, 44, 88, 176),
    ) -> None:
        self._base = [2] * base_entries
        self._base_mask = base_entries - 1
        self._table_bits = table_bits
        self._table_mask = (1 << table_bits) - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._lengths = history_lengths
        self._tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(1 << table_bits)]
            for _ in history_lengths
        ]
        self._history = 0
        self._max_history = max(history_lengths)
        self._alloc_tick = 0

    # -- indexing --------------------------------------------------------

    def _indices_tags(
        self, branch_id: int, history: int
    ) -> List[Tuple[int, int]]:
        out = []
        for i, length in enumerate(self._lengths):
            folded = _fold(history, length, self._table_bits)
            index = (branch_id ^ folded ^ (branch_id >> (i + 1))) & self._table_mask
            tag_fold = _fold(history, length, self._tag_bits)
            tag = (branch_id ^ (tag_fold << 1) ^ tag_fold) & self._tag_mask
            out.append((index, tag))
        return out

    # -- predictor interface ----------------------------------------------

    def lookup(self, branch_id: int) -> Prediction:
        history = self._history
        slots = self._indices_tags(branch_id, history)
        provider: Optional[int] = None
        alt: Optional[int] = None
        for i in range(len(self._lengths) - 1, -1, -1):
            index, tag = slots[i]
            if self._tables[i][index].tag == tag:
                if provider is None:
                    provider = i
                elif alt is None:
                    alt = i
                    break

        base_index = branch_id & self._base_mask
        base_taken = self._base[base_index] >= 2

        if alt is not None:
            alt_index, _ = slots[alt]
            alt_taken = self._tables[alt][alt_index].counter >= 4
        else:
            alt_taken = base_taken

        if provider is not None:
            prov_index, _ = slots[provider]
            taken = self._tables[provider][prov_index].counter >= 4
        else:
            taken = base_taken

        self._history = (history << 1) | int(taken)
        self._history &= (1 << self._max_history) - 1
        meta = (branch_id, history, tuple(slots), provider, alt_taken,
                base_index, taken)
        return Prediction(taken=taken, meta=meta)

    def update(self, prediction: Prediction, taken: bool) -> None:
        (branch_id, history, slots, provider, alt_taken, base_index,
         predicted) = prediction.meta

        if provider is not None:
            index, _ = slots[provider]
            entry = self._tables[provider][index]
            entry.counter = saturating_update(entry.counter, taken, maximum=7)
            provider_taken = predicted
            if provider_taken != alt_taken:
                entry.useful = saturating_update(
                    entry.useful, provider_taken == taken
                )
        else:
            self._base[base_index] = saturating_update(
                self._base[base_index], taken
            )

        # Allocate a new entry on a misprediction, in a longer-history table.
        if predicted != taken:
            start = (provider + 1) if provider is not None else 0
            allocated = False
            for i in range(start, len(self._lengths)):
                index, tag = slots[i]
                entry = self._tables[i][index]
                if entry.useful == 0:
                    entry.tag = tag
                    entry.counter = 4 if taken else 3
                    allocated = True
                    break
            if not allocated:
                for i in range(start, len(self._lengths)):
                    index, _ = slots[i]
                    entry = self._tables[i][index]
                    entry.useful = max(entry.useful - 1, 0)
            # Repair speculative history.
            self._history = (history << 1) | int(taken)
            self._history &= (1 << self._max_history) - 1

        # Periodic graceful aging of usefulness (cheap stand-in for the
        # standard u-bit reset policy).
        self._alloc_tick += 1
        if self._alloc_tick >= 1 << 18:
            self._alloc_tick = 0
            for table in self._tables:
                for entry in table:
                    entry.useful >>= 1


class _LoopEntry:
    __slots__ = ("trip", "count", "confidence")

    def __init__(self) -> None:
        self.trip = -1  # learned run length of the repeating direction
        self.count = 0
        self.confidence = 0


class IslTagePredictor(DirectionPredictor):
    """TAGE plus a loop predictor and a small statistical corrector.

    A simplified stand-in for Seznec's ISL-TAGE: the loop component learns
    constant-trip-count branches exactly, and the corrector learns, per
    site, whether TAGE's prediction should be inverted when it has been
    chronically wrong.
    """

    name = "isl-tage-64KB"

    def __init__(self, loop_entries: int = 256, **tage_kwargs) -> None:
        defaults = dict(
            base_entries=32768,
            table_bits=13,
            tag_bits=12,
            history_lengths=(4, 9, 19, 40, 80, 160, 320),
        )
        defaults.update(tage_kwargs)
        self._tage = TagePredictor(**defaults)
        self._loop_mask = loop_entries - 1
        self._loops = [_LoopEntry() for _ in range(loop_entries)]
        # Statistical corrector: per-site signed confidence in TAGE.
        self._corrector = {}

    def lookup(self, branch_id: int) -> Prediction:
        tage_pred = self._tage.lookup(branch_id)
        taken = tage_pred.taken

        loop = self._loops[branch_id & self._loop_mask]
        use_loop = loop.trip > 0 and loop.confidence >= 3
        if use_loop:
            # Predict "continue the run" until the learned trip, then flip.
            taken = loop.count < loop.trip

        corr = self._corrector.get(branch_id, 0)
        if corr <= -4:
            taken = not taken

        meta = (branch_id, tage_pred, use_loop, taken)
        return Prediction(taken=taken, meta=meta)

    def update(self, prediction: Prediction, taken: bool) -> None:
        branch_id, tage_pred, use_loop, final_taken = prediction.meta
        self._tage.update(tage_pred, taken)

        corr = self._corrector.get(branch_id, 0)
        if tage_pred.taken == taken:
            corr = min(corr + 1, 7)
        else:
            corr = max(corr - 1, -7)
        self._corrector[branch_id] = corr

        loop = self._loops[branch_id & self._loop_mask]
        if taken:
            loop.count += 1
        else:
            run = loop.count
            loop.count = 0
            if run > 0:
                if run == loop.trip:
                    loop.confidence = min(loop.confidence + 1, 7)
                else:
                    loop.trip = run
                    loop.confidence = 0
