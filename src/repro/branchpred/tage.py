"""TAGE and an ISL-TAGE-like predictor for the Section 5.3 sensitivity study.

The paper's best predictor is "a 64-KB version of ISL-TAGE" [Seznec, 2011].
We implement a standard TAGE (base bimodal table plus tagged components with
geometrically increasing history lengths, usefulness counters, and
allocation-on-mispredict) and layer the two ISL additions on top in
simplified form: a loop predictor for constant-trip-count branches and a
small statistical corrector that learns to distrust weak TAGE predictions
per site.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .base import DirectionPredictor, Prediction, saturating_update


def _fold(history: int, length: int, bits: int) -> int:
    """Fold the low ``length`` history bits into ``bits`` bits by XOR.

    This is the *specification* of the folded value.  The hot path keeps
    the same quantity incrementally (a circular-shift register per table,
    as in real TAGE hardware) and only falls back to this function when a
    misprediction repairs the speculative history.
    """
    value = history & ((1 << length) - 1)
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class TagePredictor(DirectionPredictor):
    """TAGE with a bimodal base and ``len(history_lengths)`` tagged tables.

    The tagged components are stored as parallel flat int lists
    (tag/counter/useful per table) and the per-table folded histories are
    maintained incrementally: pushing one history bit updates each fold in
    O(1) -- a rotate, the incoming bit, and the expiring bit XORed back
    out at ``length mod bits`` -- instead of re-folding ``length`` history
    bits per table on every lookup.  Both choices are exact: predictions
    and table state are bit-identical to the naive re-fold.
    """

    name = "tage"

    def __init__(
        self,
        base_entries: int = 16384,
        table_bits: int = 12,
        tag_bits: int = 10,
        history_lengths: Tuple[int, ...] = (5, 11, 22, 44, 88, 176),
    ) -> None:
        self._base = [2] * base_entries
        self._base_mask = base_entries - 1
        self._table_bits = table_bits
        self._table_mask = (1 << table_bits) - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._lengths = history_lengths
        size = 1 << table_bits
        count = len(history_lengths)
        self._tab_tag: List[List[int]] = [[0] * size for _ in range(count)]
        # 3-bit counters, weakly taken at 4 (range 0..7).
        self._tab_ctr: List[List[int]] = [[4] * size for _ in range(count)]
        # 2-bit usefulness.
        self._tab_use: List[List[int]] = [[0] * size for _ in range(count)]
        self._history = 0
        self._max_history = max(history_lengths)
        self._hist_mask = (1 << self._max_history) - 1
        self._alloc_tick = 0
        # Incrementally-maintained folds of the low `length` history bits,
        # one pair (index-width, tag-width) per table, plus the per-table
        # constants the O(1) update needs: the position of the expiring
        # history bit and where its folded contribution lands.
        self._idx_folds = [0] * count
        self._tag_folds = [0] * count
        self._fold_params = tuple(
            (length - 1, length % table_bits, length % tag_bits)
            for length in history_lengths
        )

    # -- folded history ---------------------------------------------------

    def _push_history(self, taken: int) -> None:
        """Shift one outcome bit into the history and all folds, in O(1)
        per table.

        A history bit at position ``p`` contributes to folded position
        ``p mod bits``; shifting the history rotates every contribution
        left by one, the new bit lands at position 0, and the bit leaving
        the ``length``-bit window (position ``length - 1`` before the
        shift) is cancelled at ``length mod bits``.
        """
        history = self._history
        idx_bits = self._table_bits
        tag_bits = self._tag_bits
        idx_mask = self._table_mask
        tag_mask = self._tag_mask
        idx_folds = self._idx_folds
        tag_folds = self._tag_folds
        i = 0
        for expire, idx_out, tag_out in self._fold_params:
            expired = (history >> expire) & 1
            f = idx_folds[i]
            f = ((f << 1) | (f >> (idx_bits - 1))) & idx_mask
            idx_folds[i] = f ^ taken ^ (expired << idx_out)
            g = tag_folds[i]
            g = ((g << 1) | (g >> (tag_bits - 1))) & tag_mask
            tag_folds[i] = g ^ taken ^ (expired << tag_out)
            i += 1
        self._history = ((history << 1) | taken) & self._hist_mask

    def _refold(self) -> None:
        """Recompute every fold from ``self._history`` (mispredict repair
        rewrites the speculative history, invalidating the registers)."""
        history = self._history
        idx_bits = self._table_bits
        tag_bits = self._tag_bits
        for i, length in enumerate(self._lengths):
            self._idx_folds[i] = _fold(history, length, idx_bits)
            self._tag_folds[i] = _fold(history, length, tag_bits)

    # -- predictor interface ----------------------------------------------

    def lookup(self, branch_id: int) -> Prediction:
        history = self._history
        table_mask = self._table_mask
        tag_mask = self._tag_mask
        idx_folds = self._idx_folds
        tag_folds = self._tag_folds
        count = len(self._lengths)
        indices = [0] * count
        tags = [0] * count
        for i in range(count):
            indices[i] = (
                branch_id ^ idx_folds[i] ^ (branch_id >> (i + 1))
            ) & table_mask
            g = tag_folds[i]
            tags[i] = (branch_id ^ (g << 1) ^ g) & tag_mask

        tab_tag = self._tab_tag
        provider: Optional[int] = None
        alt: Optional[int] = None
        for i in range(count - 1, -1, -1):
            if tab_tag[i][indices[i]] == tags[i]:
                if provider is None:
                    provider = i
                else:
                    alt = i
                    break

        base_index = branch_id & self._base_mask
        base_taken = self._base[base_index] >= 2

        if alt is not None:
            alt_taken = self._tab_ctr[alt][indices[alt]] >= 4
        else:
            alt_taken = base_taken

        if provider is not None:
            taken = self._tab_ctr[provider][indices[provider]] >= 4
        else:
            taken = base_taken

        self._push_history(int(taken))
        meta = (branch_id, history, indices, tags, provider, alt_taken,
                base_index, taken)
        return Prediction(taken=taken, meta=meta)

    def update(self, prediction: Prediction, taken: bool) -> None:
        (branch_id, history, indices, tags, provider, alt_taken,
         base_index, predicted) = prediction.meta

        if provider is not None:
            index = indices[provider]
            counters = self._tab_ctr[provider]
            counters[index] = saturating_update(
                counters[index], taken, maximum=7
            )
            if predicted != alt_taken:
                useful = self._tab_use[provider]
                useful[index] = saturating_update(
                    useful[index], predicted == taken
                )
        else:
            self._base[base_index] = saturating_update(
                self._base[base_index], taken
            )

        # Allocate a new entry on a misprediction, in a longer-history table.
        if predicted != taken:
            start = (provider + 1) if provider is not None else 0
            allocated = False
            for i in range(start, len(self._lengths)):
                index = indices[i]
                if self._tab_use[i][index] == 0:
                    self._tab_tag[i][index] = tags[i]
                    self._tab_ctr[i][index] = 4 if taken else 3
                    allocated = True
                    break
            if not allocated:
                for i in range(start, len(self._lengths)):
                    index = indices[i]
                    useful = self._tab_use[i]
                    if useful[index] > 0:
                        useful[index] -= 1
            # Repair speculative history, then fix the folds.  The folds
            # are a pure function of ``self._history``; when the repaired
            # history differs from it only in the newest bit (always the
            # case for immediate lookup->update flows, e.g. trace
            # measurement), flipping folded position 0 everywhere is
            # exact and O(tables).  Otherwise (deferred DBB updates with
            # younger speculative lookups outstanding) rebuild in full.
            repaired = ((history << 1) | int(taken)) & self._hist_mask
            if self._history ^ repaired == 1:
                self._history = repaired
                idx_folds = self._idx_folds
                tag_folds = self._tag_folds
                for i in range(len(idx_folds)):
                    idx_folds[i] ^= 1
                    tag_folds[i] ^= 1
            else:
                self._history = repaired
                self._refold()

        # Periodic graceful aging of usefulness (cheap stand-in for the
        # standard u-bit reset policy).
        self._alloc_tick += 1
        if self._alloc_tick >= 1 << 18:
            self._alloc_tick = 0
            self._tab_use = [
                [useful >> 1 for useful in table] for table in self._tab_use
            ]


class _LoopEntry:
    __slots__ = ("trip", "count", "confidence")

    def __init__(self) -> None:
        self.trip = -1  # learned run length of the repeating direction
        self.count = 0
        self.confidence = 0


class IslTagePredictor(DirectionPredictor):
    """TAGE plus a loop predictor and a small statistical corrector.

    A simplified stand-in for Seznec's ISL-TAGE: the loop component learns
    constant-trip-count branches exactly, and the corrector learns, per
    site, whether TAGE's prediction should be inverted when it has been
    chronically wrong.
    """

    name = "isl-tage-64KB"

    def __init__(self, loop_entries: int = 256, **tage_kwargs) -> None:
        defaults = dict(
            base_entries=32768,
            table_bits=13,
            tag_bits=12,
            history_lengths=(4, 9, 19, 40, 80, 160, 320),
        )
        defaults.update(tage_kwargs)
        self._tage = TagePredictor(**defaults)
        self._loop_mask = loop_entries - 1
        self._loops = [_LoopEntry() for _ in range(loop_entries)]
        # Statistical corrector: per-site signed confidence in TAGE.
        self._corrector = {}

    def lookup(self, branch_id: int) -> Prediction:
        tage_pred = self._tage.lookup(branch_id)
        taken = tage_pred.taken

        loop = self._loops[branch_id & self._loop_mask]
        use_loop = loop.trip > 0 and loop.confidence >= 3
        if use_loop:
            # Predict "continue the run" until the learned trip, then flip.
            taken = loop.count < loop.trip

        corr = self._corrector.get(branch_id, 0)
        if corr <= -4:
            taken = not taken

        meta = (branch_id, tage_pred, use_loop, taken)
        return Prediction(taken=taken, meta=meta)

    def update(self, prediction: Prediction, taken: bool) -> None:
        branch_id, tage_pred, use_loop, final_taken = prediction.meta
        self._tage.update(tage_pred, taken)

        corr = self._corrector.get(branch_id, 0)
        if tage_pred.taken == taken:
            corr = min(corr + 1, 7)
        else:
            corr = max(corr - 1, -7)
        self._corrector[branch_id] = corr

        loop = self._loops[branch_id & self._loop_mask]
        if taken:
            loop.count += 1
        else:
            run = loop.count
            loop.count = 0
            if run > 0:
                if run == loop.trip:
                    loop.confidence = min(loop.confidence + 1, 7)
                else:
                    loop.trip = run
                    loop.confidence = 0
