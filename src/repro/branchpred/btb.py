"""Branch target buffer and return-address stack (Table 1: 4K-entry BTB,
64-entry RAS).

Our ISA only has direct branches (targets are immediates), so the BTB's
architectural role is limited to modelling *front-end target availability*:
a taken-predicted branch whose target misses in the BTB costs a one-cycle
fetch bubble while the target is computed from the instruction.  CALL/RET
use the RAS as usual.
"""

from __future__ import annotations

from typing import List, Optional


class BranchTargetBuffer:
    """Direct-mapped PC -> target cache."""

    def __init__(self, entries: int = 4096) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        index = pc & self._mask
        if self._tags[index] == pc:
            self.hits += 1
            return self._targets[index]
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        index = pc & self._mask
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """Circular return-address stack; overflow wraps, underflow mispredicts."""

    def __init__(self, entries: int = 64) -> None:
        self._stack: List[int] = []
        self._entries = entries
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._entries:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
