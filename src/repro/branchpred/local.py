"""Two-level local-history (PAg) predictor.

A per-site history register indexes a shared pattern table -- the
complement of gshare's global history.  Included both as an extra rung for
sensitivity studies and because the workloads' sticky-Markov branches are
exactly the streams local history excels at (a branch's own last outcomes
are always in *its* history window, no matter how many other branches
interleave).
"""

from __future__ import annotations

from typing import List

from .base import DirectionPredictor, Prediction, saturating_update


class LocalPredictor(DirectionPredictor):
    """PAg: per-branch history registers over a global pattern table."""

    name = "local-pag"

    def __init__(
        self,
        history_entries: int = 1024,
        history_bits: int = 10,
        pattern_entries: int = 4096,
    ) -> None:
        if history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a power of two")
        if pattern_entries & (pattern_entries - 1):
            raise ValueError("pattern_entries must be a power of two")
        self._history_mask = history_entries - 1
        self._histories: List[int] = [0] * history_entries
        self._history_bits = history_bits
        self._history_keep = (1 << history_bits) - 1
        self._pattern_mask = pattern_entries - 1
        self._patterns: List[int] = [2] * pattern_entries

    def lookup(self, branch_id: int) -> Prediction:
        slot = branch_id & self._history_mask
        history = self._histories[slot]
        index = (history ^ (branch_id << 2)) & self._pattern_mask
        taken = self._patterns[index] >= 2
        # Speculative per-branch history update with the prediction.
        self._histories[slot] = (
            (history << 1) | int(taken)
        ) & self._history_keep
        return Prediction(taken=taken, meta=(slot, index, history))

    def update(self, prediction: Prediction, taken: bool) -> None:
        slot, index, history = prediction.meta
        self._patterns[index] = saturating_update(
            self._patterns[index], taken
        )
        if taken != prediction.taken:
            self._histories[slot] = (
                (history << 1) | int(taken)
            ) & self._history_keep

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        # Speculative shift + mispredict repair collapse to shifting in
        # the true outcome; no Prediction allocated per event.
        histories = self._histories
        patterns = self._patterns
        slot = branch_id & self._history_mask
        history = histories[slot]
        index = (history ^ (branch_id << 2)) & self._pattern_mask
        counter = patterns[index]
        if taken:
            if counter < 3:
                patterns[index] = counter + 1
        elif counter > 0:
            patterns[index] = counter - 1
        histories[slot] = ((history << 1) | int(taken)) & self._history_keep
        return (counter >= 2) == taken
