"""Direction-predictor interface.

The decomposed-branch machinery needs predictors that separate *lookup*
(performed when the PREDICT instruction is fetched) from *update* (performed
when the matching RESOLVE commits, possibly many instructions later).  A
lookup therefore returns an opaque ``meta`` payload holding everything the
update needs -- table indices and the pre-lookup history snapshot -- which is
exactly what the paper stores in each Decomposed Branch Buffer entry
("16 bits for the indices into the branch prediction table hierarchy and
8 bits for the prediction metadata", Section 4).

History is updated speculatively with the prediction at lookup time, as in
real front ends; :meth:`DirectionPredictor.update` repairs it when the
outcome disagrees.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Prediction:
    """The result of one lookup: a direction plus update metadata."""

    taken: bool
    meta: Tuple


class DirectionPredictor(abc.ABC):
    """Conditional-branch direction predictor."""

    name = "base"

    @abc.abstractmethod
    def lookup(self, branch_id: int) -> Prediction:
        """Predict the branch at static site ``branch_id``.

        Speculatively folds the prediction into global history.
        """

    @abc.abstractmethod
    def update(self, prediction: Prediction, taken: bool) -> None:
        """Train with the true outcome; repairs history on a misprediction."""

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        """Convenience for trace-driven measurement: lookup then update.

        Returns True when the prediction was correct.
        """
        prediction = self.lookup(branch_id)
        self.update(prediction, taken)
        return prediction.taken == taken


def saturating_update(counter: int, taken: bool, maximum: int = 3) -> int:
    """Advance an n-bit saturating counter toward the outcome."""
    if taken:
        return min(counter + 1, maximum)
    return max(counter - 1, 0)
