"""Branch-trace persistence and replay.

Profiling runs produce (branch_id, outcome) traces; this module saves and
reloads them in a compact text format so expensive profiles can be reused
across sessions and predictors can be compared offline on identical
streams (the methodology behind the Section 5.3 study).

Format: one line per event, ``<branch_id> <0|1>``, with ``#`` comments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Tuple, Union

from .base import DirectionPredictor
from .measure import BranchStats, measure_trace

Trace = List[Tuple[int, bool]]
PathLike = Union[str, Path]


def save_trace(trace: Iterable[Tuple[int, bool]], path: PathLike) -> int:
    """Write a trace; returns the number of events written."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# repro branch trace v1\n")
        for branch_id, taken in trace:
            handle.write(f"{branch_id} {int(taken)}\n")
            count += 1
    return count


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    trace: Trace = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2 or parts[1] not in ("0", "1"):
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line {line!r}"
                )
            trace.append((int(parts[0]), parts[1] == "1"))
    return trace


def replay(
    trace: Trace,
    predictor_factory: Callable[[], DirectionPredictor],
    warmup_fraction: float = 0.2,
) -> Dict[int, BranchStats]:
    """Measure a stored trace with a fresh predictor."""
    return measure_trace(
        trace, predictor_factory, warmup_fraction=warmup_fraction
    )


def compare_predictors(
    trace: Trace,
    factories: Dict[str, Callable[[], DirectionPredictor]],
    warmup_fraction: float = 0.2,
) -> Dict[str, float]:
    """Overall accuracy of each predictor on the same trace."""
    accuracies: Dict[str, float] = {}
    for name, factory in factories.items():
        stats = replay(trace, factory, warmup_fraction)
        executions = sum(s.executions for s in stats.values())
        correct = sum(s.correct for s in stats.values())
        accuracies[name] = correct / executions if executions else 1.0
    return accuracies
