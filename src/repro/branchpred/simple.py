"""Static, bimodal, and gshare predictors.

These are both baselines for the Section 5.3 predictor ladder and building
blocks for the PTLSim-style hybrid in :mod:`repro.branchpred.hybrid`.
"""

from __future__ import annotations

from .base import DirectionPredictor, Prediction, saturating_update


class StaticTakenPredictor(DirectionPredictor):
    """Always predicts one direction; the floor of the predictor ladder."""

    name = "static"

    def __init__(self, taken: bool = True) -> None:
        self._taken = taken

    def lookup(self, branch_id: int) -> Prediction:
        return Prediction(taken=self._taken, meta=())

    def update(self, prediction: Prediction, taken: bool) -> None:
        return None

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        return self._taken == taken


class BimodalPredictor(DirectionPredictor):
    """Per-site 2-bit saturating counters, PC-indexed."""

    name = "bimodal"

    def __init__(self, entries: int = 4096) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._table = [2] * entries  # weakly taken

    def _index(self, branch_id: int) -> int:
        return branch_id & self._mask

    def lookup(self, branch_id: int) -> Prediction:
        index = self._index(branch_id)
        return Prediction(taken=self._table[index] >= 2, meta=(index,))

    def update(self, prediction: Prediction, taken: bool) -> None:
        (index,) = prediction.meta
        self._table[index] = saturating_update(self._table[index], taken)

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        # Trace-measurement fast path: same table transitions as
        # lookup+update without allocating a Prediction per event.
        table = self._table
        index = branch_id & self._mask
        counter = table[index]
        if taken:
            if counter < 3:
                table[index] = counter + 1
        elif counter > 0:
            table[index] = counter - 1
        return (counter >= 2) == taken


class GSharePredictor(DirectionPredictor):
    """Global-history XOR PC indexed 2-bit counter table.

    History is speculatively shifted at lookup and repaired on mispredict.
    """

    name = "gshare"

    def __init__(self, entries: int = 16384, history_bits: int = 14) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._table = [2] * entries
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0

    @property
    def history(self) -> int:
        return self._history

    def _index(self, branch_id: int, history: int) -> int:
        return (branch_id ^ history) & self._mask

    def lookup(self, branch_id: int) -> Prediction:
        history = self._history
        index = self._index(branch_id, history)
        taken = self._table[index] >= 2
        # Speculative history update with the prediction.
        self._history = ((history << 1) | int(taken)) & self._history_mask
        return Prediction(taken=taken, meta=(index, history))

    def update(self, prediction: Prediction, taken: bool) -> None:
        index, history = prediction.meta
        self._table[index] = saturating_update(self._table[index], taken)
        if taken != prediction.taken:
            # Repair: rebuild history as if the true outcome had been
            # shifted in at lookup time.
            self._history = ((history << 1) | int(taken)) & self._history_mask

    def predict_and_train(self, branch_id: int, taken: bool) -> bool:
        # With the outcome in hand, the speculative shift and its repair
        # collapse to shifting in the true outcome directly.
        history = self._history
        table = self._table
        index = (branch_id ^ history) & self._mask
        counter = table[index]
        if taken:
            if counter < 3:
                table[index] = counter + 1
        elif counter > 0:
            table[index] = counter - 1
        self._history = ((history << 1) | int(taken)) & self._history_mask
        return (counter >= 2) == taken
