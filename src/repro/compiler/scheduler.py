"""Local list scheduler.

In-order machines execute in program order, so static instruction order *is*
the schedule.  This pass reorders each basic block's body along its
dependence DAG with latency-weighted critical-path priorities, which floats
loads (latency 4+) and other long-latency producers toward the top of the
block.  It is applied identically to baseline and transformed code, so
measured speedups isolate the Decomposed Branch Transformation itself.

Inside a resolution block this is what realises the paper's overlap: the
hoisted loads from the successor block issue underneath the pushed-down
compare's operand wait, instead of serialising behind the resolve.
"""

from __future__ import annotations

from typing import List

from ..ir import Function, build_depgraph
from ..isa import Instruction


def schedule_block_body(body: List[Instruction]) -> List[Instruction]:
    """Topological reorder of one block body by critical-path priority."""
    n = len(body)
    if n < 2:
        return list(body)
    graph = build_depgraph(body)
    priority = graph.critical_path_lengths()
    remaining_preds = {i: len(graph.predecessors(i)) for i in range(n)}
    # Ready list kept sorted by (-priority, original index) for determinism.
    ready = [i for i in range(n) if remaining_preds[i] == 0]
    scheduled: List[Instruction] = []
    order: List[int] = []
    while ready:
        ready.sort(key=lambda i: (-priority[i], i))
        node = ready.pop(0)
        order.append(node)
        scheduled.append(body[node])
        for succ in graph.successors(node):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    if len(scheduled) != n:  # pragma: no cover - DAG is acyclic by build
        raise AssertionError("scheduler dropped instructions")
    return scheduled


def schedule_function(func: Function) -> Function:
    """Schedule every block body in place; returns ``func``."""
    for block in func.blocks.values():
        block.body = schedule_block_body(block.body)
    return func
