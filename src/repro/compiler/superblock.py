"""Profile-guided layout (the superblock-style baseline ingredient).

Full superblock formation with tail duplication is out of scope (the paper
uses it only as the pre-existing treatment of *highly-biased* branches,
Fig. 1); what matters competitively is its first-order effect on an
in-order front end: make the likely direction of a biased branch the
fall-through so the hot path avoids taken-redirect bubbles.

For every conditional branch whose profiled taken-rate exceeds
``flip_threshold`` this pass flips the branch sense (``bnz -> T`` becomes
``bz -> F``) and relocates the hot block to sit immediately after the
branch.  Fall-through edges in this IR are by *name*, and lowering inserts
explicit JMPs wherever layout adjacency is missing, so the relocation is
always semantics-preserving.

The pass runs on baseline and transformed code alike, so measured speedups
isolate the Decomposed Branch Transformation itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..branchpred import BranchStats
from ..ir import Function
from ..isa import Opcode

_FLIPPED = {Opcode.BNZ: Opcode.BZ, Opcode.BZ: Opcode.BNZ}


def _move_after(func: Function, name: str, after: str) -> None:
    """Relocate block ``name`` to immediately follow ``after`` in layout."""
    if name == after or name == func.entry.name:
        return
    block = func.blocks.pop(name)
    items = []
    for existing_name, existing in func.blocks.items():
        items.append((existing_name, existing))
        if existing_name == after:
            items.append((name, block))
    func.blocks = dict(items)


def optimize_layout(
    func: Function,
    profile: Dict[int, BranchStats],
    flip_threshold: float = 0.7,
) -> int:
    """Make heavily-taken branches fall through to their hot successor.

    Returns the number of branches flipped.
    """
    flipped = 0
    for name in list(func.blocks):
        block = func.blocks[name]
        term = block.terminator
        if term is None or term.opcode not in _FLIPPED:
            continue
        branch_id = term.branch_id
        if branch_id is None or branch_id not in profile:
            continue
        stats = profile[branch_id]
        if not stats.executions:
            continue
        taken_rate = stats.taken / stats.executions
        if taken_rate < flip_threshold:
            continue
        if not isinstance(term.target, str) or block.fallthrough is None:
            continue
        hot = term.target
        if hot == func.entry.name or hot == name:
            continue
        # Leave loop latches alone: only forward branches are re-laid-out.
        if func.layout_index(hot) <= func.layout_index(name):
            continue
        cold = block.fallthrough
        block.terminator = replace(
            term, opcode=_FLIPPED[term.opcode], target=cold
        )
        block.fallthrough = hot
        _move_after(func, hot, name)
        flipped += 1
    return flipped
