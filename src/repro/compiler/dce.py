"""Dead-code elimination.

The Decomposed Branch Transformation can leave dead definitions behind
(e.g. a pushed-down slice's duplicate whose value one path never consumes).
This liveness-driven pass removes side-effect-free instructions whose
destinations are never read, shrinking the PISCS overhead; it is optional
in the pipeline (off by default to keep the baseline/experimental diff
minimal) and is exercised by the code-size studies.
"""

from __future__ import annotations

from typing import Set

from ..ir import Function, analyze_liveness, uses
from ..isa import Instruction


def _has_side_effects(inst: Instruction) -> bool:
    # Stores write memory; control flow steers; speculative loads are
    # side-effect-free by construction, but ordinary loads may fault, so
    # they are conservatively kept unless marked non-faulting.
    if inst.is_store or inst.is_control or inst.is_terminator:
        return True
    if inst.is_load and not inst.speculative:
        return True
    return False


def eliminate_dead_code(func: Function, max_passes: int = 8) -> int:
    """Remove dead definitions, iterating to a fixed point.

    Returns the number of instructions removed.
    """
    removed_total = 0
    for _ in range(max_passes):
        liveness = analyze_liveness(func)
        removed_this_pass = 0
        for name, block in func.blocks.items():
            live: Set[int] = set(liveness.live_out[name])
            if block.terminator is not None:
                live |= set(uses(block.terminator))
            kept = []
            for inst in reversed(block.body):
                dest = inst.dest
                dead = (
                    dest is not None
                    and dest not in live
                    and not _has_side_effects(inst)
                )
                if dead:
                    removed_this_pass += 1
                    continue
                kept.append(inst)
                if dest is not None:
                    live.discard(dest)
                live |= set(uses(inst))
            kept.reverse()
            block.body = kept
        removed_total += removed_this_pass
        if not removed_this_pass:
            break
    return removed_total
