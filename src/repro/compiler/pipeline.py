"""Compilation pipelines: baseline vs decomposed-branch.

Both pipelines share every pass except the decomposition itself, so a
baseline/experimental cycle comparison isolates the paper's contribution:

* baseline:     profile -> layout -> schedule -> lower
* experimental: profile -> layout -> select -> decompose -> schedule -> lower
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..branchpred import BranchStats, DirectionPredictor, HybridPredictor
from ..core.decompose import TransformConfig, TransformReport, transform_function
from ..core.selection import SelectionConfig, SelectionReport, select_candidates
from ..ir import Function, lower
from ..isa import Program
from .profile import profile_program
from .scheduler import schedule_function
from .superblock import optimize_layout


@dataclass
class CompilationResult:
    """A compiled program plus everything the metrics need."""

    program: Program
    function: Function
    profile: Dict[int, BranchStats]
    selection: Optional[SelectionReport] = None
    transform: Optional[TransformReport] = None


def compile_baseline(
    func: Function,
    profile: Optional[Dict[int, BranchStats]] = None,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    apply_layout: bool = True,
    profile_instructions: int = 2_000_000,
) -> CompilationResult:
    """The -O3-with-PGO stand-in: layout + local scheduling, no decomposition."""
    worked = func.clone()
    if profile is None:
        profile = profile_program(
            lower(worked),
            predictor_factory,
            max_instructions=profile_instructions,
        )
    if apply_layout:
        optimize_layout(worked, profile)
    schedule_function(worked)
    return CompilationResult(
        program=lower(worked), function=worked, profile=profile
    )


def compile_predicated(
    func: Function,
    profile: Optional[Dict[int, BranchStats]] = None,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    selection_config: SelectionConfig = SelectionConfig(),
    apply_layout: bool = True,
    profile_instructions: int = 2_000_000,
) -> CompilationResult:
    """Figure 1's alternative treatment: if-convert the unbiased,
    *unpredictable* branches (predication) instead of decomposing the
    predictable ones."""
    from ..core.selection import select_predication_candidates
    from .predicate import predicate_candidates

    worked = func.clone()
    if profile is None:
        profile = profile_program(
            lower(worked),
            predictor_factory,
            max_instructions=profile_instructions,
        )
    if apply_layout:
        optimize_layout(worked, profile)
    selection = select_predication_candidates(
        worked, profile, selection_config
    )
    predicated, _report = predicate_candidates(worked, selection.candidates)
    schedule_function(predicated)
    return CompilationResult(
        program=lower(predicated),
        function=predicated,
        profile=profile,
        selection=selection,
    )


def compile_decomposed(
    func: Function,
    profile: Optional[Dict[int, BranchStats]] = None,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    selection_config: SelectionConfig = SelectionConfig(),
    transform_config: TransformConfig = TransformConfig(),
    apply_layout: bool = True,
    profile_instructions: int = 2_000_000,
) -> CompilationResult:
    """The experimental pipeline with the Decomposed Branch Transformation."""
    worked = func.clone()
    if profile is None:
        profile = profile_program(
            lower(worked),
            predictor_factory,
            max_instructions=profile_instructions,
        )
    if apply_layout:
        optimize_layout(worked, profile)
    selection = select_candidates(worked, profile, selection_config)
    transformed, report = transform_function(
        worked, selection.candidates, transform_config
    )
    schedule_function(transformed)
    return CompilationResult(
        program=lower(transformed),
        function=transformed,
        profile=profile,
        selection=selection,
        transform=report,
    )
