"""Predication (if-conversion): Figure 1's treatment for unbiased,
*unpredictable* branches.

"The classic solution has been predication... the cost of converting the
control dependence into a data dependence and executing both paths is less
than the amortized cost of the branch mispredictions being removed"
(Section 1).  Implemented here so the Figure 1 quadrant prescriptions can
be validated empirically: predication wins where the decomposed branch
transformation loses, and vice versa.

Mechanics for an eligible diamond (A -> {B taken-off?, C} -> M):

* both successor bodies execute unconditionally, with every definition
  renamed to a fresh temporary;
* the paths' stores must pair up one-to-one on (base register, offset);
  each pair becomes a SEL of the two values followed by one store;
* every register the merge point consumes is reconciled with a SEL
  keyed on the branch condition;
* the branch, both blocks, and their terminators disappear -- A falls
  straight through to the merge block.

Loads on both paths become non-faulting (they now execute on iterations
that would never have reached them).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.decompose import free_temp_registers
from ..core.selection import Candidate
from ..ir import Function, analyze_liveness, predecessor_map
from ..isa import Instruction, Opcode


class PredicationError(Exception):
    """Raised when a requested if-conversion is impossible."""


@dataclass
class PredicationReport:
    converted: int = 0
    sels_inserted: int = 0
    stores_merged: int = 0
    blocks: List[str] = field(default_factory=list)


def _store_key(inst: Instruction) -> Tuple[int, int]:
    return (inst.srcs[1], inst.imm or 0)


def _eligible_body(body: Sequence[Instruction]) -> bool:
    """Only plain computation and stores may be if-converted."""
    return all(
        not inst.is_control and inst.opcode is not Opcode.HALT
        for inst in body
    )


def _rename_path(
    body: Sequence[Instruction],
    temp_pool: List[int],
) -> Tuple[List[Instruction], Dict[int, int], List[Instruction]]:
    """Copy a path with every definition renamed to a temporary.

    Returns (renamed instructions, final rename map, renamed stores in
    order).  Stores keep their (base, offset) but read renamed sources.
    """
    rename: Dict[int, int] = {}
    out: List[Instruction] = []
    stores: List[Instruction] = []
    for inst in body:
        new_srcs = tuple(rename.get(src, src) for src in inst.srcs)
        if inst.is_store:
            # Store base must be a path-invariant register (not renamed):
            # a path-computed address could fault or alias arbitrarily.
            if inst.srcs[1] in rename:
                raise PredicationError("store through path-computed base")
            renamed = replace(inst, srcs=new_srcs)
            stores.append(renamed)
            continue
        dest = inst.dest
        new_dest = dest
        if dest is not None:
            if dest not in rename:
                if not temp_pool:
                    raise PredicationError("out of temporaries")
                rename[dest] = temp_pool.pop()
            new_dest = rename[dest]
        speculative = inst.speculative or inst.is_load
        out.append(
            replace(
                inst, dest=new_dest, srcs=new_srcs, speculative=speculative
            )
        )
    return out, rename, stores


def predicate_branch(
    func: Function,
    block_name: str,
    temp_pool: Optional[List[int]] = None,
) -> PredicationReport:
    """If-convert the diamond rooted at ``block_name``, in place."""
    block_a = func.block(block_name)
    branch = block_a.terminator
    if branch is None or not branch.is_cond_branch:
        raise PredicationError(f"{block_name} does not end in a branch")
    name_taken = branch.target
    name_fall = block_a.fallthrough
    if not isinstance(name_taken, str) or name_fall is None:
        raise PredicationError(f"{block_name} branch lacks two targets")
    if name_taken == name_fall:
        raise PredicationError(f"{block_name} is not a diamond")
    taken_block = func.block(name_taken)
    fall_block = func.block(name_fall)

    preds = predecessor_map(func)
    if len(preds[name_taken]) != 1 or len(preds[name_fall]) != 1:
        raise PredicationError("successors have other predecessors")

    # Both paths must rejoin at one merge block.
    taken_succs = taken_block.successors()
    fall_succs = fall_block.successors()
    if len(taken_succs) != 1 or taken_succs != fall_succs:
        raise PredicationError("paths do not rejoin at a single merge")
    merge = taken_succs[0]

    if not (_eligible_body(taken_block.body) and _eligible_body(fall_block.body)):
        raise PredicationError("path contains control flow")

    if temp_pool is None:
        temp_pool = free_temp_registers(func)

    cond = branch.srcs[0]
    # BNZ: cond != 0 means the *taken* block runs; BZ inverts.
    taken_when_nonzero = branch.opcode is Opcode.BNZ

    taken_code, taken_map, taken_stores = _rename_path(
        taken_block.body, temp_pool
    )
    fall_code, fall_map, fall_stores = _rename_path(
        fall_block.body, temp_pool
    )

    # Stores must pair up exactly (same count, same addresses, in order).
    if len(taken_stores) != len(fall_stores):
        raise PredicationError("store counts differ between paths")
    for a, b in zip(taken_stores, fall_stores):
        if _store_key(a) != _store_key(b):
            raise PredicationError("stores address different locations")

    liveness = analyze_liveness(func)
    merge_live = set(liveness.live_in[merge])

    report = PredicationReport()
    new_body: List[Instruction] = list(taken_code) + list(fall_code)

    def select(dest: int, true_reg: int, false_reg: int) -> None:
        if not taken_when_nonzero:
            true_reg, false_reg = false_reg, true_reg
        new_body.append(
            Instruction(
                opcode=Opcode.SEL, dest=dest, srcs=(cond, true_reg, false_reg)
            )
        )
        report.sels_inserted += 1

    # Reconcile merged stores.
    for taken_store, fall_store in zip(taken_stores, fall_stores):
        if not temp_pool:
            raise PredicationError("out of temporaries")
        value_temp = temp_pool.pop()
        select(value_temp, taken_store.srcs[0], fall_store.srcs[0])
        new_body.append(replace(taken_store, srcs=(value_temp, taken_store.srcs[1])))
        report.stores_merged += 1

    # Reconcile registers the merge consumes.
    for reg in sorted(merge_live):
        defined_taken = reg in taken_map
        defined_fall = reg in fall_map
        if not defined_taken and not defined_fall:
            continue  # flows around the diamond untouched
        select(
            reg,
            taken_map.get(reg, reg),
            fall_map.get(reg, reg),
        )

    block_a.body.extend(new_body)
    block_a.set_terminator(None)
    block_a.fallthrough = merge
    del func.blocks[name_taken]
    del func.blocks[name_fall]
    report.converted = 1
    report.blocks.append(block_name)
    return report


def predicate_candidates(
    func: Function, candidates: Sequence[Candidate]
) -> Tuple[Function, PredicationReport]:
    """If-convert every candidate diamond in a clone of ``func``.

    Candidates whose shape is ineligible are skipped (the paper's
    predication is likewise opportunistic).
    """
    worked = func.clone()
    total = PredicationReport()
    base_pool = free_temp_registers(worked)
    for candidate in candidates:
        try:
            report = predicate_branch(
                worked, candidate.block, temp_pool=list(base_pool)
            )
        except PredicationError:
            continue
        total.converted += report.converted
        total.sels_inserted += report.sels_inserted
        total.stores_merged += report.stores_merged
        total.blocks.extend(report.blocks)
    worked.validate()
    return worked, total
