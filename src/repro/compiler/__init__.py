"""Compiler passes: profiling, scheduling, layout, and the baseline /
decomposed compilation pipelines."""

from .dce import eliminate_dead_code
from .pipeline import (
    CompilationResult,
    compile_baseline,
    compile_decomposed,
    compile_predicated,
)
from .predicate import (
    PredicationError,
    PredicationReport,
    predicate_branch,
    predicate_candidates,
)
from .profile import profile_function, profile_program
from .scheduler import schedule_block_body, schedule_function
from .superblock import optimize_layout

__all__ = [
    "CompilationResult",
    "compile_baseline",
    "compile_decomposed",
    "compile_predicated",
    "eliminate_dead_code",
    "PredicationError",
    "PredicationReport",
    "predicate_branch",
    "predicate_candidates",
    "optimize_layout",
    "profile_function",
    "profile_program",
    "schedule_block_body",
    "schedule_function",
]
