"""Profile collection (the paper's TRAIN runs).

"We run the TRAIN input sets to completion in PTLSim to collect branch bias
and predictability" (Section 5).  Here: execute the baseline program
functionally, record the interleaved branch trace, and measure it with the
same predictor model the target machine uses, so the selection heuristic
sees the predictability the hardware will actually achieve (including
cross-branch aliasing).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..branchpred import BranchStats, DirectionPredictor, HybridPredictor, measure_trace
from ..ir import Function, lower
from ..isa import Program
from ..uarch import collect_branch_trace


def profile_program(
    program: Program,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    max_instructions: int = 2_000_000,
) -> Dict[int, BranchStats]:
    """Per-branch-site bias and predictability for one program run."""
    trace = collect_branch_trace(program, max_instructions=max_instructions)
    return measure_trace(trace, predictor_factory)


def profile_function(
    func: Function,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
    max_instructions: int = 2_000_000,
) -> Dict[int, BranchStats]:
    """Lower and profile an IR function directly."""
    return profile_program(
        lower(func), predictor_factory, max_instructions=max_instructions
    )
