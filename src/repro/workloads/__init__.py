"""Synthetic SPEC-calibrated workloads, branch-outcome processes, and the
Figure 6 kernel."""

from .branch_process import (
    BranchSiteSpec,
    PATTERN_PERIOD,
    empirical_bias,
    generate_outcomes,
)
from .kernels import FIG6_SITE, omnetpp_carray_add
from .mcf_kernel import MCF_SITE, mcf_pointer_chase
from .spec import (
    BENCHMARKS,
    BenchmarkDef,
    PaperRow,
    SUITES,
    site_population,
    spec_benchmark,
    suite_benchmarks,
)
from .synthetic import (
    OUTCOME_BASE,
    PAYLOAD_BASE,
    RESULT_BASE,
    WorkloadSpec,
    build_workload,
    dynamic_instructions_per_iteration,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkDef",
    "BranchSiteSpec",
    "FIG6_SITE",
    "MCF_SITE",
    "OUTCOME_BASE",
    "PATTERN_PERIOD",
    "PAYLOAD_BASE",
    "PaperRow",
    "RESULT_BASE",
    "SUITES",
    "WorkloadSpec",
    "build_workload",
    "dynamic_instructions_per_iteration",
    "empirical_bias",
    "generate_outcomes",
    "mcf_pointer_chase",
    "omnetpp_carray_add",
    "site_population",
    "spec_benchmark",
    "suite_benchmarks",
]
