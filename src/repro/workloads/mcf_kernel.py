"""An mcf-style kernel: pointer chasing with a guarded relink.

SPEC's mcf walks arc/node lists and conditionally relinks them -- long
serial chains of cache-missing loads guarded by data-dependent branches.
The paper singles mcf out (Section 5.1): its branch has high ASPCB (107
stall cycles per converted branch) and its "large number of long latency
misses is difficult for the code generator to cover with useful
instructions".

This kernel reproduces that shape directly: a Sattolo pointer chase where
each visited node carries a flag word; flagged nodes take a relink path
(extra dependent load + stores), unflagged nodes a cheap path.  The flag
stream is sticky-Markov, so the branch sits exactly in the paper's
predictable-but-unbiased quadrant while the condition hangs off a
DRAM-bound load.
"""

from __future__ import annotations

import random

from ..ir import Function, FunctionBuilder
from .branch_process import BranchSiteSpec, generate_outcomes
from .synthetic import _chase_chain, _stable_hash

#: Word-addressed layout.
_NODE_BASE = 1 << 22
_NODE_LINES = 4096  # 256 KB of nodes: misses to L3 on first touch
_STATS_BASE = 1 << 12

#: The guard branch: unbiased but quite predictable, like the paper's
#: converted mcf branches.
MCF_SITE = BranchSiteSpec(bias=0.62, predictability=0.9)


def mcf_pointer_chase(iterations: int = 512, seed: int = 0) -> Function:
    """Build the kernel as an IR function.

    Node record layout (one cache line each): word 0 = next-node pointer,
    word 1 = flag (branch driver), word 2 = payload, word 3 = backlink
    slot the relink path writes.
    """
    fb = FunctionBuilder(f"mcf_pointer_chase.seed{seed}")

    rng = random.Random(_stable_hash("mcf-kernel") ^ seed)
    chain = _chase_chain(_NODE_BASE, _NODE_LINES, rng)
    fb.function.data.update(chain)
    flags = generate_outcomes(
        MCF_SITE, iterations, site_key=0xACF, input_seed=seed
    )
    # Flags are attached to the i-th *visited* node, so walk the chain the
    # same way the program will.
    cursor = _NODE_BASE
    for i in range(iterations):
        fb.function.data[cursor + 1] = 1 if flags[i] else 0
        fb.function.data[cursor + 2] = (i * 37) & 0xFF
        cursor = chain[cursor]

    r_i, r_n, r_node, r_acc = 1, 2, 3, 4
    r_flag, r_cond, r_payload, r_extra, r_tmp = 8, 9, 10, 11, 12

    init = fb.block("init")
    init.li(r_i, 0)
    init.li(r_n, iterations)
    init.li(r_node, _NODE_BASE)
    init.li(r_acc, 0)
    init.block.fallthrough = "walk"

    # Block A: advance the chase, load the flag, branch on it.  The flag
    # load is on the same line as the pointer, so the *chase* miss is the
    # resolution stall -- exactly mcf's profile.
    walk = fb.block("walk")
    walk.load(r_node, r_node, offset=0)  # node = node->next (serial miss)
    walk.load(r_flag, r_node, offset=1)  # node->flag
    walk.load(r_payload, r_node, offset=2)  # node->payload
    walk.cmp_ne(r_cond, r_flag, imm=0)
    walk.bnz(r_cond, target="relink", fallthrough="skip", branch_id=0)

    # Not-taken path: cheap bookkeeping.
    skip = fb.block("skip")
    skip.add(r_acc, r_acc, r_payload)
    skip.store(r_acc, r_node, offset=3)
    skip.jmp("merge")

    # Taken path: the relink -- extra dependent load plus repair stores.
    relink = fb.block("relink")
    relink.load(r_extra, r_node, offset=0)  # peek at the successor
    relink.add(r_tmp, r_payload, imm=13)
    relink.add(r_acc, r_acc, r_tmp)
    relink.store(r_acc, r_node, offset=3)
    relink.block.fallthrough = "merge"

    merge = fb.block("merge")
    merge.and_(r_acc, r_acc, imm=(1 << 40) - 1)
    merge.block.fallthrough = "tail"

    tail = fb.block("tail")
    tail.add(r_i, r_i, imm=1)
    tail.cmp_lt(r_tmp, r_i, r_n)
    tail.bnz(r_tmp, target="walk", fallthrough="done", branch_id=1)

    done = fb.block("done")
    done.store(r_acc, r_node, offset=4)
    done.store(r_acc, r_i, offset=_STATS_BASE)
    done.halt()

    return fb.build()
