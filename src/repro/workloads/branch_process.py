"""Branch-outcome processes with independently controlled bias and
predictability.

The paper's whole opportunity is the gap between these two quantities
(Figures 2/3): a branch can be 60/40 *biased* yet 90% *predictable*.  We
synthesise such streams with a two-state (taken/not-taken) Markov chain:

* stationary occupancy sets the **bias** ``b``,
* self-transition stickiness sets the **predictability** ``p`` (the
  accuracy of the best history predictor, "predict the last outcome"):

  solving the stationarity + accuracy equations gives

      P(taken  | taken)     = (p - 1 + 2b) / (2b)
      P(ntaken | not taken) = 1 - (1 - p) / (2 (1 - b))

  which realises any pair with ``p >= |2b - 1|``.

Run-structured streams like this match how real unbiased-but-predictable
branches behave (the paper's omnetpp example guards an occasionally-taken
grow path) and -- unlike i.i.d. noise over a pattern -- produce
low-entropy global histories that a gshare-class predictor actually
learns within a profiling run.

A pure i.i.d. Bernoulli stream (``patterned=False``) gives the degenerate
predication-class case, predictability ~= bias.

Streams are materialised into the workload's data segment, so branch
directions in the simulated programs are genuinely data-dependent loads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Retained for API compatibility with pattern-based experiments.
PATTERN_PERIOD = 8


@dataclass(frozen=True)
class BranchSiteSpec:
    """Target statistics for one static branch site."""

    bias: float  # majority-direction fraction, in [0.5, 1.0]
    predictability: float  # target predictor accuracy
    #: True: sticky-Markov stream (predictability dialed independently).
    #: False: i.i.d. stream (predictability collapses to bias).
    patterned: bool = True
    #: Majority direction; True = taken.
    majority_taken: bool = True
    #: Whether this site carries the benchmark's heavy cache behaviour
    #: (pointer-chase condition and cold successor loads).  The paper's
    #: ASPCB/ALPBB columns characterise the *converted* branches, so the
    #: workload generator marks candidate sites heavy.
    heavy: bool = True

    def __post_init__(self) -> None:
        if not 0.5 <= self.bias <= 1.0:
            raise ValueError(f"bias {self.bias} outside [0.5, 1]")
        if not 0.0 <= self.predictability <= 1.0:
            raise ValueError(
                f"predictability {self.predictability} outside [0, 1]"
            )

    def transition_probabilities(self) -> "tuple[float, float]":
        """(P(majority | majority), P(minority | minority)) realising the
        bias/predictability targets; clamped to the feasible region."""
        b = min(max(self.bias, 0.501), 0.999)
        p = min(max(self.predictability, abs(2.0 * b - 1.0) + 1e-6), 0.999)
        stay_major = (p - 1.0 + 2.0 * b) / (2.0 * b)
        stay_minor = 1.0 - (1.0 - p) / (2.0 * (1.0 - b))
        return (
            min(max(stay_major, 0.0), 1.0),
            min(max(stay_minor, 0.0), 1.0),
        )


def generate_outcomes(
    spec: BranchSiteSpec, length: int, site_key: int, input_seed: int = 0
) -> List[bool]:
    """Materialise ``length`` outcomes for one site.

    ``site_key`` identifies the static site (stable across inputs);
    ``input_seed`` selects the run realisation -- mirroring the paper's
    TRAIN-profiling / REF-evaluation methodology.
    """
    rng = random.Random((site_key << 20) ^ (input_seed * 1000003) ^ 0x5EED)
    if not spec.patterned:
        threshold = spec.bias if spec.majority_taken else 1.0 - spec.bias
        return [rng.random() < threshold for _ in range(length)]

    stay_major, stay_minor = spec.transition_probabilities()
    in_major = True
    outcomes: List[bool] = []
    for _ in range(length):
        bit = spec.majority_taken if in_major else not spec.majority_taken
        outcomes.append(bit)
        stay = stay_major if in_major else stay_minor
        if rng.random() >= stay:
            in_major = not in_major
    return outcomes


def empirical_bias(outcomes: List[bool]) -> float:
    """Majority-direction fraction of a concrete stream."""
    if not outcomes:
        return 1.0
    taken = sum(outcomes) / len(outcomes)
    return max(taken, 1.0 - taken)
