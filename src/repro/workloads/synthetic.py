"""Synthetic SPEC-like workload generator.

A workload is a hot loop over ``iterations``; each iteration walks a fixed
sequence of *sites* -- hammock regions shaped like the paper's Figure 5:

* block **A** loads this site's branch-outcome word (making the branch
  condition genuinely data-dependent on a load), optionally threads the
  condition through a step of a *pointer chase* whose reuse distance is
  dialed to miss to L2/L3/DRAM (the ASPCB knob: how long the resolution
  stalls), performs a compare, and branches forward;
* successor blocks **B** (not taken) and **C** (taken) each advance a
  second pointer chase and issue payload loads -- hot (L1-resident) lines
  plus cold lines off the chase pointer, which sets the benchmark's
  D-cache profile and the MLP the transformation can hoist -- combine
  them with ALU/FP arithmetic, and store a result, with the store placed
  to bound the hoistable prefix (Table 2's PHI);
* a merge block folds the path result into a global accumulator so the
  architectural output distinguishes every control decision (the
  differential-correctness hook).

Cache behaviour is controlled by reuse distance: each chase is a Sattolo
single-cycle random permutation over a window of K lines, so successive
steps visit fresh lines with no spatial pattern (immune to next-line
prefetching -- unlike the sequential outcome arrays, which a stream
prefetcher covers exactly as real hardware would), and a window revisits
itself only after K steps, steadily hitting whichever level a K-line
working set spills to.  Chases are also *serial* (each step's address is
the previous step's data), which is precisely the mcf/omnetpp-style
behaviour whose stalls the paper's transformation covers.

Branch direction streams come from :mod:`repro.workloads.branch_process`,
so each site has an independently-dialed bias and predictability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir import Function, FunctionBuilder
from .branch_process import BranchSiteSpec, generate_outcomes

#: Word-addressed memory map.
OUTCOME_BASE = 1 << 16
PAYLOAD_BASE = 1 << 21
RESULT_BASE = 1 << 12
COLD_BASE = 1 << 23

#: Chase-window sizes in cache lines per target miss level.  The window
#: times the traffic between revisits spills past L1 / L2 / L3.
CHASE_WINDOW_LINES = {"l2": 1024, "l3": 8192, "dram": 65536}

#: Words per cache line.
_LINE_WORDS = 8

# Fixed register roles.
_R_I = 1  # loop counter
_R_N = 2  # iteration count
_R_OUT = 3  # OUTCOME_BASE + i
_R_IDX = 4  # i * 9  (hot payload walk)
_R_RES = 6  # RESULT_BASE
_R_ACC = 7  # global accumulator
_R_T0 = 44  # head/tail scratch
_R_T1 = 45
_R_CHASE_COND = 46  # serial pointer chase feeding branch conditions
_R_CHASE_COLD = 47  # serial pointer chase feeding successor cold loads

#: Three rotating per-site scratch sets; all below FIRST_TEMP_REGISTER.
_SCRATCH_SETS = [list(range(8, 20)), list(range(20, 32)), list(range(32, 44))]


def _stable_hash(text: str) -> int:
    """Deterministic across processes (unlike ``hash``)."""
    value = 2166136261
    for ch in text:
        value = ((value ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return value


def _chase_chain(base_word: int, lines: int, rng: random.Random) -> Dict[int, int]:
    """A single-cycle pointer chain over ``lines`` cache lines.

    Sattolo's algorithm guarantees one cycle, so the reuse distance of
    every line is exactly ``lines`` steps; the random order defeats
    spatial prefetching.
    """
    perm = list(range(lines))
    for i in range(lines - 1, 0, -1):
        j = rng.randrange(i)
        perm[i], perm[j] = perm[j], perm[i]
    return {
        base_word + i * _LINE_WORDS: base_word + perm[i] * _LINE_WORDS
        for i in range(lines)
    }


@dataclass
class WorkloadSpec:
    """Everything needed to synthesise one benchmark-like program."""

    name: str
    suite: str
    sites: List[BranchSiteSpec] = field(default_factory=list)
    iterations: int = 400
    #: Hot payload loads per successor block (L1-resident).
    loads_not_taken: int = 3
    loads_taken: int = 3
    #: Hot payload loads in the condition block besides the outcome load.
    loads_cond_block: int = 1
    #: Cold loads per successor block, taken off the cold chase pointer.
    cold_loads_per_block: int = 0
    cold_miss: str = "l3"
    alu_per_block: int = 3
    #: Fraction of each successor block placed above its store; this is
    #: what bounds the hoistable prefix (Table 2's PHI).
    hoist_barrier_frac: float = 0.8
    #: Hard cap (in instructions) on the upper portion, reflecting how
    #: much the paper's compiler *actually* hoisted (Table 2's PDIH).
    #: None = no cap.
    hoist_cap: int = 0  # 0 -> uncapped
    #: Per-site hot payload region in words (kept small enough that all
    #: sites' hot regions stay L1-resident).
    footprint_words: int = 256
    #: Miss level of the chase step threaded into the branch condition:
    #: "none", "l2", "l3", or "dram".  This is the ASPCB knob.
    cond_miss: str = "none"
    #: Extra dependent ALU ops between the outcome load and the compare.
    cond_chain: int = 1
    #: Fraction of arithmetic emitted as FP operations.
    fp_fraction: float = 0.0
    #: Number of distinct "reference inputs" (noise realisations).
    inputs: int = 2
    #: Per-input bias wobble, mimicking input-dependent branch bias.
    bias_jitter: float = 0.02
    #: Never-executed code emitted after the hot loop, as a multiple of
    #: the hot instruction count.  Real benchmarks are mostly cold code,
    #: which is what keeps the paper's static-size increase (PISCS) near
    #: 9%; without it the synthetic all-hot programs overstate it.
    cold_code_factor: float = 2.5

    def __post_init__(self) -> None:
        if self.footprint_words & (self.footprint_words - 1):
            raise ValueError("footprint_words must be a power of two")
        if self.cond_miss not in ("none",) + tuple(CHASE_WINDOW_LINES):
            raise ValueError(f"bad cond_miss {self.cond_miss!r}")
        if self.cold_miss not in CHASE_WINDOW_LINES:
            raise ValueError(f"bad cold_miss {self.cold_miss!r}")

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def outcome_region(self) -> int:
        """Per-site outcome region: power of two covering the run."""
        region = 1
        while region < self.iterations:
            region <<= 1
        return region

    @property
    def cond_chase_base(self) -> int:
        return COLD_BASE

    @property
    def cold_chase_base(self) -> int:
        return COLD_BASE + CHASE_WINDOW_LINES["dram"] * _LINE_WORDS

    def site_key(self, site: int) -> int:
        return _stable_hash(self.name) * 10007 + site

    def build(self, seed: int = 0) -> Function:
        """Synthesise the IR function for input ``seed``."""
        return build_workload(self, seed)


def _jittered(spec: WorkloadSpec, site: BranchSiteSpec, seed: int) -> BranchSiteSpec:
    """Apply the per-input bias wobble."""
    if not spec.bias_jitter or seed == 0:
        return site
    delta = spec.bias_jitter * (1 if seed % 2 else -1) * (1 + seed % 3) / 2.0
    bias = min(max(site.bias + delta, 0.5), 0.995)
    predictability = max(site.predictability, bias)
    return BranchSiteSpec(
        bias=bias,
        predictability=predictability,
        patterned=site.patterned,
        majority_taken=site.majority_taken,
        heavy=site.heavy,
    )


def build_workload(spec: WorkloadSpec, seed: int = 0) -> Function:
    """Emit the IR function plus its initialised data segment."""
    if not spec.sites:
        raise ValueError(f"workload {spec.name} has no branch sites")
    fb = FunctionBuilder(f"{spec.name}.seed{seed}")
    n_sites = spec.num_sites
    iters = spec.iterations
    hot_mask = spec.footprint_words - 1
    region = spec.outcome_region

    # ---- data segment -----------------------------------------------------
    for s, site in enumerate(spec.sites):
        outcomes = generate_outcomes(
            _jittered(spec, site, seed), iters, spec.site_key(s), seed
        )
        base = OUTCOME_BASE + s * region
        for i, bit in enumerate(outcomes):
            if bit:
                fb.function.data[base + i] = 1

    chain_rng = random.Random(_stable_hash(spec.name) ^ 0xC0FFEE)
    use_cond_chase = spec.cond_miss != "none"
    use_cold_chase = spec.cold_loads_per_block > 0
    heavy_count = sum(1 for site in spec.sites if site.heavy) or 1

    def chase_window(level: str) -> int:
        """Window (in lines) realising the target miss level.

        A chase advances once per heavy site per iteration, so a window of
        K lines revisits after K/heavy_count iterations; sizing K against
        the estimated line traffic in between pins the reuse distance
        between the right cache levels.  "dram" needs no revisit at all
        (every step is a compulsory miss).  Short runs cap the window so
        at least the last two-thirds of the run sees steady-state reuse.
        """
        if level == "dram":
            return CHASE_WINDOW_LINES["dram"]
        est_lines_per_iteration = 15
        target_traffic = 900 if level == "l2" else 6000  # lines between reuses
        window = max(
            16, round(heavy_count * target_traffic / est_lines_per_iteration)
        )
        return min(window, max(16, heavy_count * iters // 3))

    if use_cond_chase:
        fb.function.data.update(
            _chase_chain(
                spec.cond_chase_base, chase_window(spec.cond_miss), chain_rng
            )
        )
    if use_cold_chase:
        fb.function.data.update(
            _chase_chain(
                spec.cold_chase_base, chase_window(spec.cold_miss), chain_rng
            )
        )

    # ---- init & loop head ---------------------------------------------------
    init = fb.block("init")
    init.li(_R_I, 0)
    init.li(_R_N, iters)
    init.li(_R_RES, RESULT_BASE)
    init.li(_R_ACC, 0)
    if use_cond_chase:
        init.li(_R_CHASE_COND, spec.cond_chase_base)
    if use_cold_chase:
        init.li(_R_CHASE_COLD, spec.cold_chase_base)
    init.block.fallthrough = "head"

    head = fb.block("head")
    head.add(_R_OUT, _R_I, imm=OUTCOME_BASE)
    head.shl(_R_T0, _R_I, imm=3)
    head.add(_R_IDX, _R_T0, _R_I)  # i * 9: hot-walk word index
    head.block.fallthrough = "s0A"

    def emit_payload_block(
        bb,
        regs: List[int],
        site: int,
        rv: int,
        n_hot: int,
        base_offset: int,
        path_salt: int,
        heavy: bool,
    ) -> int:
        """Chase step + loads + arithmetic for one successor block.

        The block's store acts as the hoist barrier (stores are never
        speculated above a resolution point), so it is inserted at the
        ``hoist_barrier_frac`` position of the instruction sequence --
        realising the benchmark's PHI (% of the succeeding block that is
        hoistable).  Returns the register carrying the block's result
        (live into the merge).
        """
        plan = []  # thunks emitting one instruction each
        load_regs: List[int] = []
        rsum = regs[10]
        if use_cold_chase and heavy:
            # Advance the cold chase: the address is last step's data, so
            # the step is serial and the line is fresh (missing to the
            # cold_miss level).  Extra cold loads come off the same
            # pointer at non-adjacent line offsets.
            plan.append(
                lambda: bb.load(_R_CHASE_COLD, _R_CHASE_COLD, offset=0)
            )
            load_regs.append(_R_CHASE_COLD)
            for j in range(1, spec.cold_loads_per_block):
                reg = regs[3 + (j - 1) % 7]
                plan.append(
                    lambda reg=reg, j=j: bb.load(
                        reg, _R_CHASE_COLD, offset=j * 136
                    )
                )
                load_regs.append(reg)
        rp = regs[0]
        plan.append(lambda: bb.and_(rp, _R_IDX, imm=hot_mask))
        plan.append(
            lambda: bb.add(
                rp, rp, imm=PAYLOAD_BASE + site * spec.footprint_words
            )
        )
        hot_dests = []
        for j in range(n_hot):
            reg = regs[3 + ((len(load_regs) + len(hot_dests)) % 7)]
            plan.append(
                lambda reg=reg, j=j: bb.load(
                    reg, rp, offset=base_offset + j
                )
            )
            hot_dests.append(reg)
            if reg not in load_regs:
                load_regs.append(reg)
        first_src = load_regs[0] if load_regs else rv
        plan.append(lambda: bb.add(rsum, first_src, imm=path_salt))
        fp_ops = round(spec.fp_fraction * spec.alu_per_block)
        for j in range(spec.alu_per_block):
            src = load_regs[j % len(load_regs)] if load_regs else rv
            if j < fp_ops:
                plan.append(lambda src=src: bb.fadd(rsum, rsum, src))
            else:
                plan.append(lambda src=src: bb.add(rsum, rsum, src))
        plan.append(lambda: bb.add(rsum, rsum, rv))

        # Insert the store barrier at the PHI position.  It stores rv
        # (always available) so it can sit anywhere in the sequence.
        barrier = round(spec.hoist_barrier_frac * len(plan))
        if spec.hoist_cap:
            barrier = min(barrier, spec.hoist_cap)
        barrier = min(max(barrier, 0), len(plan))
        for index, emit in enumerate(plan):
            if index == barrier:
                bb.store(rv, _R_RES, offset=site)
            emit()
        if barrier == len(plan):
            bb.store(rv, _R_RES, offset=site)
        return rsum

    # ---- sites ---------------------------------------------------------------
    for s in range(n_sites):
        regs = _SCRATCH_SETS[s % len(_SCRATCH_SETS)]
        heavy = spec.sites[s].heavy
        rv, rc = regs[1], regs[2]
        next_block = f"s{s + 1}A" if s + 1 < n_sites else "tail"

        a = fb.block(f"s{s}A")
        a.load(rv, _R_OUT, offset=s * region)  # the branch outcome
        for j in range(spec.loads_cond_block):
            rp = regs[0]
            if j == 0:
                a.and_(rp, _R_IDX, imm=hot_mask)
                a.add(rp, rp, imm=PAYLOAD_BASE + s * spec.footprint_words)
            a.load(regs[3 + j], rp, offset=64 + j)
        # The resolution slice: optionally thread a chase step into the
        # condition (dependence only -- its value is masked to zero), then
        # a dependent chain into the compare.
        chain_reg = rv
        if use_cond_chase and heavy:
            rz = regs[9]
            a.load(_R_CHASE_COND, _R_CHASE_COND, offset=0)
            a.and_(rz, _R_CHASE_COND, imm=0)  # always zero; dependence only
            a.or_(rz, rz, rv)  # semantically rv
            chain_reg = rz
        for _ in range(max(0, spec.cond_chain - 1)):
            a.and_(regs[9], chain_reg, imm=1)
            chain_reg = regs[9]
        a.cmp_ne(rc, chain_reg, imm=0)
        a.bnz(rc, target=f"s{s}C", fallthrough=f"s{s}B", branch_id=s)

        b = fb.block(f"s{s}B")
        rsum_b = emit_payload_block(
            b, regs, s, rv, spec.loads_not_taken, 16,
            path_salt=s * 3 + 1, heavy=heavy,
        )
        b.jmp(f"s{s}M")

        c = fb.block(f"s{s}C")
        rsum_c = emit_payload_block(
            c, regs, s, rv, spec.loads_taken, 32,
            path_salt=s * 7 + 2, heavy=heavy,
        )
        c.block.fallthrough = f"s{s}M"

        assert rsum_b == rsum_c  # shared scratch set: merge reads one reg
        m = fb.block(f"s{s}M")
        m.add(_R_ACC, _R_ACC, rsum_b)
        m.block.fallthrough = next_block

    # ---- loop tail & exit --------------------------------------------------------
    tail = fb.block("tail")
    tail.add(_R_I, _R_I, imm=1)
    tail.cmp_lt(_R_T1, _R_I, _R_N)
    tail.bnz(_R_T1, target="head", fallthrough="exit", branch_id=n_sites)

    exit_block = fb.block("exit")
    exit_block.store(_R_ACC, _R_RES, offset=1023)
    exit_block.halt()

    _emit_cold_code(fb, spec)
    return fb.build()


def _emit_cold_code(fb: FunctionBuilder, spec: WorkloadSpec) -> None:
    """Append never-executed straight-line blocks after the hot loop.

    They carry no conditional branches, so profiling and selection are
    unaffected; they only dilute static code size the way a real
    benchmark's cold code does.
    """
    if spec.cold_code_factor <= 0:
        return
    hot = fb.function.static_instruction_count()
    per_block = 24
    blocks = max(1, round(spec.cold_code_factor * hot / per_block))
    for b in range(blocks):
        bb = fb.block(f"cold{b}")
        for k in range(per_block - 1):
            reg = 8 + ((b * 7 + k) % 32)
            if k % 5 == 3:
                bb.load(reg, _R_RES, offset=k)
            else:
                bb.add(reg, 8 + ((k + 1) % 32), imm=b * per_block + k)
        if b + 1 < blocks:
            bb.jmp(f"cold{b + 1}")
        else:
            bb.halt()


def dynamic_instructions_per_iteration(spec: WorkloadSpec) -> int:
    """Rough per-iteration dynamic instruction count, for calibration."""
    per_site_a = (
        1  # outcome load
        + spec.loads_cond_block
        + 2  # hot address computation
        + (3 if spec.cond_miss != "none" else 0)
        + max(0, spec.cond_chain - 1)
        + 2  # compare + branch
    )
    per_site_succ = (
        max(spec.loads_taken, spec.loads_not_taken)
        + spec.cold_loads_per_block
        + 2  # hot address computation
        + spec.alu_per_block
        + 4
    )
    return 6 + spec.num_sites * (per_site_a + per_site_succ + 1) + 3
