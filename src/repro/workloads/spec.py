"""Per-SPEC-benchmark workload parameters.

SPEC itself is licensed and the paper's binaries are unavailable, so each
benchmark becomes a synthetic workload *calibrated to the paper's own
characterisation of it*: Table 2's columns (PBC, ALPBB, PHI, MPPKI and the
D-cache commentary of Sections 5.1/5.2) are the generator inputs, and the
paper's SPD column is the measured output we compare against in
EXPERIMENTS.md.  SPEC 2000 rows are parameterised from the paper's textual
description (Sections 5.1-5.2), which gives PBC, predictability, and cache
behaviour per benchmark.

``paper`` fields carry the published values verbatim for reporting; the
remaining fields drive :class:`repro.workloads.synthetic.WorkloadSpec`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .branch_process import BranchSiteSpec
from .synthetic import (
    WorkloadSpec,
    _stable_hash,
    dynamic_instructions_per_iteration,
)

#: D-cache behaviour class -> (cold loads per successor block, reuse level).
#: "low" keeps every payload load L1-resident; heavier classes add loads
#: whose reuse distance steadily misses to L2, L3, or DRAM.
_DCACHE_CLASS = {
    "low": (0, "l2"),
    "mid": (1, "l2"),
    "high": (2, "l3"),
    "huge": (2, "dram"),
}


@dataclass(frozen=True)
class PaperRow:
    """The published Table 2 numbers (or text-derived estimates for
    SPEC 2000, marked by ``from_text``)."""

    spd: float  # % speedup, 4-wide geomean over REF inputs
    pbc: float  # % static forward branches converted
    pdih: float  # % dynamic instructions hoisted
    alpbb: float  # avg loads per basic block
    aspcb: float  # avg stall cycles per converted branch
    phi: float  # % hoistable from succeeding block
    mppki: float  # mispredicts per kilo-instruction
    piscs: float  # % static code size increase
    from_text: bool = False


@dataclass(frozen=True)
class BenchmarkDef:
    """One benchmark: paper reference numbers + generator knobs."""

    name: str
    suite: str  # int2006 | fp2006 | int2000 | fp2000
    paper: PaperRow
    dcache: str  # key into _FOOTPRINT
    #: Predictability of the candidate (unbiased-but-predictable) sites.
    candidate_pred: float
    n_sites: int = 12
    inputs: int = 2

    @property
    def is_fp(self) -> bool:
        return self.suite.startswith("fp")


def _row(
    spd, pbc, pdih, alpbb, aspcb, phi, mppki, piscs, from_text=False
) -> PaperRow:
    return PaperRow(spd, pbc, pdih, alpbb, aspcb, phi, mppki, piscs, from_text)


# --------------------------- SPEC 2006 (Table 2) ---------------------------

_SPEC2006_INT: List[BenchmarkDef] = [
    BenchmarkDef("h264ref", "int2006", _row(23.1, 50.2, 11.8, 9.6, 21.6, 76.9, 6.7, 15.6), "low", 0.95),
    BenchmarkDef("perlbench", "int2006", _row(18.4, 45.1, 12.7, 4.9, 23.0, 50.5, 1.6, 14.8), "low", 0.97),
    BenchmarkDef("astar", "int2006", _row(16.3, 40.3, 14.6, 6.6, 21.51, 64.4, 13.6, 10.2), "low", 0.88),
    BenchmarkDef("omnetpp", "int2006", _row(12.2, 23.0, 8.1, 2.5, 79.8, 80.3, 5.4, 12.1), "high", 0.94),
    BenchmarkDef("xalancbmk", "int2006", _row(12.1, 24.7, 5.0, 1.7, 27.5, 72.4, 7.3, 9.6), "high", 0.93),
    BenchmarkDef("sjeng", "int2006", _row(10.3, 25.6, 7.8, 3.2, 27.7, 60.0, 12.8, 10.6), "low", 0.88),
    BenchmarkDef("gobmk", "int2006", _row(9.1, 14.4, 5.6, 3.4, 23.1, 84.1, 17.8, 9.6), "mid", 0.86),
    BenchmarkDef("gcc", "int2006", _row(9.1, 23.6, 6.8, 2.3, 29.5, 68.7, 8.4, 10.0), "mid", 0.91),
    BenchmarkDef("mcf", "int2006", _row(8.1, 32.6, 6.1, 6.0, 107.2, 73.8, 25.5, 6.8), "huge", 0.85),
    BenchmarkDef("bzip2", "int2006", _row(7.7, 13.7, 3.5, 3.4, 26.3, 61.3, 6.5, 9.8), "mid", 0.92),
    BenchmarkDef("hmmer", "int2006", _row(6.0, 10.3, 3.7, 12.2, 32.5, 97.8, 1.2, 9.5), "low", 0.97),
    BenchmarkDef("libquantum", "int2006", _row(3.1, 10.7, 5.4, 0.8, 127.3, 78.1, 1.1, 10.4), "mid", 0.97),
]

_SPEC2006_FP: List[BenchmarkDef] = [
    BenchmarkDef("wrf", "fp2006", _row(26.3, 22.2, 14.9, 6.1, 34.2, 69.0, 0.5, 10.2), "low", 0.98, n_sites=10),
    BenchmarkDef("povray", "fp2006", _row(22.3, 26.5, 8.6, 3.0, 22.7, 84.8, 2.6, 9.7), "low", 0.97, n_sites=10),
    BenchmarkDef("tonto", "fp2006", _row(11.1, 29.3, 9.2, 3.1, 17.1, 79.8, 4.4, 8.3), "low", 0.96, n_sites=10),
    BenchmarkDef("gamess", "fp2006", _row(11.0, 44.1, 11.4, 3.5, 23.4, 54.0, 4.4, 14.6), "low", 0.96, n_sites=10),
    BenchmarkDef("calculix", "fp2006", _row(10.4, 19.2, 4.14, 2.1, 23.7, 10.2, 7.7, 10.1), "low", 0.93, n_sites=10),
    BenchmarkDef("milc", "fp2006", _row(7.7, 23.5, 12.8, 10.1, 32.8, 76.9, 1.3, 10.0), "mid", 0.98, n_sites=10),
    BenchmarkDef("soplex", "fp2006", _row(7.2, 13.1, 4.3, 1.0, 37.5, 48.7, 5.5, 9.7), "mid", 0.94, n_sites=10),
    BenchmarkDef("namd", "fp2006", _row(7.0, 23.2, 5.6, 2.4, 24.9, 94.2, 2.1, 10.3), "low", 0.97, n_sites=10),
    BenchmarkDef("lbm", "fp2006", _row(6.6, 28.6, 16.6, 19.5, 55.6, 66.1, 0.2, 8.8), "mid", 0.99, n_sites=10),
    BenchmarkDef("gromacs", "fp2006", _row(6.2, 21.8, 2.4, 4.1, 38.9, 88.3, 2.8, 10.4), "low", 0.96, n_sites=10),
    BenchmarkDef("sphinx3", "fp2006", _row(4.4, 16.4, 2.4, 2.6, 39.9, 86.6, 4.9, 9.9), "mid", 0.95, n_sites=10),
    BenchmarkDef("bwaves", "fp2006", _row(3.3, 27.9, 12.3, 9.2, 25.3, 8.8, 2.7, 11.5), "mid", 0.96, n_sites=10),
    BenchmarkDef("GemsFDTD", "fp2006", _row(3.0, 9.4, 2.6, 3.2, 35.5, 67.8, 1.3, 10.4), "mid", 0.97, n_sites=10),
    BenchmarkDef("zeusmp", "fp2006", _row(2.3, 21.7, 3.6, 14.7, 40.0, 84.9, 0.6, 11.3), "mid", 0.99, n_sites=10),
    BenchmarkDef("dealII", "fp2006", _row(2.1, 11.0, 0.8, 2.5, 24.3, 10.9, 3.5, 8.1), "low", 0.95, n_sites=10),
    BenchmarkDef("cactusADM", "fp2006", _row(1.4, 11.2, 0.2, 35.3, 23.6, 97.1, 0.5, 10.1), "mid", 0.99, n_sites=10),
    BenchmarkDef("leslie3d", "fp2006", _row(1.0, 9.4, 1.0, 32.7, 46.0, 94.2, 0.4, 10.7), "mid", 0.99, n_sites=10),
]

# ------------------ SPEC 2000 (parameterised from Sections 5.1/5.2) ------------------

_SPEC2000_INT: List[BenchmarkDef] = [
    BenchmarkDef("vortex00", "int2000", _row(17.0, 28.0, 12.0, 4.0, 22.0, 70.0, 3.0, 12.0, True), "low", 0.96),
    BenchmarkDef("crafty00", "int2000", _row(14.0, 24.0, 10.0, 3.5, 23.0, 68.0, 5.0, 11.0, True), "low", 0.95),
    BenchmarkDef("eon00", "int2000", _row(13.5, 24.0, 10.0, 3.5, 22.0, 70.0, 3.5, 11.0, True), "low", 0.96),
    BenchmarkDef("gap00", "int2000", _row(13.0, 23.0, 9.5, 3.5, 23.0, 66.0, 4.0, 11.0, True), "low", 0.95),
    BenchmarkDef("parser00", "int2000", _row(12.5, 23.0, 9.0, 3.0, 24.0, 65.0, 5.5, 11.0, True), "low", 0.94),
    BenchmarkDef("mcf00", "int2000", _row(12.0, 33.0, 4.5, 6.0, 90.0, 73.0, 14.0, 7.0, True), "huge", 0.90),
    BenchmarkDef("gcc00", "int2000", _row(11.5, 24.0, 8.0, 2.5, 26.0, 68.0, 5.0, 10.0, True), "low", 0.95),
    BenchmarkDef("perlbmk00", "int2000", _row(11.0, 20.0, 9.0, 4.0, 23.0, 60.0, 3.0, 12.0, True), "low", 0.96),
    BenchmarkDef("gzip00", "int2000", _row(9.0, 22.0, 7.5, 3.5, 30.0, 62.0, 6.0, 10.0, True), "high", 0.93),
    BenchmarkDef("bzip200", "int2000", _row(7.0, 14.0, 4.0, 3.4, 26.0, 61.0, 4.5, 9.5, True), "mid", 0.94),
    BenchmarkDef("twolf00", "int2000", _row(4.5, 11.0, 3.5, 2.5, 33.0, 58.0, 9.0, 8.0, True), "mid", 0.90),
    BenchmarkDef("vpr00", "int2000", _row(4.0, 11.0, 3.0, 2.5, 32.0, 56.0, 9.5, 8.0, True), "mid", 0.89),
]

_SPEC2000_FP: List[BenchmarkDef] = [
    BenchmarkDef("art00", "fp2000", _row(20.0, 20.0, 11.0, 5.0, 35.0, 80.0, 1.5, 10.0, True), "mid", 0.98, n_sites=10),
    BenchmarkDef("ammp00", "fp2000", _row(15.0, 19.0, 9.0, 4.0, 28.0, 78.0, 1.8, 10.0, True), "low", 0.97, n_sites=10),
    BenchmarkDef("mesa00", "fp2000", _row(12.0, 18.0, 8.0, 3.5, 24.0, 75.0, 2.0, 10.0, True), "low", 0.97, n_sites=10),
    BenchmarkDef("wupwise00", "fp2000", _row(7.0, 15.0, 6.0, 3.5, 25.0, 72.0, 1.0, 9.5, True), "low", 0.98, n_sites=10),
    BenchmarkDef("facerec00", "fp2000", _row(6.5, 15.0, 5.5, 3.5, 27.0, 70.0, 1.5, 9.5, True), "low", 0.98, n_sites=10),
    BenchmarkDef("equake00", "fp2000", _row(3.5, 10.0, 3.0, 3.0, 35.0, 65.0, 1.5, 9.0, True), "mid", 0.97, n_sites=10),
    BenchmarkDef("applu00", "fp2000", _row(3.0, 10.0, 3.0, 4.0, 30.0, 70.0, 0.8, 9.0, True), "mid", 0.98, n_sites=10),
    BenchmarkDef("swim00", "fp2000", _row(2.5, 10.0, 2.5, 5.0, 32.0, 72.0, 0.5, 9.0, True), "mid", 0.99, n_sites=10),
    BenchmarkDef("mgrid00", "fp2000", _row(2.5, 10.0, 2.5, 4.5, 28.0, 74.0, 0.5, 9.0, True), "low", 0.99, n_sites=10),
    BenchmarkDef("galgel00", "fp2000", _row(2.5, 10.0, 2.5, 3.5, 26.0, 70.0, 1.0, 9.0, True), "low", 0.98, n_sites=10),
    BenchmarkDef("lucas00", "fp2000", _row(2.0, 9.0, 2.0, 3.5, 28.0, 68.0, 0.6, 9.0, True), "mid", 0.99, n_sites=10),
    BenchmarkDef("fma3d00", "fp2000", _row(2.0, 10.0, 2.0, 3.0, 27.0, 66.0, 1.2, 9.0, True), "low", 0.97, n_sites=10),
    BenchmarkDef("sixtrack00", "fp2000", _row(1.5, 9.0, 1.5, 3.0, 25.0, 64.0, 1.0, 9.0, True), "low", 0.98, n_sites=10),
    BenchmarkDef("apsi00", "fp2000", _row(1.5, 10.0, 1.5, 3.0, 26.0, 64.0, 1.0, 9.0, True), "low", 0.98, n_sites=10),
]

BENCHMARKS: Dict[str, BenchmarkDef] = {
    bench.name: bench
    for bench in (
        _SPEC2006_INT + _SPEC2006_FP + _SPEC2000_INT + _SPEC2000_FP
    )
}

SUITES: Dict[str, List[str]] = {
    "int2006": [b.name for b in _SPEC2006_INT],
    "fp2006": [b.name for b in _SPEC2006_FP],
    "int2000": [b.name for b in _SPEC2000_INT],
    "fp2000": [b.name for b in _SPEC2000_FP],
}


def site_population(bench: BenchmarkDef) -> List[BranchSiteSpec]:
    """Build the branch-site population for one benchmark.

    Composition mirrors Figures 2/3: a high-bias head where bias and
    predictability coincide (superblock-class), a candidate band whose
    predictability exceeds its bias by well over 5% (decompose-class), and
    a small unpredictable tail (predication-class).  The candidate fraction
    tracks PBC; the noise level is then scaled so that the whole program's
    expected misprediction rate lands near the paper's MPPKI.
    """
    # FNV-style hash of the name: order-sensitive, so permuted/anagram
    # benchmark names get distinct site orderings (a plain character sum
    # would collide them onto the same stream).
    rng = random.Random(_stable_hash(bench.name) * 9176)
    n = bench.n_sites
    candidate_count = max(1, round(bench.paper.pbc / 100.0 * n))
    # Unpredictable (predication-class) sites scale with the benchmark's
    # published misprediction rate, so heavy-MPPKI benchmarks (mcf,
    # gobmk) pay realistic mispredict costs that dilute the win.
    unpred_count = max(
        0,
        min(
            n - candidate_count - 2,
            max(1, round(n * bench.paper.mppki / 60.0)),
        ),
    )
    biased_count = n - candidate_count - unpred_count

    sites: List[BranchSiteSpec] = []
    for k in range(biased_count):
        # Keep superblock-class sites firmly above the 0.90 bias line so
        # finite-sample noise plus input jitter cannot drift them into
        # the decompose quadrant.
        bias = 0.995 - 0.05 * (k / max(biased_count - 1, 1))
        sites.append(
            BranchSiteSpec(
                bias=round(bias, 4),
                predictability=min(0.995, bias + 0.02),
                patterned=True,
                majority_taken=bool(k % 3),
                heavy=False,
            )
        )
    for k in range(candidate_count):
        span = k / max(candidate_count - 1, 1)
        # The paper's decompose quadrant is the *low-biased* band; sticky
        # chains above ~0.7 bias also mix too slowly to measure reliably
        # in short profiling runs.
        bias = 0.55 + 0.15 * span  # 0.55 (first candidates) up to 0.70
        # Cap the chain's majority stickiness at ~0.96: beyond that, runs
        # grow so long that the measured bias of a finite profiling run
        # drifts far above the target.
        pred = min(bench.candidate_pred, 1.0 - 0.08 * bias)
        sites.append(
            BranchSiteSpec(
                bias=round(bias, 4),
                predictability=round(pred, 4),
                patterned=True,
                majority_taken=bool(k % 2),
                heavy=True,
            )
        )
    for k in range(unpred_count):
        bias = 0.55 + 0.05 * (k % 3)
        sites.append(
            BranchSiteSpec(
                bias=round(bias, 4),
                predictability=bias,  # i.i.d.: predictability == bias
                patterned=False,
                majority_taken=bool(k % 2),
                heavy=False,
            )
        )
    rng.shuffle(sites)
    return sites


def _scaled_to_mppki(
    sites: List[BranchSiteSpec],
    target_mppki: float,
    instrs_per_iteration: int,
    candidate_pred: float,
) -> List[BranchSiteSpec]:
    """Scale patterned-site noise so expected MPPKI approaches the target.

    Candidate-class sites (low bias, dialed-up predictability) are floored
    near their design predictability so heavy-MPPKI benchmarks keep a
    selectable candidate population -- the paper's high-MPPKI benchmarks
    (astar, gobmk, mcf) still convert 14-40% of their forward branches.
    """
    expected_misp = sum(1.0 - s.predictability for s in sites)
    target_misp = target_mppki / 1000.0 * instrs_per_iteration
    patterned_misp = sum(
        1.0 - s.predictability for s in sites if s.patterned
    )
    fixed_misp = expected_misp - patterned_misp
    if patterned_misp <= 0:
        return sites
    scale = max(0.0, (target_misp - fixed_misp)) / patterned_misp
    scaled = []
    for site in sites:
        if not site.patterned:
            scaled.append(site)
            continue
        pred = 1.0 - scale * (1.0 - site.predictability)
        is_candidate = site.bias < 0.85
        if is_candidate:
            floor = max(site.bias + 0.07, site.predictability - 0.04)
        else:
            floor = site.bias + 0.01
        pred = min(0.995, max(floor, pred))
        scaled.append(
            BranchSiteSpec(
                bias=site.bias,
                predictability=pred,
                patterned=True,
                majority_taken=site.majority_taken,
                heavy=site.heavy,
            )
        )
    return scaled


def spec_benchmark(
    name: str,
    iterations: int = 600,
    scale_noise_to_mppki: bool = True,
) -> WorkloadSpec:
    """The ready-to-build workload spec for one SPEC benchmark."""
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; see repro.workloads.SUITES"
        )
    bench = BENCHMARKS[name]
    row = bench.paper
    loads_succ = max(1, min(7, round(row.alpbb)))
    # ASPCB (resolution-stall cycles per converted branch) maps to the
    # miss level of the dependence-only load threaded into the branch
    # condition: long published stalls mean the compare waited on a
    # cache-missing load.
    if row.aspcb >= 70.0:
        # DRAM-bound resolution only where the D-cache commentary backs
        # it (mcf); elsewhere a long-published stall maps to L3.
        cond_miss = "dram" if bench.dcache == "huge" else "l3"
    elif row.aspcb >= 30.0:
        cond_miss = "l3"
    elif row.aspcb >= 25.0:
        cond_miss = "l2"
    else:
        cond_miss = "none"
    cold_loads, cold_level = _DCACHE_CLASS[bench.dcache]
    # Hoistable-MLP gate: the paper attributes low speedups despite long
    # stalls to having nothing to hoist (libquantum: ALPBB 0.8; leslie3d:
    # PDIH 1.0).  PDIH/PBC approximates hoisted work per converted
    # branch; below the gate the candidates' successor blocks carry no
    # cold (long-latency) loads for the transformation to overlap.
    hoist_volume = row.pdih / max(row.pbc, 1.0)
    if (
        row.alpbb < 2.0  # few loads per block (libquantum, xalancbmk)
        or row.pdih < 3.0  # little gets hoisted (GemsFDTD, leslie3d...)
        or row.phi < 20.0  # blocks barely hoistable (bwaves, calculix)
    ):
        cold_loads = 0
    elif hoist_volume < 0.19:
        # Thin hoisting per converted branch (mcf, zeusmp): the paper
        # notes such misses are "difficult to cover with useful
        # instructions" -- at most one long-latency load gets overlapped.
        cold_loads = min(cold_loads, 1)
    spec = WorkloadSpec(
        name=bench.name,
        suite=bench.suite,
        sites=site_population(bench),
        iterations=iterations,
        loads_not_taken=loads_succ,
        loads_taken=max(1, min(7, round(row.alpbb * 0.8))),
        loads_cond_block=max(1, min(4, round(row.alpbb / 3.0))),
        cold_loads_per_block=cold_loads,
        cold_miss=cold_level,
        alu_per_block=6 if bench.is_fp else 3,
        hoist_barrier_frac=min(0.95, max(0.1, row.phi / 100.0)),
        hoist_cap=max(1, min(12, round(row.pdih))),
        cond_miss=cond_miss,
        cond_chain=2 if row.aspcb >= 25.0 else 1,
        fp_fraction=0.6 if bench.is_fp else 0.0,
        inputs=bench.inputs,
        bias_jitter=0.025,
    )
    if scale_noise_to_mppki:
        instrs = dynamic_instructions_per_iteration(spec)
        spec.sites = _scaled_to_mppki(
            spec.sites, row.mppki, instrs, bench.candidate_pred
        )
    return spec


def suite_benchmarks(suite: str) -> List[str]:
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; one of {sorted(SUITES)}")
    return list(SUITES[suite])
