"""Hand-written kernels, including the paper's Figure 6 example.

``omnetpp_carray_add`` models the ``cArray::add(cObject*)`` hot path from
SPEC 2006 omnetpp that the paper transforms in Figure 6: block **A** loads
the array bookkeeping fields and compares against capacity; the not-taken
path **B** appends (loads the items pointer, stores the object and the new
index); the taken path **C** "grows" the array first.  The branch is
~60/40 biased but ~90% predictable -- the paper's canonical
predictable-but-unbiased branch.

The major benefit of decomposing it is overlapping block A's loads with the
loads of B and C, which the original branch serialises (Section 3).
"""

from __future__ import annotations

from ..ir import Function, FunctionBuilder
from .branch_process import BranchSiteSpec, generate_outcomes

# Word-addressed layout for the kernel's heap.
_THIS = 100  # [+0]=last index, [+1]=size, [+2]=items pointer
_ITEMS = 2000  # items buffer (wrapped to 256 slots)
_SPARE = 3000  # "grown" buffer
_CAPACITY = 5000  # per-iteration capacity words driving the branch
_CHECK = 64  # checksum output cell

#: The Figure 6 branch: 60/40 bias, ~90% predictability on both paths.
FIG6_SITE = BranchSiteSpec(bias=0.6, predictability=0.9, majority_taken=False)


def omnetpp_carray_add(iterations: int = 256, seed: int = 0) -> Function:
    """Build the Figure 6 kernel as an IR function.

    The full/not-full decision is driven by a precomputed per-iteration
    capacity word so that the branch direction stream has exactly the
    Figure 6 statistics while the code retains the published shape.
    """
    fb = FunctionBuilder(f"omnetpp_carray_add.seed{seed}")

    outcomes = generate_outcomes(FIG6_SITE, iterations, site_key=0xF16, input_seed=seed)
    for i, grow in enumerate(outcomes):
        # capacity <= last+1 forces the grow path.
        fb.function.data[_CAPACITY + i] = 0 if grow else 1 << 30
    fb.function.data[_THIS + 0] = 0  # last
    fb.function.data[_THIS + 1] = 8  # size
    fb.function.data[_THIS + 2] = _ITEMS  # items

    r_i, r_n, r_this, r_chk = 1, 2, 3, 4
    r_last, r_size, r_next, r_full = 8, 9, 10, 11
    r_items, r_slot, r_obj = 12, 13, 14
    r_cap, r_new, r_tmp = 15, 16, 17

    init = fb.block("init")
    init.li(r_i, 0)
    init.li(r_n, iterations)
    init.li(r_this, _THIS)
    init.li(r_chk, 0)
    init.block.fallthrough = "A"

    # Block A -- the compare slice (Fig. 6 lines 1-3).
    a = fb.block("A")
    a.load(r_last, r_this, offset=0)  # this->last
    a.add(r_cap, r_i, imm=_CAPACITY)
    a.load(r_size, r_cap, offset=0)  # capacity for this add
    a.add(r_next, r_last, imm=1)  # last + 1
    a.cmp_ge(r_full, r_next, r_size)  # full?
    a.bnz(r_full, target="C", fallthrough="B", branch_id=0)

    # Block B -- fast append (Fig. 6: loads lines 5/7, stores pushed below).
    b = fb.block("B")
    b.load(r_items, r_this, offset=2)  # this->items
    b.and_(r_tmp, r_next, imm=255)  # wrap the synthetic buffer
    b.add(r_slot, r_items, r_tmp)
    b.add(r_obj, r_i, imm=1)  # the object "pointer"
    b.store(r_obj, r_slot, offset=0)  # items[last+1] = obj
    b.store(r_next, r_this, offset=0)  # this->last = last+1
    b.jmp("M")

    # Block C -- grow then append (Fig. 6 line 40 load, grow stores below).
    c = fb.block("C")
    c.load(r_items, r_this, offset=2)  # line 40: this->items
    c.shl(r_new, r_size, imm=1)  # newsize = 2*size (synthetic)
    c.add(r_new, r_new, imm=8)
    c.li(r_tmp, _SPARE)
    c.store(r_new, r_this, offset=1)  # this->size = newsize
    c.store(r_tmp, r_this, offset=2)  # this->items = spare buffer
    c.and_(r_slot, r_next, imm=255)
    c.add(r_slot, r_slot, r_tmp)
    c.add(r_obj, r_i, imm=1)
    c.store(r_obj, r_slot, offset=0)  # append into the grown buffer
    c.store(r_next, r_this, offset=0)
    c.block.fallthrough = "M"

    m = fb.block("M")
    m.add(r_chk, r_chk, r_obj)
    m.xor(r_chk, r_chk, r_full)
    m.block.fallthrough = "tail"

    tail = fb.block("tail")
    tail.add(r_i, r_i, imm=1)
    tail.cmp_lt(r_tmp, r_i, r_n)
    tail.bnz(r_tmp, target="A", fallthrough="exit", branch_id=1)

    exit_block = fb.block("exit")
    exit_block.store(r_chk, r_this, offset=_CHECK - _THIS)
    exit_block.halt()

    return fb.build()
