"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artifacts:

* ``table2``                      -- regenerate Table 2
* ``figure fig8|fig9|...|fig13``  -- speedup figures
* ``predvbias int2006|fp2006``    -- Figures 2/3 curves
* ``taxonomy [suite]``            -- Figure 1 census
* ``sensitivity``                 -- Section 5.3 predictor ladder
* ``motivation``                  -- Section 1 in-order vs OOO premise
* ``quadrants``                   -- Figure 1 prescriptions, empirically
* ``sideeffects``                 -- Figure 14 + Section 6.1
* ``ablations``                   -- design-choice sweeps
* ``bench <name>``                -- one benchmark, baseline vs decomposed
* ``timeline <name>``             -- issue-timeline visualisation
* ``cache``                       -- list/prune ``results/.cache/`` and
  report the last run's artifact hit/miss counters
* ``worker <run-dir>``            -- join a queue-backend run as an
  external worker (shared-filesystem work queue; see EXPERIMENTS.md
  "Execution backends")

All commands accept ``--iterations N`` and ``--seeds K`` to trade fidelity
for time, ``--jobs N`` to fan simulation jobs over worker processes
(default: ``REPRO_JOBS`` or every core), ``--no-cache`` to bypass the
``results/.cache/`` result cache, ``--no-trace-cache`` to keep captured
instruction traces out of ``results/.cache/traces/`` (equivalent to
``REPRO_TRACE_CACHE=0``; in-process capture/replay still applies), and
``--profile`` (or ``REPRO_PROFILE=1``) to wrap every engine job in
cProfile.  Engine-backed commands write a
machine-readable ``results/run_manifest.json`` (config, per-job timings,
status/attempts/error, simulated KIPS, cache hit/miss counts) next to the
regenerated table; profiled runs additionally write
``results/run_manifest.profile.txt``.

Robustness (see EXPERIMENTS.md "Robustness"): a failed/hung job is
isolated and reported instead of aborting the sweep; ``--job-timeout S``
(or ``REPRO_JOB_TIMEOUT``) bounds each job, ``--retries N`` (or
``REPRO_RETRIES``, default 2) retries infrastructure faults, every
completed job is checkpointed to ``results/.cache/runs/<run-id>.jsonl``,
and ``--resume RUN_ID`` re-runs only the jobs an interrupted or
partially-failed run didn't finish.  The exit status is 0 only when
every job succeeded (1 with failures, 130 on interrupt).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .experiments import ExperimentEngine, RunConfig, run_benchmark
from .experiments.engine import RESULTS_DIR


def _config(args) -> RunConfig:
    return RunConfig(
        iterations=args.iterations,
        ref_seeds=tuple(range(1, args.seeds + 1)),
    )


def _progress(done: int, total: int, label: str) -> None:
    sys.stderr.write(f"\r[{done}/{total}] {label:<40.40}")
    sys.stderr.flush()
    if done == total:
        sys.stderr.write("\n")


def _engine(args) -> ExperimentEngine:
    if args.engine is None:
        if getattr(args, "no_trace_cache", False):
            # Via the environment so the switch reaches pool workers.
            os.environ["REPRO_TRACE_CACHE"] = "0"
        if getattr(args, "profile", False):
            # Via the environment so the switch reaches pool workers, and
            # with the cache off: a cache hit never runs the worker, so a
            # profiled run must actually execute every job.
            os.environ["REPRO_PROFILE"] = "1"
            args.no_cache = True
        resume = getattr(args, "resume", None)
        args.engine = ExperimentEngine(
            jobs=args.jobs,
            use_cache=False if args.no_cache else None,
            progress=_progress if sys.stderr.isatty() else None,
            run_id=resume or ExperimentEngine.new_run_id(),
            resume=resume is not None,
            job_timeout=getattr(args, "job_timeout", None),
            retries=getattr(args, "retries", None),
            backend=getattr(args, "backend", None),
        )
        # So an interrupted map() can still leave a partial manifest.
        args.engine.manifest_path = RESULTS_DIR / "run_manifest.json"
    return args.engine


def _finish(args, config: Optional[RunConfig] = None) -> None:
    """Write the run manifest + a one-line summary for engine commands."""
    engine = args.engine
    if engine is None or not engine.records:
        return
    engine.write_manifest(RESULTS_DIR / "run_manifest.json", config=config)
    counts = engine.status_counts()
    health = ""
    if counts["failed"] or counts["timeout"] or counts["skipped"]:
        health = (
            f", {counts['failed']} failed, {counts['timeout']} timed out, "
            f"{counts['skipped']} skipped"
        )
    sys.stderr.write(
        f"{len(engine.records)} jobs "
        f"({engine.cache_hits} cache hits, {engine.cache_misses} misses"
        f"{health}), "
        f"{engine.total_wall_s:.1f}s job time, "
        f"{engine.total_simulated_cycles} cycles simulated "
        f"({engine.total_sim_kips:.0f} KIPS); "
        f"manifest: {RESULTS_DIR / 'run_manifest.json'}\n"
    )
    if engine.failures:
        for record in engine.failures:
            error = record.get("error") or {}
            sys.stderr.write(
                f"  {record['status'].upper()} {record['label']}: "
                f"{error.get('type', '?')}: {error.get('message', '')}\n"
            )
        sys.stderr.write(
            f"re-run unfinished jobs with: --resume {engine.run_id}\n"
        )
    if engine.profiles:
        sys.stderr.write(
            f"profiles: {RESULTS_DIR / 'run_manifest.profile.txt'}\n"
        )


def _cmd_table2(args) -> None:
    from .experiments.table2 import render, run

    config = _config(args)
    print(render(run(config, engine=_engine(args))))
    _finish(args, config)


def _cmd_figure(args) -> None:
    from .experiments.speedups import run_figure

    config = RunConfig(
        iterations=args.iterations,
        ref_seeds=tuple(range(1, args.seeds + 1)),
        widths=(2, 4, 8) if args.all_widths else (4,),
    )
    print(run_figure(args.name, config, engine=_engine(args)).render())
    _finish(args, config)


def _cmd_predvbias(args) -> None:
    from .experiments.pred_vs_bias import run

    print(run(args.suite).render())


def _cmd_taxonomy(args) -> None:
    from .experiments.taxonomy import run

    print(run(args.suite, config=_config(args)).render())


def _cmd_sensitivity(args) -> None:
    from .experiments.sensitivity import run

    config = _config(args)
    print(run(config=config, engine=_engine(args)).render())
    _finish(args, config)


def _cmd_sideeffects(args) -> None:
    from .experiments.side_effects import run_icache, run_issue_increase

    config = _config(args)
    engine = _engine(args)
    print(run_issue_increase(config, engine=engine).render())
    print()
    print(run_icache(config, engine=engine).render())
    _finish(args, config)


def _cmd_ablations(args) -> None:
    from .experiments.ablations import render_all

    config = _config(args)
    print(render_all(config, engine=_engine(args)))
    _finish(args, config)


def _cmd_quadrants(args) -> None:
    from .experiments.quadrants import run

    print(run(config=_config(args)).render())


def _cmd_motivation(args) -> None:
    from .experiments.motivation import run

    config = _config(args)
    print(run(config=config, engine=_engine(args)).render())
    _finish(args, config)


def _cmd_bench(args) -> None:
    if args.name == "report":
        from .experiments import benchreport

        index_path = benchreport.write_index()
        print(benchreport.render_index(json.loads(index_path.read_text())))
        print(f"\nwrote {index_path}")
        return
    config = _config(args)
    outcome = run_benchmark(args.name, config, engine=_engine(args))
    if not outcome.ok:
        print(
            f"{outcome.name}: {outcome.status.upper()} ({outcome.error})"
        )
        _finish(args, config)
        return
    metrics = outcome.metrics
    print(
        f"{outcome.name}: {metrics.spd:.1f}% speedup "
        f"({outcome.converted}/{outcome.forward_branches} branches converted)"
    )
    print(
        f"  PBC {metrics.pbc:.1f}%  PDIH {metrics.pdih:.1f}%  "
        f"ASPCB {metrics.aspcb:.1f}  MPPKI {metrics.mppki:.1f}  "
        f"PISCS {metrics.piscs:.1f}%"
    )
    _finish(args, config)


def _cmd_cache(args) -> None:
    from .experiments import cachectl

    if getattr(args, "action", "report") == "verify":
        report = cachectl.verify(quarantine=args.quarantine)
        print(cachectl.render_verify(report))
        if report.mismatched or report.orphaned:
            sys.exit(1)
        return
    if args.prune or args.max_age_days is not None \
            or args.max_size_mb is not None:
        removed = cachectl.prune(
            max_age_days=args.max_age_days,
            max_size_mb=args.max_size_mb,
        )
        for section, (files, nbytes) in sorted(removed.items()):
            if files:
                print(
                    f"pruned {section}: {files} files, {nbytes} bytes"
                )
    print(cachectl.render_report())


def _cmd_worker(args) -> None:
    from .experiments import backends

    sys.exit(backends.queue_worker_main(args.run_dir))


def _cmd_timeline(args) -> None:
    from .compiler import compile_baseline, compile_decomposed
    from .uarch import render_timeline
    from .workloads import spec_benchmark

    spec = spec_benchmark(args.name, iterations=args.iterations)
    func = spec.build(seed=1)
    baseline = compile_baseline(func)
    which = compile_decomposed(func, profile=baseline.profile) \
        if args.decomposed else baseline
    print(
        render_timeline(
            which.program, start=args.start, count=args.count
        )
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Branch Vanguard reproduction (ISCA 2015)",
    )
    parser.add_argument("--iterations", type=int, default=500)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS env or all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the results/.cache/ result cache",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="do not persist captured instruction traces to "
        "results/.cache/traces/ (REPRO_TRACE_CACHE=0); in-process "
        "capture/replay still applies",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock budget in seconds, enforced by a "
        "watchdog when jobs > 1 (default: REPRO_JOB_TIMEOUT or off)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retries for infrastructure faults -- dead worker "
        "processes and timeouts (default: REPRO_RETRIES or 2); "
        "deterministic worker exceptions are never retried",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="replay the run journal of an earlier (interrupted or "
        "partially failed) run and re-run only its unfinished jobs",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile every engine job (implies --no-cache; equivalent "
        "to REPRO_PROFILE=1) and write per-job top-20 cumulative "
        "summaries next to the run manifest",
    )
    parser.add_argument(
        "--backend",
        choices=["local", "queue"],
        default=None,
        help="execution backend for parallel jobs: 'local' (supervised "
        "in-process pool, the default) or 'queue' (lease-based work "
        "queue under the cache dir that external 'repro worker' "
        "processes can join); default: REPRO_BACKEND or 'local'",
    )
    parser.set_defaults(engine=None)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2").set_defaults(func=_cmd_table2)

    figure = sub.add_parser("figure")
    figure.add_argument(
        "name",
        choices=["fig8", "fig9", "fig10", "fig11", "fig12", "fig13"],
    )
    figure.add_argument("--all-widths", action="store_true")
    figure.set_defaults(func=_cmd_figure)

    predvbias = sub.add_parser("predvbias")
    predvbias.add_argument(
        "suite", choices=["int2006", "fp2006", "int2000", "fp2000"]
    )
    predvbias.set_defaults(func=_cmd_predvbias)

    taxonomy = sub.add_parser("taxonomy")
    taxonomy.add_argument("suite", nargs="?", default="int2006")
    taxonomy.set_defaults(func=_cmd_taxonomy)

    sub.add_parser("sensitivity").set_defaults(func=_cmd_sensitivity)
    sub.add_parser("motivation").set_defaults(func=_cmd_motivation)
    sub.add_parser("quadrants").set_defaults(func=_cmd_quadrants)
    sub.add_parser("sideeffects").set_defaults(func=_cmd_sideeffects)
    sub.add_parser("ablations").set_defaults(func=_cmd_ablations)

    bench = sub.add_parser("bench")
    bench.add_argument(
        "name",
        help="benchmark name to run, or 'report' to aggregate every "
        "results/BENCH_*.json perf snapshot into "
        "results/BENCH_index.json and print the table",
    )
    bench.set_defaults(func=_cmd_bench)

    cache = sub.add_parser("cache")
    cache.add_argument(
        "action",
        nargs="?",
        default="report",
        choices=("report", "verify"),
        help="'report' (default): list sections and last-run "
        "counters; 'verify': offline re-hash of every store blob "
        "against its digest sidecar (exit 1 on mismatches/orphans)",
    )
    cache.add_argument(
        "--quarantine",
        action="store_true",
        help="with 'verify': move mismatched blobs to quarantine/ "
        "(they recompute transparently on next use)",
    )
    cache.add_argument(
        "--prune",
        action="store_true",
        help="delete by the age/size limits below (no limits: no-op)",
    )
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="with --prune: drop cache files older than D days",
    )
    cache.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        metavar="M",
        help="with --prune: evict oldest files until the cache "
        "fits in M MiB",
    )
    cache.set_defaults(func=_cmd_cache)

    worker = sub.add_parser("worker")
    worker.add_argument(
        "run_dir",
        help="queue run directory to join (printed by / found under "
        "<cache>/queue/<run-id>; must be on a filesystem shared with "
        "the submitting engine)",
    )
    worker.set_defaults(func=_cmd_worker)

    timeline = sub.add_parser("timeline")
    timeline.add_argument("name")
    timeline.add_argument("--baseline", dest="decomposed",
                          action="store_false")
    timeline.add_argument("--start", type=int, default=0)
    timeline.add_argument("--count", type=int, default=24)
    timeline.set_defaults(func=_cmd_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except KeyboardInterrupt:
        engine = args.engine
        if engine is not None and engine.records:
            sys.stderr.write(
                f"\ninterrupted; completed jobs are checkpointed -- "
                f"continue with: --resume {engine.run_id}\n"
            )
        return 130
    engine = args.engine
    if engine is not None and engine.failures:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
