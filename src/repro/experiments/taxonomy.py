"""Figure 1: the transformation-choice quadrant.

The paper's Figure 1 assigns conditional non-loop branches to a treatment
by bias x predictability: superblocks (highly biased), predication
(low-biased and unpredictable), the decomposed branch transformation
(low-biased but predictable), and a rarely-occurring corner.  This runner
classifies a profiled branch population and reports the quadrant census.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import render_table
from ..branchpred import measure_trace
from ..compiler import profile_program
from ..core import BranchClass, SelectionConfig, classify_branch
from ..ir import lower
from ..workloads import spec_benchmark, suite_benchmarks
from .harness import RunConfig


@dataclass
class TaxonomyResult:
    #: counts[benchmark][quadrant] -> static branch sites
    counts: Dict[str, Dict[BranchClass, int]]

    def totals(self) -> Dict[BranchClass, int]:
        totals = {cls: 0 for cls in BranchClass}
        for per_bench in self.counts.values():
            for cls, n in per_bench.items():
                totals[cls] += n
        return totals

    def render(self) -> str:
        header = ["benchmark"] + [cls.value for cls in BranchClass]
        rows = []
        for name, per_bench in self.counts.items():
            rows.append(
                [name] + [str(per_bench.get(cls, 0)) for cls in BranchClass]
            )
        totals = self.totals()
        rows.append(
            ["TOTAL"] + [str(totals[cls]) for cls in BranchClass]
        )
        return render_table(
            header, rows, title="Figure 1: branch taxonomy census"
        )


def run(
    suite: str = "int2006",
    config: Optional[RunConfig] = None,
    selection: SelectionConfig = SelectionConfig(),
) -> TaxonomyResult:
    config = config or RunConfig()
    counts: Dict[str, Dict[BranchClass, int]] = {}
    for name in suite_benchmarks(suite):
        spec = spec_benchmark(name, iterations=config.iterations)
        profile = profile_program(
            lower(spec.build(seed=config.train_seed)),
            max_instructions=config.max_instructions,
        )
        per_bench: Dict[BranchClass, int] = {}
        for stats in profile.values():
            if stats.executions < selection.min_executions:
                continue
            cls = classify_branch(stats, selection)
            per_bench[cls] = per_bench.get(cls, 0) + 1
        counts[name] = per_bench
    return TaxonomyResult(counts=counts)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
