"""Section 5.3: branch-predictor sensitivity.

The paper simulates "a series of ever improving conditional branch
predictors, culminating in a 64-KB version of ISL-TAGE" and finds that on
the four hard-to-predict integer benchmarks (astar, sjeng, gobmk, mcf) the
speedup from the transformation *improves* roughly 0.3% for each 1%
reduction in misprediction rate.

We run the same ladder (bimodal -> gshare -> hybrid -> TAGE -> ISL-TAGE)
and report, per benchmark and predictor: the baseline misprediction rate
and the decomposed-over-baseline speedup, plus the fitted
speedup-per-accuracy slope.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis import render_table, speedup_percent
from ..branchpred import (
    BimodalPredictor,
    DirectionPredictor,
    GSharePredictor,
    HybridPredictor,
    IslTagePredictor,
    TagePredictor,
)
from ..compiler import compile_baseline, compile_decomposed
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark
from .artifacts import get_store
from .engine import ExperimentEngine, fingerprint, get_engine
from .harness import RunConfig

#: The hard-to-predict benchmarks the paper calls out.
HARD_BENCHMARKS = ("astar", "sjeng", "gobmk", "mcf")

#: The predictor ladder, weakest to strongest.
LADDER: Tuple[Tuple[str, Callable[[], DirectionPredictor]], ...] = (
    ("bimodal", BimodalPredictor),
    ("gshare", GSharePredictor),
    ("hybrid-24KB", HybridPredictor),
    ("tage", TagePredictor),
    ("isl-tage-64KB", IslTagePredictor),
)


@dataclass
class SensitivityPoint:
    benchmark: str
    predictor: str
    mispredict_rate: float  # baseline, %
    speedup: float  # decomposed over baseline with the same predictor, %


@dataclass
class SensitivityResult:
    points: List[SensitivityPoint]
    #: Labels of ladder rungs whose engine jobs failed (points omitted).
    failed: List[str] = dataclass_field(default_factory=list)

    def slope(self, benchmark: str) -> float:
        """Least-squares % speedup gained per 1% mispredict-rate drop."""
        series = [
            (p.mispredict_rate, p.speedup)
            for p in self.points
            if p.benchmark == benchmark
        ]
        if len(series) < 2:
            return 0.0
        xs = [-x for x, _ in series]  # accuracy improvement axis
        ys = [y for _, y in series]
        n = len(series)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var = sum((x - mean_x) ** 2 for x in xs)
        return cov / var if var else 0.0

    def render(self) -> str:
        rows = [
            [p.benchmark, p.predictor, f"{p.mispredict_rate:.2f}",
             f"{p.speedup:.2f}"]
            for p in self.points
        ]
        table = render_table(
            ["benchmark", "predictor", "mispredict%", "speedup%"],
            rows,
            title="Section 5.3: predictor sensitivity "
            "(paper: ~0.3% speedup per 1% mispredict reduction)",
        )
        slopes = [
            [name, f"{self.slope(name):.3f}"]
            for name in sorted({p.benchmark for p in self.points})
        ]
        out = (
            table
            + "\n\n"
            + render_table(["benchmark", "%speedup per 1% accuracy"], slopes)
        )
        if self.failed:
            out += "\nmissing rungs (job failures): " + ", ".join(
                self.failed
            )
        return out


def _sensitivity_job(payload) -> Dict:
    """One (benchmark, predictor) rung of the ladder; engine-mappable.

    The functional TRAIN branch stream is predictor-independent and
    shared through the artifact store, so a whole ladder costs one
    functional run plus one (cheap) measurement per rung; the baseline
    program's committed stream is predictor-independent too, so every
    rung replays the same baseline trace.
    """
    import json

    name, pred_name, config = payload
    factory = dict(LADDER)[pred_name]
    store = get_store()
    mark = store.mark()
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    # Profile/select with the same predictor the hardware runs:
    # better predictors expose more candidates, as in the paper.
    profile = store.profile(
        lower(train),
        max_instructions=config.max_instructions,
        predictor_factory=factory,
    )
    content = (
        f"sensitivity|{name}|{pred_name}|it={config.iterations}"
        f"|train={config.train_seed}|ref={config.ref_seeds[0]}"
        f"|budget={config.max_instructions}"
    )
    knobs = json.dumps(
        fingerprint((config.selection, config.transform)), sort_keys=True
    )
    baseline = store.compile(
        f"baseline|{content}",
        lambda: compile_baseline(ref, profile=profile),
    )
    decomposed = store.compile(
        f"decomposed|{content}|{knobs}",
        lambda: compile_decomposed(
            ref,
            profile=profile,
            selection_config=config.selection,
            transform_config=config.transform,
        ),
    )
    machine = MachineConfig.paper_default().with_predictor(factory)
    # Sweep front door (K=1 per program here: the ladder sweeps
    # predictors across jobs, and each predictor is its own prep
    # slice, so there is nothing to fuse within a job).
    [base_run] = store.simulate_inorder_sweep(
        baseline.program, [machine],
        max_instructions=config.max_instructions,
    )
    [dec_run] = store.simulate_inorder_sweep(
        decomposed.program, [machine],
        max_instructions=config.max_instructions,
    )
    total = base_run.stats.cond_branches or 1
    return {
        "mispredict_rate": 100.0 * base_run.stats.cond_mispredicts / total,
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def run(
    benchmarks: Tuple[str, ...] = HARD_BENCHMARKS,
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    config = config or RunConfig()
    payloads = [
        (name, pred_name, config)
        for name in benchmarks
        for pred_name, _ in LADDER
    ]
    labels = [f"sensitivity:{n}:{p}" for n, p, _ in payloads]
    results = get_engine(engine).map(
        _sensitivity_job,
        payloads,
        labels=labels,
        groups=[n for n, _, _ in payloads],
    )
    points = [
        SensitivityPoint(
            benchmark=name,
            predictor=pred_name,
            mispredict_rate=result["mispredict_rate"],
            speedup=result["speedup"],
        )
        for (name, pred_name, _), result in zip(payloads, results)
        if result is not None
    ]
    failed = [
        label
        for label, result in zip(labels, results)
        if result is None
    ]
    return SensitivityResult(points=points, failed=failed)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
