"""Shared experiment harness.

Follows the paper's methodology: profile on a TRAIN input (seed 0), select
and transform with that profile, then evaluate on REF inputs (seeds >= 1),
reporting per-benchmark speedups averaged over all REF inputs and for the
best-performing input (Figures 8-13 report both).

The harness is decomposed into independent *seed jobs* so the parallel
engine (:mod:`.engine`) can fan them out over worker processes: one job
(:func:`run_seed`) profiles on TRAIN, compiles for one REF seed, and
simulates every width.  The (deterministic) TRAIN profile is shared
through the content-addressed artifact store (:mod:`.artifacts`) --
the engine schedules one seed job per benchmark as the group leader so
the rest load it instead of recomputing -- and the width loop rides
the trace capture/replay fast path.  :func:`combine_seed_results`
reassembles jobs into a :class:`BenchmarkOutcome` in REF-seed order,
which keeps the parallel path byte-identical to ``jobs=1``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    BenchmarkMetrics,
    geomean_speedup,
    speedup_percent,
)
from ..branchpred import HybridPredictor
from ..compiler import compile_baseline, compile_decomposed
from ..core import SelectionConfig, TransformConfig
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark, suite_benchmarks


@dataclass
class RunConfig:
    """How much simulation an experiment buys."""

    iterations: int = 600
    train_seed: int = 0
    ref_seeds: Tuple[int, ...] = (1, 2)
    widths: Tuple[int, ...] = (4,)
    max_instructions: int = 2_000_000
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    transform: TransformConfig = field(default_factory=TransformConfig)
    machine: Optional[MachineConfig] = None

    @classmethod
    def quick(cls) -> "RunConfig":
        """Small enough for CI/benchmark loops; same code paths.

        Everything scales together: 250/600 of the default iterations and
        the same fraction of the default 2M-instruction simulation budget,
        so a "quick" run can never simulate a full-length program.
        """
        return cls(
            iterations=250, ref_seeds=(1,), max_instructions=833_000
        )

    def machine_for(self, width: int) -> MachineConfig:
        if self.machine is not None:
            return self.machine
        return MachineConfig.paper_default(width=width)

    def table_width(self) -> int:
        """The width Table 2 metrics are measured at: 4-wide when the run
        covers it (the configuration the published table reports),
        otherwise the widest configuration simulated."""
        return 4 if 4 in self.widths else max(self.widths)


@dataclass
class BenchmarkOutcome:
    """Everything measured for one benchmark under one RunConfig.

    ``status`` is ``"ok"`` for a fully-measured benchmark; a benchmark
    with any failed/timed-out/skipped seed job (see the engine's
    supervision layer) comes back with that status, ``metrics=None``,
    and a one-line ``error`` summary so renderers can mark the row
    instead of crashing.
    """

    name: str
    #: speedups[width][seed] -> % speedup of decomposed over baseline.
    speedups: Dict[int, Dict[int, float]]
    metrics: Optional[BenchmarkMetrics]
    converted: int
    forward_branches: int
    status: str = "ok"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def failure(
        cls,
        name: str,
        config: "RunConfig",
        status: str = "failed",
        error: Optional[str] = None,
    ) -> "BenchmarkOutcome":
        return cls(
            name=name,
            speedups={w: {} for w in config.widths},
            metrics=None,
            converted=0,
            forward_branches=0,
            status=status,
            error=error,
        )

    def mean_speedup(self, width: int) -> float:
        per_seed = self.speedups[width]
        if not per_seed:
            return float("nan")
        return geomean_speedup(list(per_seed.values()))

    def best_input_speedup(self, width: int) -> float:
        per_seed = self.speedups[width]
        if not per_seed:
            return float("nan")
        return max(per_seed.values())


def prepare_benchmark(
    name: str, seed: int, config: RunConfig, store=None
):
    """Profile (shared artifact) and compile (memoised) one REF input.

    The TRAIN profile is served from the content-addressed artifact
    store, so concurrent seed jobs and ``--resume`` runs compute it
    once; compilations are memoised in-process by content key.  Returns
    ``(baseline, decomposed)`` :class:`~repro.compiler.CompilationResult`s.
    """
    import json

    from .artifacts import get_store
    from .engine import fingerprint

    store = get_store(store)
    spec = spec_benchmark(name, iterations=config.iterations)
    train_func = spec.build(seed=config.train_seed)
    profile = store.profile(
        lower(train_func),
        max_instructions=config.max_instructions,
        predictor_factory=HybridPredictor,
    )

    ref_func = spec.build(seed=seed)
    content = (
        f"{name}|it={config.iterations}|train={config.train_seed}"
        f"|ref={seed}|budget={config.max_instructions}"
    )
    knobs = json.dumps(
        fingerprint((config.selection, config.transform)), sort_keys=True
    )
    baseline = store.compile(
        f"baseline|{content}",
        lambda: compile_baseline(ref_func, profile=profile),
    )
    decomposed = store.compile(
        f"decomposed|{content}|{knobs}",
        lambda: compile_decomposed(
            ref_func,
            profile=profile,
            selection_config=config.selection,
            transform_config=config.transform,
        ),
    )
    return baseline, decomposed


def run_seed(name: str, seed: int, config: RunConfig) -> Dict:
    """One independent job: TRAIN profile, compile for one REF seed,
    simulate every width.

    Returns a JSON-serialisable dict (so the engine can cache it and ship
    it across process boundaries); see :func:`combine_seed_results` for
    reassembly.  Metrics are measured on the table-width runs
    (:meth:`RunConfig.table_width`) so every Table 2 column comes from
    the same 4-wide simulations as the SPD column.

    The TRAIN profile comes from the shared artifact store and the
    width axis runs through the sweep front door
    (:meth:`ArtifactStore.simulate_inorder_sweep`): the first sight of
    a program executes once with capture, and the remaining widths are
    scored by one *fused* replay pass over the captured stream
    (bit-identical to per-width replays; ``REPRO_REPLAY_MULTI=0``
    forces the per-point path).  The per-job artifact counter movement
    is reported under ``"artifacts"`` (manifest schema 4; fused-pass
    counters since schema 8).
    """
    from .artifacts import get_store

    store = get_store()
    mark = store.mark()
    baseline, decomposed = prepare_benchmark(name, seed, config, store)

    metrics_width = config.table_width()
    speedups: Dict[int, float] = {}
    metrics: Optional[BenchmarkMetrics] = None
    simulated_cycles = 0
    committed_instructions = 0
    machines = [config.machine_for(width) for width in config.widths]
    base_runs = store.simulate_inorder_sweep(
        baseline.program,
        machines,
        max_instructions=config.max_instructions,
    )
    dec_runs = store.simulate_inorder_sweep(
        decomposed.program,
        machines,
        max_instructions=config.max_instructions,
    )
    for width, base_run, dec_run in zip(
        config.widths, base_runs, dec_runs
    ):
        simulated_cycles += base_run.cycles + dec_run.cycles
        committed_instructions += (
            base_run.stats.committed + dec_run.stats.committed
        )
        speedups[width] = speedup_percent(base_run, dec_run)
        if width == metrics_width:
            metrics = BenchmarkMetrics.from_runs(
                name, baseline, decomposed, base_run, dec_run
            )
    assert metrics is not None
    return {
        "name": name,
        "seed": seed,
        "speedups": {str(w): v for w, v in speedups.items()},
        "metrics": dataclasses.asdict(metrics),
        "converted": decomposed.transform.converted,
        "forward_branches": decomposed.selection.forward_branches,
        "simulated_cycles": simulated_cycles,
        "committed_instructions": committed_instructions,
        "artifacts": store.delta(mark),
    }


def combine_seed_results(
    name: str, config: RunConfig, seed_results: Sequence[Dict]
) -> BenchmarkOutcome:
    """Reassemble per-seed job dicts (in ``config.ref_seeds`` order).

    Table 2 metric columns are averaged over every REF input (they were
    previously taken from the first seed only); the SPD column is the
    geomean over all REF inputs at the table width, as published.
    """
    assert len(seed_results) == len(config.ref_seeds)
    speedups: Dict[int, Dict[int, float]] = {w: {} for w in config.widths}
    for result in seed_results:
        for width_str, value in result["speedups"].items():
            speedups[int(width_str)][result["seed"]] = value

    metric_fields = [
        f.name
        for f in dataclasses.fields(BenchmarkMetrics)
        if f.name != "name"
    ]
    metrics = BenchmarkMetrics(
        name=name,
        **{
            fname: sum(r["metrics"][fname] for r in seed_results)
            / len(seed_results)
            for fname in metric_fields
        },
    )
    # Table 2's SPD column is the geomean over all REF inputs at 4-wide.
    metrics.spd = geomean_speedup(
        list(speedups[config.table_width()].values())
    )
    # Compilation is REF-seed-dependent only through the input data, not
    # the profile or the selection -- every seed must compile the same
    # static program shape.  A divergence here means the pipeline is no
    # longer deterministic; fail loudly rather than silently reporting
    # the last seed's numbers.
    first = seed_results[0]
    for result in seed_results[1:]:
        if (
            result["converted"] != first["converted"]
            or result["forward_branches"] != first["forward_branches"]
        ):
            raise AssertionError(
                f"{name}: compilation diverged across REF seeds: "
                f"seed {first['seed']} compiled "
                f"converted={first['converted']}/"
                f"forward={first['forward_branches']}, seed "
                f"{result['seed']} compiled "
                f"converted={result['converted']}/"
                f"forward={result['forward_branches']}"
            )
    return BenchmarkOutcome(
        name=name,
        speedups=speedups,
        metrics=metrics,
        converted=first["converted"],
        forward_branches=first["forward_branches"],
    )


def run_benchmark(
    name: str, config: RunConfig, engine=None
) -> BenchmarkOutcome:
    """Profile on TRAIN, compile once per REF input, simulate all widths.

    Routes through the experiment engine (cache + ``REPRO_JOBS`` workers);
    pass ``engine=ExperimentEngine(jobs=1, use_cache=False)`` for a pure
    in-process serial run.
    """
    from .engine import get_engine

    return get_engine(engine).run_benchmark(name, config)


def run_suite(
    suite: str, config: RunConfig, engine=None
) -> List[BenchmarkOutcome]:
    from .engine import get_engine

    return get_engine(engine).run_benchmarks(
        suite_benchmarks(suite), config
    )
