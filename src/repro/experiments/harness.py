"""Shared experiment harness.

Follows the paper's methodology: profile on a TRAIN input (seed 0), select
and transform with that profile, then evaluate on REF inputs (seeds >= 1),
reporting per-benchmark speedups averaged over all REF inputs and for the
best-performing input (Figures 8-13 report both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import BenchmarkMetrics, geomean_speedup, speedup_percent
from ..compiler import compile_baseline, compile_decomposed, profile_program
from ..core import SelectionConfig, TransformConfig
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark, suite_benchmarks


@dataclass
class RunConfig:
    """How much simulation an experiment buys."""

    iterations: int = 600
    train_seed: int = 0
    ref_seeds: Tuple[int, ...] = (1, 2)
    widths: Tuple[int, ...] = (4,)
    max_instructions: int = 2_000_000
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    transform: TransformConfig = field(default_factory=TransformConfig)
    machine: Optional[MachineConfig] = None

    @classmethod
    def quick(cls) -> "RunConfig":
        """Small enough for CI/benchmark loops; same code paths."""
        return cls(iterations=250, ref_seeds=(1,))

    def machine_for(self, width: int) -> MachineConfig:
        if self.machine is not None:
            return self.machine
        return MachineConfig.paper_default(width=width)


@dataclass
class BenchmarkOutcome:
    """Everything measured for one benchmark under one RunConfig."""

    name: str
    #: speedups[width][seed] -> % speedup of decomposed over baseline.
    speedups: Dict[int, Dict[int, float]]
    metrics: BenchmarkMetrics
    converted: int
    forward_branches: int

    def mean_speedup(self, width: int) -> float:
        per_seed = self.speedups[width]
        return geomean_speedup(list(per_seed.values()))

    def best_input_speedup(self, width: int) -> float:
        return max(self.speedups[width].values())


def run_benchmark(name: str, config: RunConfig) -> BenchmarkOutcome:
    """Profile on TRAIN, compile once per REF input, simulate all widths."""
    spec = spec_benchmark(name, iterations=config.iterations)
    train_func = spec.build(seed=config.train_seed)
    profile = profile_program(
        lower(train_func), max_instructions=config.max_instructions
    )

    speedups: Dict[int, Dict[int, float]] = {w: {} for w in config.widths}
    metrics: Optional[BenchmarkMetrics] = None
    converted = 0
    forward = 0

    for seed in config.ref_seeds:
        ref_func = spec.build(seed=seed)
        baseline = compile_baseline(ref_func, profile=profile)
        decomposed = compile_decomposed(
            ref_func,
            profile=profile,
            selection_config=config.selection,
            transform_config=config.transform,
        )
        converted = decomposed.transform.converted
        forward = decomposed.selection.forward_branches
        for width in config.widths:
            machine = config.machine_for(width)
            base_run = InOrderCore(machine).run(
                baseline.program, max_instructions=config.max_instructions
            )
            dec_run = InOrderCore(machine).run(
                decomposed.program, max_instructions=config.max_instructions
            )
            speedups[width][seed] = speedup_percent(base_run, dec_run)
            if metrics is None and width == max(config.widths):
                metrics = BenchmarkMetrics.from_runs(
                    name, baseline, decomposed, base_run, dec_run
                )

    assert metrics is not None
    # Table 2's SPD column is the geomean over all REF inputs at 4-wide.
    table_width = 4 if 4 in config.widths else max(config.widths)
    metrics.spd = geomean_speedup(list(speedups[table_width].values()))
    return BenchmarkOutcome(
        name=name,
        speedups=speedups,
        metrics=metrics,
        converted=converted,
        forward_branches=forward,
    )


def run_suite(suite: str, config: RunConfig) -> List[BenchmarkOutcome]:
    return [run_benchmark(name, config) for name in suite_benchmarks(suite)]
