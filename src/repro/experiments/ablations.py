"""Ablation studies for the design choices DESIGN.md calls out.

* **Hoist-depth sweep** -- how the gain grows with the per-side hoist
  budget (the paper's benefit comes almost entirely from hoisted loads).
* **Selection-threshold sweep** -- the paper's 5% exposed-predictability
  rule vs looser/tighter thresholds.
* **DBB-size sweep** -- the paper sizes the Decomposed Branch Buffer at 16
  entries "empirically"; occupancy stays tiny because of back-pressure.
* **Push-down ablation** -- disabling the resolution-slice push-down.

Each sweep point is an independent engine job (the shared TRAIN profile
and baseline run are recomputed per point -- deterministic, and cached
after the first evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..analysis import render_table, speedup_percent
from ..compiler import compile_baseline, compile_decomposed, profile_program
from ..core import SelectionConfig, TransformConfig
from ..core.dbb import DecomposedBranchBuffer
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark
from .engine import ExperimentEngine, get_engine
from .harness import RunConfig


def _prepared(name: str, config: RunConfig):
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    profile = profile_program(
        lower(train), max_instructions=config.max_instructions
    )
    return ref, profile


def _baseline_run(name: str, config: RunConfig):
    ref, profile = _prepared(name, config)
    machine = config.machine_for(4)
    baseline = compile_baseline(ref, profile=profile)
    base_run = InOrderCore(machine).run(
        baseline.program, max_instructions=config.max_instructions
    )
    return ref, profile, machine, base_run


def _hoist_job(payload) -> dict:
    name, depth, config = payload
    ref, profile, machine, base_run = _baseline_run(name, config)
    decomposed = compile_decomposed(
        ref,
        profile=profile,
        transform_config=TransformConfig(max_hoist_per_side=depth),
    )
    dec_run = InOrderCore(machine).run(
        decomposed.program, max_instructions=config.max_instructions
    )
    return {
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
    }


def _threshold_job(payload) -> dict:
    name, threshold, config = payload
    ref, profile, machine, base_run = _baseline_run(name, config)
    selection = replace(
        SelectionConfig(), min_exposed_predictability=threshold
    )
    decomposed = compile_decomposed(
        ref, profile=profile, selection_config=selection
    )
    dec_run = InOrderCore(machine).run(
        decomposed.program, max_instructions=config.max_instructions
    )
    return {
        "converted": decomposed.transform.converted,
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
    }


def _push_down_job(payload) -> dict:
    name, push, config = payload
    ref, profile, machine, base_run = _baseline_run(name, config)
    decomposed = compile_decomposed(
        ref,
        profile=profile,
        transform_config=TransformConfig(push_down_slice=push),
    )
    dec_run = InOrderCore(machine).run(
        decomposed.program, max_instructions=config.max_instructions
    )
    return {
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
    }


def _dbb_job(payload) -> dict:
    name, size, config = payload
    ref, profile = _prepared(name, config)
    decomposed = compile_decomposed(ref, profile=profile)
    captured: List[DecomposedBranchBuffer] = []
    original_init = DecomposedBranchBuffer.__init__

    def tracking_init(self, entries=size):
        original_init(self, entries)
        captured.append(self)

    DecomposedBranchBuffer.__init__ = tracking_init
    try:
        machine = config.machine_for(4)
        run = InOrderCore(machine).run(
            decomposed.program, max_instructions=config.max_instructions
        )
    finally:
        DecomposedBranchBuffer.__init__ = original_init
    return {
        "max_outstanding": captured[-1].max_outstanding,
        "simulated_cycles": run.cycles,
        "committed_instructions": run.stats.committed,
    }


def hoist_depth_sweep(
    name: str = "omnetpp",
    depths: Tuple[int, ...] = (0, 2, 4, 8, 12),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[int, Optional[float]]]:
    """(hoist budget, % speedup) pairs for one benchmark; a failed
    engine job yields ``None`` for its point (rendered as FAILED)."""
    config = config or RunConfig()
    results = get_engine(engine).map(
        _hoist_job,
        [(name, depth, config) for depth in depths],
        labels=[f"ablation:hoist:{name}:{d}" for d in depths],
    )
    return [
        (d, r["speedup"] if r is not None else None)
        for d, r in zip(depths, results)
    ]


def selection_threshold_sweep(
    name: str = "h264ref",
    thresholds: Tuple[float, ...] = (0.01, 0.03, 0.05, 0.10, 0.20),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[float, Optional[int], Optional[float]]]:
    """(threshold, conversions, % speedup) around the paper's 5% rule."""
    config = config or RunConfig()
    results = get_engine(engine).map(
        _threshold_job,
        [(name, threshold, config) for threshold in thresholds],
        labels=[f"ablation:threshold:{name}:{t}" for t in thresholds],
    )
    return [
        (
            t,
            r["converted"] if r is not None else None,
            r["speedup"] if r is not None else None,
        )
        for t, r in zip(thresholds, results)
    ]


def push_down_ablation(
    name: str = "omnetpp",
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Optional[float]]:
    """Speedup with and without the resolution-slice push-down."""
    config = config or RunConfig()
    variants = (("with-push-down", True), ("without", False))
    results = get_engine(engine).map(
        _push_down_job,
        [(name, push, config) for _, push in variants],
        labels=[f"ablation:pushdown:{name}:{label}" for label, _ in variants],
    )
    return {
        label: r["speedup"] if r is not None else None
        for (label, _), r in zip(variants, results)
    }


def dbb_occupancy(
    name: str = "h264ref",
    sizes: Tuple[int, ...] = (4, 8, 16, 32),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[int, Optional[int]]]:
    """(DBB size, max outstanding decomposed branches observed).

    Confirms the paper's empirical claim that 16 entries are more than
    sufficient: in-order back-pressure keeps few decomposed branches in
    flight.
    """
    config = config or RunConfig()
    results = get_engine(engine).map(
        _dbb_job,
        [(name, size, config) for size in sizes],
        labels=[f"ablation:dbb:{name}:{s}" for s in sizes],
    )
    return [
        (size, r["max_outstanding"] if r is not None else None)
        for size, r in zip(sizes, results)
    ]


def render_all(
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    config = config or RunConfig()
    engine = get_engine(engine)
    def cell(value, fmt="{:.2f}"):
        # Engine-supervised job failures surface as None sweep points;
        # mark the cell instead of crashing the whole report.
        return fmt.format(value) if value is not None else "FAILED"

    blocks = []
    rows = [
        [str(d), cell(s)]
        for d, s in hoist_depth_sweep(config=config, engine=engine)
    ]
    blocks.append(render_table(["hoist budget", "speedup%"], rows,
                               title="Ablation: hoist depth (omnetpp)"))
    rows = [
        [f"{t:.2f}", cell(c, "{}"), cell(s)]
        for t, c, s in selection_threshold_sweep(
            config=config, engine=engine
        )
    ]
    blocks.append(
        render_table(
            ["threshold", "converted", "speedup%"],
            rows,
            title="Ablation: selection threshold (h264ref; paper uses 0.05)",
        )
    )
    push = push_down_ablation(config=config, engine=engine)
    rows = [[k, cell(v)] for k, v in push.items()]
    blocks.append(render_table(["variant", "speedup%"], rows,
                               title="Ablation: resolution-slice push-down"))
    rows = [
        [str(n), cell(m, "{}")]
        for n, m in dbb_occupancy(config=config, engine=engine)
    ]
    blocks.append(render_table(["DBB entries", "max outstanding"], rows,
                               title="Ablation: DBB sizing (paper: 16 suffices)"))
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render_all())


if __name__ == "__main__":  # pragma: no cover
    main()
