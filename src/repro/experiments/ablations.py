"""Ablation studies for the design choices DESIGN.md calls out.

* **Hoist-depth sweep** -- how the gain grows with the per-side hoist
  budget (the paper's benefit comes almost entirely from hoisted loads).
* **Selection-threshold sweep** -- the paper's 5% exposed-predictability
  rule vs looser/tighter thresholds.
* **DBB-size sweep** -- the paper sizes the Decomposed Branch Buffer at 16
  entries "empirically"; occupancy stays tiny because of back-pressure.
* **Push-down ablation** -- disabling the resolution-slice push-down.

Each sweep point is an independent engine job.  The TRAIN profile, the
compiled programs, and (most importantly) the executed instruction
streams are shared through the artifact store (:mod:`.artifacts`): the
first sweep point of a benchmark captures each program's trace once,
every other point replays it bit-identically, so an N-point sweep pays
for roughly one execute-driven run per distinct program instead of N.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import json

from ..analysis import render_table, speedup_percent
from ..branchpred import HybridPredictor
from ..compiler import compile_baseline, compile_decomposed
from ..core import SelectionConfig, TransformConfig
from ..ir import lower
from ..uarch import InOrderCore, TraceCapture, predictor_id
from ..workloads import spec_benchmark
from .artifacts import get_store
from .engine import ExperimentEngine, fingerprint, get_engine
from .harness import RunConfig


def _prepared(name: str, config: RunConfig):
    store = get_store()
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    profile = store.profile(
        lower(train),
        max_instructions=config.max_instructions,
        predictor_factory=HybridPredictor,
    )
    return ref, profile


class _LazyPrepared:
    """Defer workload building + profiling until a compile actually
    misses.  Building the TRAIN/REF workloads costs real time per job;
    a follower sweep point whose compile artifacts all hit never needs
    them, so ``_prepared`` only runs on first use."""

    def __init__(self, name: str, config: RunConfig) -> None:
        self._name = name
        self._config = config
        self._value: Optional[tuple] = None

    def __call__(self):
        if self._value is None:
            self._value = _prepared(self._name, self._config)
        return self._value


def _ablation_compile(name, config, variant, build):
    store = get_store()
    key = (
        f"ablation|{name}|it={config.iterations}"
        f"|train={config.train_seed}|ref={config.ref_seeds[0]}"
        f"|budget={config.max_instructions}|"
        + json.dumps(fingerprint(variant), sort_keys=True)
    )
    return store.compile(key, build)


def _baseline_run(name: str, config: RunConfig):
    store = get_store()
    ref, profile = _prepared(name, config)
    machine = config.machine_for(4)
    baseline = _ablation_compile(
        name, config, "baseline",
        lambda: compile_baseline(ref, profile=profile),
    )
    base_run = store.simulate_inorder(
        baseline.program, machine, max_instructions=config.max_instructions
    )
    return ref, profile, machine, base_run


def _hoist_job(payload) -> dict:
    name, depth, config = payload
    store = get_store()
    mark = store.mark()
    ref, profile, machine, base_run = _baseline_run(name, config)
    transform = TransformConfig(max_hoist_per_side=depth)
    decomposed = _ablation_compile(
        name, config, ("hoist", transform),
        lambda: compile_decomposed(
            ref, profile=profile, transform_config=transform
        ),
    )
    dec_run = store.simulate_inorder(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    return {
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def _threshold_job(payload) -> dict:
    name, threshold, config = payload
    store = get_store()
    mark = store.mark()
    ref, profile, machine, base_run = _baseline_run(name, config)
    selection = replace(
        SelectionConfig(), min_exposed_predictability=threshold
    )
    decomposed = _ablation_compile(
        name, config, ("threshold", selection),
        lambda: compile_decomposed(
            ref, profile=profile, selection_config=selection
        ),
    )
    dec_run = store.simulate_inorder(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    return {
        "converted": decomposed.transform.converted,
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def _push_down_job(payload) -> dict:
    name, push, config = payload
    store = get_store()
    mark = store.mark()
    ref, profile, machine, base_run = _baseline_run(name, config)
    transform = TransformConfig(push_down_slice=push)
    decomposed = _ablation_compile(
        name, config, ("pushdown", transform),
        lambda: compile_decomposed(
            ref, profile=profile, transform_config=transform
        ),
    )
    dec_run = store.simulate_inorder(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    return {
        "speedup": speedup_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def _dbb_job(payload) -> dict:
    name, size, config = payload
    store = get_store()
    mark = store.mark()
    prep = _LazyPrepared(name, config)
    decomposed = _ablation_compile(
        name, config, "dbb-decomposed",
        lambda: compile_decomposed(prep()[0], profile=prep()[1]),
    )
    # The swept size now actually reaches the core (the old version
    # monkeypatched a default argument the core never used, so every
    # point silently simulated 16 entries).  The DBB never influences
    # timing or architectural state, so the occupancy high-water mark
    # is read off the committed trace -- identical for every size.
    machine = replace(config.machine_for(4), dbb_entries=size)
    run = store.simulate_inorder(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    trace = store.peek_trace(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    if trace is None:  # replay disabled: capture one explicitly
        capture = TraceCapture()
        run = InOrderCore(machine).run(
            decomposed.program,
            max_instructions=config.max_instructions,
            capture=capture,
        )
        trace = capture.finish(
            decomposed.program,
            run,
            config.max_instructions,
            predictor_id(machine.predictor_factory),
        )
    return {
        "max_outstanding": trace.max_outstanding_predicts(
            decomposed.program
        ),
        "simulated_cycles": run.cycles,
        "committed_instructions": run.stats.committed,
        "artifacts": store.delta(mark),
    }


def hoist_depth_sweep(
    name: str = "omnetpp",
    depths: Tuple[int, ...] = (0, 2, 4, 8, 12),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[int, Optional[float]]]:
    """(hoist budget, % speedup) pairs for one benchmark; a failed
    engine job yields ``None`` for its point (rendered as FAILED)."""
    config = config or RunConfig()
    results = get_engine(engine).map(
        _hoist_job,
        [(name, depth, config) for depth in depths],
        labels=[f"ablation:hoist:{name}:{d}" for d in depths],
        groups=[name] * len(depths),
    )
    return [
        (d, r["speedup"] if r is not None else None)
        for d, r in zip(depths, results)
    ]


def selection_threshold_sweep(
    name: str = "h264ref",
    thresholds: Tuple[float, ...] = (0.01, 0.03, 0.05, 0.10, 0.20),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[float, Optional[int], Optional[float]]]:
    """(threshold, conversions, % speedup) around the paper's 5% rule."""
    config = config or RunConfig()
    results = get_engine(engine).map(
        _threshold_job,
        [(name, threshold, config) for threshold in thresholds],
        labels=[f"ablation:threshold:{name}:{t}" for t in thresholds],
        groups=[name] * len(thresholds),
    )
    return [
        (
            t,
            r["converted"] if r is not None else None,
            r["speedup"] if r is not None else None,
        )
        for t, r in zip(thresholds, results)
    ]


def push_down_ablation(
    name: str = "omnetpp",
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Optional[float]]:
    """Speedup with and without the resolution-slice push-down."""
    config = config or RunConfig()
    variants = (("with-push-down", True), ("without", False))
    results = get_engine(engine).map(
        _push_down_job,
        [(name, push, config) for _, push in variants],
        labels=[f"ablation:pushdown:{name}:{label}" for label, _ in variants],
        groups=[name] * len(variants),
    )
    return {
        label: r["speedup"] if r is not None else None
        for (label, _), r in zip(variants, results)
    }


def _btb_job(payload) -> dict:
    name, entries, config = payload
    store = get_store()
    mark = store.mark()
    prep = _LazyPrepared(name, config)
    decomposed = _ablation_compile(
        name, config, "btb-decomposed",
        lambda: compile_decomposed(prep()[0], profile=prep()[1]),
    )
    # The BTB is purely a front-end timing structure (a miss on a
    # taken redirect only adds a bubble), so every size replays the
    # same captured trace.
    machine = replace(config.machine_for(4), btb_entries=entries)
    run = store.simulate_inorder(
        decomposed.program, machine, max_instructions=config.max_instructions
    )
    return {
        "cycles": run.cycles,
        "btb_bubbles": run.stats.btb_miss_bubbles,
        "simulated_cycles": run.cycles,
        "committed_instructions": run.stats.committed,
        "artifacts": store.delta(mark),
    }


def btb_sizing_sweep(
    name: str = "mcf",
    entries: Tuple[int, ...] = (
        8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
    ),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[int, Optional[float], Optional[int]]]:
    """(BTB entries, % slowdown vs the largest size, BTB-miss bubbles)
    for the decomposed binary.

    PREDICT-taken redirects only come for free when the BTB knows the
    branch target, so the decomposed binary leans on BTB capacity: the
    sweep shows how many redirects degrade to bubbles as the front end
    shrinks, and how much of that the issue stage actually feels.
    """
    config = config or RunConfig()
    results = get_engine(engine).map(
        _btb_job,
        [(name, n, config) for n in entries],
        labels=[f"ablation:btb:{name}:{n}" for n in entries],
        groups=[name] * len(entries),
    )
    reference = next(
        (
            r["cycles"]
            for _, r in sorted(
                zip(entries, results), key=lambda p: -p[0]
            )
            if r is not None
        ),
        None,
    )
    return [
        (
            n,
            (100.0 * (r["cycles"] - reference) / reference)
            if r is not None and reference
            else None,
            r["btb_bubbles"] if r is not None else None,
        )
        for n, r in zip(entries, results)
    ]


def dbb_occupancy(
    name: str = "h264ref",
    sizes: Tuple[int, ...] = (4, 8, 16, 32),
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Tuple[int, Optional[int]]]:
    """(DBB size, max outstanding decomposed branches observed).

    Confirms the paper's empirical claim that 16 entries are more than
    sufficient: in-order back-pressure keeps few decomposed branches in
    flight.
    """
    config = config or RunConfig()
    results = get_engine(engine).map(
        _dbb_job,
        [(name, size, config) for size in sizes],
        labels=[f"ablation:dbb:{name}:{s}" for s in sizes],
        groups=[name] * len(sizes),
    )
    return [
        (size, r["max_outstanding"] if r is not None else None)
        for size, r in zip(sizes, results)
    ]


def render_all(
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    config = config or RunConfig()
    engine = get_engine(engine)
    def cell(value, fmt="{:.2f}"):
        # Engine-supervised job failures surface as None sweep points;
        # mark the cell instead of crashing the whole report.
        return fmt.format(value) if value is not None else "FAILED"

    blocks = []
    rows = [
        [str(d), cell(s)]
        for d, s in hoist_depth_sweep(config=config, engine=engine)
    ]
    blocks.append(render_table(["hoist budget", "speedup%"], rows,
                               title="Ablation: hoist depth (omnetpp)"))
    rows = [
        [f"{t:.2f}", cell(c, "{}"), cell(s)]
        for t, c, s in selection_threshold_sweep(
            config=config, engine=engine
        )
    ]
    blocks.append(
        render_table(
            ["threshold", "converted", "speedup%"],
            rows,
            title="Ablation: selection threshold (h264ref; paper uses 0.05)",
        )
    )
    push = push_down_ablation(config=config, engine=engine)
    rows = [[k, cell(v)] for k, v in push.items()]
    blocks.append(render_table(["variant", "speedup%"], rows,
                               title="Ablation: resolution-slice push-down"))
    rows = [
        [str(n), cell(m, "{}")]
        for n, m in dbb_occupancy(config=config, engine=engine)
    ]
    blocks.append(render_table(["DBB entries", "max outstanding"], rows,
                               title="Ablation: DBB sizing (paper: 16 suffices)"))
    rows = [
        [str(n), cell(s), cell(b, "{}")]
        for n, s, b in btb_sizing_sweep(config=config, engine=engine)
    ]
    blocks.append(
        render_table(
            ["BTB entries", "slowdown%", "BTB bubbles"],
            rows,
            title="Ablation: BTB sizing, decomposed binary "
            "(PREDICT redirects need BTB hits)",
        )
    )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render_all())


if __name__ == "__main__":  # pragma: no cover
    main()
