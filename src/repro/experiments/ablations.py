"""Ablation studies for the design choices DESIGN.md calls out.

* **Hoist-depth sweep** -- how the gain grows with the per-side hoist
  budget (the paper's benefit comes almost entirely from hoisted loads).
* **Selection-threshold sweep** -- the paper's 5% exposed-predictability
  rule vs looser/tighter thresholds.
* **DBB-size sweep** -- the paper sizes the Decomposed Branch Buffer at 16
  entries "empirically"; occupancy stays tiny because of back-pressure.
* **Push-down ablation** -- disabling the resolution-slice push-down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..analysis import render_table, speedup_percent
from ..compiler import compile_baseline, compile_decomposed, profile_program
from ..core import SelectionConfig, TransformConfig
from ..core.dbb import DecomposedBranchBuffer
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark
from .harness import RunConfig


def _prepared(name: str, config: RunConfig):
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    profile = profile_program(
        lower(train), max_instructions=config.max_instructions
    )
    return ref, profile


def hoist_depth_sweep(
    name: str = "omnetpp",
    depths: Tuple[int, ...] = (0, 2, 4, 8, 12),
    config: Optional[RunConfig] = None,
) -> List[Tuple[int, float]]:
    """(hoist budget, % speedup) pairs for one benchmark."""
    config = config or RunConfig()
    ref, profile = _prepared(name, config)
    machine = config.machine_for(4)
    baseline = compile_baseline(ref, profile=profile)
    base_run = InOrderCore(machine).run(
        baseline.program, max_instructions=config.max_instructions
    )
    out = []
    for depth in depths:
        decomposed = compile_decomposed(
            ref,
            profile=profile,
            transform_config=TransformConfig(max_hoist_per_side=depth),
        )
        dec_run = InOrderCore(machine).run(
            decomposed.program, max_instructions=config.max_instructions
        )
        out.append((depth, speedup_percent(base_run, dec_run)))
    return out


def selection_threshold_sweep(
    name: str = "h264ref",
    thresholds: Tuple[float, ...] = (0.01, 0.03, 0.05, 0.10, 0.20),
    config: Optional[RunConfig] = None,
) -> List[Tuple[float, int, float]]:
    """(threshold, conversions, % speedup) around the paper's 5% rule."""
    config = config or RunConfig()
    ref, profile = _prepared(name, config)
    machine = config.machine_for(4)
    baseline = compile_baseline(ref, profile=profile)
    base_run = InOrderCore(machine).run(
        baseline.program, max_instructions=config.max_instructions
    )
    out = []
    for threshold in thresholds:
        selection = replace(
            SelectionConfig(), min_exposed_predictability=threshold
        )
        decomposed = compile_decomposed(
            ref, profile=profile, selection_config=selection
        )
        dec_run = InOrderCore(machine).run(
            decomposed.program, max_instructions=config.max_instructions
        )
        out.append(
            (
                threshold,
                decomposed.transform.converted,
                speedup_percent(base_run, dec_run),
            )
        )
    return out


def push_down_ablation(
    name: str = "omnetpp", config: Optional[RunConfig] = None
) -> Dict[str, float]:
    """Speedup with and without the resolution-slice push-down."""
    config = config or RunConfig()
    ref, profile = _prepared(name, config)
    machine = config.machine_for(4)
    baseline = compile_baseline(ref, profile=profile)
    base_run = InOrderCore(machine).run(
        baseline.program, max_instructions=config.max_instructions
    )
    out = {}
    for label, push in (("with-push-down", True), ("without", False)):
        decomposed = compile_decomposed(
            ref,
            profile=profile,
            transform_config=TransformConfig(push_down_slice=push),
        )
        dec_run = InOrderCore(machine).run(
            decomposed.program, max_instructions=config.max_instructions
        )
        out[label] = speedup_percent(base_run, dec_run)
    return out


def dbb_occupancy(
    name: str = "h264ref",
    sizes: Tuple[int, ...] = (4, 8, 16, 32),
    config: Optional[RunConfig] = None,
) -> List[Tuple[int, int]]:
    """(DBB size, max outstanding decomposed branches observed).

    Confirms the paper's empirical claim that 16 entries are more than
    sufficient: in-order back-pressure keeps few decomposed branches in
    flight.
    """
    config = config or RunConfig()
    ref, profile = _prepared(name, config)
    decomposed = compile_decomposed(ref, profile=profile)

    observed: List[Tuple[int, int]] = []
    for size in sizes:
        captured: List[DecomposedBranchBuffer] = []
        original_init = DecomposedBranchBuffer.__init__

        def tracking_init(self, entries=size):
            original_init(self, entries)
            captured.append(self)

        DecomposedBranchBuffer.__init__ = tracking_init
        try:
            machine = config.machine_for(4)
            InOrderCore(machine).run(
                decomposed.program,
                max_instructions=config.max_instructions,
            )
        finally:
            DecomposedBranchBuffer.__init__ = original_init
        observed.append((size, captured[-1].max_outstanding))
    return observed


def render_all(config: Optional[RunConfig] = None) -> str:
    config = config or RunConfig()
    blocks = []
    rows = [[str(d), f"{s:.2f}"] for d, s in hoist_depth_sweep(config=config)]
    blocks.append(render_table(["hoist budget", "speedup%"], rows,
                               title="Ablation: hoist depth (omnetpp)"))
    rows = [
        [f"{t:.2f}", str(c), f"{s:.2f}"]
        for t, c, s in selection_threshold_sweep(config=config)
    ]
    blocks.append(
        render_table(
            ["threshold", "converted", "speedup%"],
            rows,
            title="Ablation: selection threshold (h264ref; paper uses 0.05)",
        )
    )
    push = push_down_ablation(config=config)
    rows = [[k, f"{v:.2f}"] for k, v in push.items()]
    blocks.append(render_table(["variant", "speedup%"], rows,
                               title="Ablation: resolution-slice push-down"))
    rows = [[str(n), str(m)] for n, m in dbb_occupancy(config=config)]
    blocks.append(render_table(["DBB entries", "max outstanding"], rows,
                               title="Ablation: DBB sizing (paper: 16 suffices)"))
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render_all())


if __name__ == "__main__":  # pragma: no cover
    main()
