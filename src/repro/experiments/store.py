"""Durable blob-store protocol under the artifact layer.

The artifact store (:mod:`.artifacts`) used to open files directly,
which was fine while every worker lived on one host and wrote to a
local disk.  With pluggable execution backends (:mod:`.backends`) the
cache root can be a shared directory that several hosts' queue workers
hit concurrently, and every crossing of that boundary is a chance for
a torn or corrupt transfer.  This module pins the contract down:

* :class:`StoreProtocol` -- ``get``/``put``/``contains`` (+ ``delete``)
  over named blobs.  ``put`` is durable (fsync before the atomic
  rename) and records a SHA-256 digest; ``get`` verifies the digest on
  every read and treats a mismatch as a miss after quarantining the
  damage.  Implementations retry transient I/O errors with backoff.
* :class:`FileStore` -- the directory implementation used everywhere
  today.  Digests live in ``<name>.sum`` sidecars next to each blob;
  a blob without a sidecar (written by an older version) is served
  unverified, so existing caches keep working.
* :func:`quarantine_file` -- the one shared quarantine move.  It
  uniquifies the destination (two different corrupt artifacts can
  share a basename) and enforces a small retention cap so quarantine
  can never grow without bound.

Fault injection: the ``torn_put`` kind (:mod:`.faults`) truncates the
blob *after* its digest was recorded, modelling a transfer that died
mid-copy; the next verified ``get`` detects the tear, quarantines the
blob, and reports a miss so the caller recomputes.

Environment knobs: ``REPRO_STORE_RETRIES`` (transient-I/O retries per
operation, default 2), ``REPRO_STORE_BACKOFF`` (base backoff seconds,
default 0.05).
"""

from __future__ import annotations

import abc
import hashlib
import os
import pathlib
import secrets
import tempfile
import time
from typing import Callable, Dict, Optional

from . import faults

#: Quarantined files kept per quarantine directory (oldest beyond the
#: cap are deleted on the next quarantine).
QUARANTINE_CAP = 64


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return max(0, int(raw)) if raw else default
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    try:
        return max(0.0, float(raw)) if raw else default
    except ValueError:
        return default


def quarantine_file(
    quarantine_dir: pathlib.Path,
    path: pathlib.Path,
    cap: int = QUARANTINE_CAP,
) -> Optional[pathlib.Path]:
    """Move ``path`` into ``quarantine_dir`` without clobbering.

    The destination used to be ``quarantine_dir / path.name``, which
    silently overwrote an earlier quarantined file with the same
    basename (a recaptured-then-recorrupted artifact, or a result
    cache entry and a trace sharing a digest prefix).  Collisions now
    get a uniquifying suffix, and the directory is trimmed to ``cap``
    entries (oldest first) so inspection debris cannot accumulate
    forever.  Returns the destination, or ``None`` when the move
    failed (the caller treats that as "nothing quarantined").
    """
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = quarantine_dir / path.name
        if dest.exists():
            dest = quarantine_dir / (
                f"{path.name}.{int(time.time() * 1000):x}"
                f"-{secrets.token_hex(3)}"
            )
        os.replace(path, dest)
    except OSError:
        return None
    _trim_quarantine(quarantine_dir, cap)
    return dest


def _trim_quarantine(quarantine_dir: pathlib.Path, cap: int) -> None:
    try:
        entries = [
            (p.stat().st_mtime, p)
            for p in quarantine_dir.iterdir()
            if p.is_file()
        ]
    except OSError:
        return
    entries.sort()
    for _, stale in entries[: max(0, len(entries) - cap)]:
        try:
            stale.unlink()
        except OSError:
            pass


def fsync_write(path: pathlib.Path, blob: bytes) -> None:
    """Durable atomic write: temp file, fsync, ``os.replace``.

    The fsync *before* the rename is what makes the artifact survive a
    SIGKILL or power loss: without it the rename can land while the
    data is still only in the page cache, leaving a durable name over
    torn contents.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class StoreProtocol(abc.ABC):
    """Named-blob storage every artifact boundary crossing goes through.

    Implementations must make ``put`` atomic and durable, verify
    content integrity on ``get`` (a failed verification is a miss, not
    an error), and retry transient I/O faults internally.  Names are
    relative POSIX-style paths (``traces/<key>.trace``); the backing
    substrate -- local directory, shared mount, object store -- is the
    implementation's business.
    """

    @abc.abstractmethod
    def put(self, name: str, blob: bytes) -> bool:
        """Store ``blob`` durably under ``name``; True on success."""

    @abc.abstractmethod
    def get(self, name: str) -> Optional[bytes]:
        """Verified read; ``None`` for absent *or corrupt* blobs."""

    @abc.abstractmethod
    def contains(self, name: str) -> bool:
        """Whether a blob named ``name`` exists (unverified)."""

    @abc.abstractmethod
    def delete(self, name: str) -> None:
        """Remove ``name`` (and its integrity record), if present."""

    @abc.abstractmethod
    def path_for(self, name: str) -> pathlib.Path:
        """Local path of ``name`` (for quarantine/legacy callers)."""


class FileStore(StoreProtocol):
    """Directory-backed store with digest sidecars.

    ``put(name, blob)`` writes ``<root>/<name>`` (fsync + atomic
    rename) and a ``<name>.sum`` sidecar holding the blob's SHA-256;
    ``get`` re-hashes the blob against the sidecar and quarantines
    both on mismatch.  Pre-sidecar blobs read back unverified, so a
    cache written by an older version is still served.  Transient
    ``OSError``\\ s (a flaky shared mount) are retried with backoff.
    """

    SIDECAR_SUFFIX = ".sum"

    def __init__(
        self,
        root: pathlib.Path,
        quarantine_dir: Optional[pathlib.Path] = None,
        on_counter: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.quarantine_dir = pathlib.Path(
            quarantine_dir
            if quarantine_dir is not None
            else self.root / "quarantine"
        )
        self.retries = _env_int("REPRO_STORE_RETRIES", 2)
        self.backoff = _env_float("REPRO_STORE_BACKOFF", 0.05)
        self.counters: Dict[str, int] = {
            "puts": 0,
            "gets": 0,
            "put_retries": 0,
            "get_retries": 0,
            "verify_failures": 0,
        }
        #: Optional counter mirror (the artifact store aggregates
        #: these into its per-job envelope counters).
        self._on_counter = on_counter

    def _bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by
        if self._on_counter is not None:
            for _ in range(by):
                self._on_counter(name)

    def path_for(self, name: str) -> pathlib.Path:
        return self.root / name

    def _sidecar(self, name: str) -> pathlib.Path:
        return self.root / (name + self.SIDECAR_SUFFIX)

    def _retry(self, op: Callable[[], bytes], counter: str):
        """Run ``op``; retry transient OSErrors with backoff."""
        attempt = 0
        while True:
            try:
                return op()
            except FileNotFoundError:
                raise
            except OSError:
                if attempt >= self.retries:
                    raise
                self._bump(counter)
                time.sleep(self.backoff * (2 ** attempt))
                attempt += 1

    def put(self, name: str, blob: bytes) -> bool:
        digest = hashlib.sha256(blob).hexdigest()
        if faults.should_tear_put(name):
            # A transfer that died mid-copy: the digest was computed
            # over the full payload, the bytes on disk are short.
            blob = blob[: max(1, len(blob) // 2)]
        path = self.path_for(name)
        try:
            self._retry(
                lambda: fsync_write(path, blob), "put_retries"
            )
            self._retry(
                lambda: fsync_write(
                    self._sidecar(name), digest.encode()
                ),
                "put_retries",
            )
        except OSError:
            return False
        self._bump("puts")
        return True

    def get(self, name: str) -> Optional[bytes]:
        path = self.path_for(name)
        try:
            blob = self._retry(path.read_bytes, "get_retries")
        except OSError:
            return None
        self._bump("gets")
        try:
            recorded = self._sidecar(name).read_text().strip()
        except OSError:
            return blob  # pre-sidecar blob: serve unverified
        if hashlib.sha256(blob).hexdigest() != recorded:
            self._bump("verify_failures")
            quarantine_file(self.quarantine_dir, path)
            try:
                self._sidecar(name).unlink()
            except OSError:
                pass
            return None
        return blob

    def contains(self, name: str) -> bool:
        return self.path_for(name).exists()

    def verify_blob(self, name: str) -> str:
        """Offline integrity check of one blob against its sidecar.

        Returns ``"ok"`` (digest matches), ``"mismatch"`` (bytes do
        not hash to the recorded digest -- a torn or corrupted blob),
        ``"unverified"`` (no sidecar: a pre-sidecar write, served
        as-is by :meth:`get`), or ``"missing"`` (no blob).  Unlike
        :meth:`get` this moves no counters and quarantines nothing --
        it exists for ``repro cache verify``, which decides what to do
        with the report."""
        path = self.path_for(name)
        try:
            blob = path.read_bytes()
        except OSError:
            return "missing"
        try:
            recorded = self._sidecar(name).read_text().strip()
        except OSError:
            return "unverified"
        if hashlib.sha256(blob).hexdigest() != recorded:
            return "mismatch"
        return "ok"

    def delete(self, name: str) -> None:
        for victim in (self.path_for(name), self._sidecar(name)):
            try:
                victim.unlink()
            except OSError:
                pass
