"""Experiment runners: one per table/figure of the paper's evaluation.

* :mod:`.engine`        -- parallel execution engine + result cache,
  job supervision (fault isolation, retries, timeouts), and the
  checkpoint/resume run journal.
* :mod:`.backends`      -- pluggable execution backends: the supervised
  local pool and the lease-based multi-worker queue (``REPRO_BACKEND``).
* :mod:`.store`         -- durable blob-store protocol (digest-verified
  ``get``/``put``) under the artifact layer.
* :mod:`.faults`        -- deterministic fault-injection harness
  (``REPRO_FAULT_INJECT``) for exercising the supervision layer.
* :mod:`.table2`        -- Table 2 (per-benchmark metrics, 4-wide).
* :mod:`.speedups`      -- Figures 8-13 (suite speedup charts, 2/4/8-wide).
* :mod:`.pred_vs_bias`  -- Figures 2-3 (predictability vs bias curves).
* :mod:`.sensitivity`   -- Section 5.3 (predictor ladder).
* :mod:`.side_effects`  -- Figure 14 and Section 6.1.
* :mod:`.taxonomy`      -- Figure 1 (quadrant census).
* :mod:`.motivation`    -- Section 1 (in-order vs out-of-order premise).
* :mod:`.quadrants`     -- Figure 1 prescriptions validated empirically.
* :mod:`.ablations`     -- design-choice sweeps.

Every runner takes an optional ``engine`` (an
:class:`~repro.experiments.engine.ExperimentEngine`); by default the
process-wide engine is used, which honours ``REPRO_JOBS`` and the
``results/.cache/`` result cache.
"""

from .backends import (
    Backend,
    BackendUnavailable,
    LocalPoolBackend,
    QueueBackend,
    queue_worker_main,
)
from .engine import ExperimentEngine, default_engine, get_engine
from .harness import (
    BenchmarkOutcome,
    RunConfig,
    combine_seed_results,
    run_benchmark,
    run_seed,
    run_suite,
)

from .store import FileStore, StoreProtocol

__all__ = [
    "Backend",
    "BackendUnavailable",
    "BenchmarkOutcome",
    "ExperimentEngine",
    "FileStore",
    "LocalPoolBackend",
    "QueueBackend",
    "RunConfig",
    "StoreProtocol",
    "combine_seed_results",
    "default_engine",
    "get_engine",
    "queue_worker_main",
    "run_benchmark",
    "run_seed",
    "run_suite",
]
