"""Experiment runners: one per table/figure of the paper's evaluation.

* :mod:`.table2`        -- Table 2 (per-benchmark metrics, 4-wide).
* :mod:`.speedups`      -- Figures 8-13 (suite speedup charts, 2/4/8-wide).
* :mod:`.pred_vs_bias`  -- Figures 2-3 (predictability vs bias curves).
* :mod:`.sensitivity`   -- Section 5.3 (predictor ladder).
* :mod:`.side_effects`  -- Figure 14 and Section 6.1.
* :mod:`.taxonomy`      -- Figure 1 (quadrant census).
* :mod:`.motivation`    -- Section 1 (in-order vs out-of-order premise).
* :mod:`.quadrants`     -- Figure 1 prescriptions validated empirically.
* :mod:`.ablations`     -- design-choice sweeps.
"""

from .harness import BenchmarkOutcome, RunConfig, run_benchmark, run_suite

__all__ = [
    "BenchmarkOutcome",
    "RunConfig",
    "run_benchmark",
    "run_suite",
]
