"""Section 6 side-effect studies.

* **Figure 14** -- % increase in issued instructions, 4-wide experimental
  vs 4-wide baseline, across SPEC 2006 (FP near zero, INT small: the
  transformation's wrong-path hoisted work plus correction code).
* **Section 6.1** -- code size: PISCS is ~9% on average; shrinking the
  32 KB I-cache by 25% to 24 KB costs the 4-wide in-order <0.5% geomean;
  and only a small share of I$ misses lands under a branch-misprediction
  shadow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import (
    geomean_speedup,
    issued_increase_percent,
    render_bars,
    render_table,
    speedup_percent,
)
from ..branchpred import HybridPredictor
from ..compiler import compile_baseline, compile_decomposed
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import spec_benchmark, suite_benchmarks
from .artifacts import get_store
from .engine import ExperimentEngine, get_engine
from .harness import RunConfig


def _compiled(name: str, config: RunConfig, store):
    """Profile + compile via the artifact store (default knobs, as these
    studies always use; traces downstream are content-addressed, so
    they are shared with the main harness runs automatically)."""
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    profile = store.profile(
        lower(train),
        max_instructions=config.max_instructions,
        predictor_factory=HybridPredictor,
    )
    content = (
        f"sidefx|{name}|it={config.iterations}"
        f"|train={config.train_seed}|ref={config.ref_seeds[0]}"
        f"|budget={config.max_instructions}"
    )
    baseline = store.compile(
        f"baseline|{content}",
        lambda: compile_baseline(ref, profile=profile),
    )
    decomposed = store.compile(
        f"decomposed|{content}",
        lambda: compile_decomposed(ref, profile=profile),
    )
    return baseline, decomposed


@dataclass
class IssueIncreaseResult:
    """Figure 14 data."""

    values: List[Tuple[str, float]]  # (benchmark, % increase)
    #: Benchmarks whose engine jobs failed (bars omitted, called out).
    failed: List[str] = field(default_factory=list)

    def mean_increase(self) -> float:
        if not self.values:
            return 0.0
        return sum(v for _, v in self.values) / len(self.values)

    def render(self) -> str:
        out = render_bars(
            self.values,
            title="Figure 14: % increase in instructions issued "
            "(4-wide experimental vs baseline)",
        )
        if self.failed:
            out += "\nmissing bars (job failures): " + ", ".join(
                self.failed
            )
        return out


def _issue_job(payload) -> dict:
    """Figure 14 datapoint for one benchmark; engine-mappable."""
    name, config = payload
    store = get_store()
    mark = store.mark()
    machine = config.machine_for(4)
    baseline, decomposed = _compiled(name, config, store)
    # Sweep front door (K=1 today; fuses for free once Fig. 14 grows
    # a width axis).
    [base_run] = store.simulate_inorder_sweep(
        baseline.program, [machine],
        max_instructions=config.max_instructions,
    )
    [dec_run] = store.simulate_inorder_sweep(
        decomposed.program, [machine],
        max_instructions=config.max_instructions,
    )
    return {
        "increase": issued_increase_percent(base_run, dec_run),
        "simulated_cycles": base_run.cycles + dec_run.cycles,
        "committed_instructions": (
            base_run.stats.committed + dec_run.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def run_issue_increase(
    config: Optional[RunConfig] = None,
    suites: Tuple[str, ...] = ("int2006", "fp2006"),
    engine: Optional[ExperimentEngine] = None,
) -> IssueIncreaseResult:
    config = config or RunConfig()
    names = [
        name for suite in suites for name in suite_benchmarks(suite)
    ]
    results = get_engine(engine).map(
        _issue_job,
        [(name, config) for name in names],
        labels=[f"fig14:{name}" for name in names],
        groups=list(names),
    )
    return IssueIncreaseResult(
        values=[
            (name, result["increase"])
            for name, result in zip(names, results)
            if result is not None
        ],
        failed=[
            name for name, result in zip(names, results) if result is None
        ],
    )


@dataclass
class ICacheResult:
    """Section 6.1 data."""

    #: (benchmark, % slowdown of the 24KB-I$ baseline vs 32KB).
    shrink_slowdowns: List[Tuple[str, float]]
    #: (benchmark, % static code size increase).
    piscs: List[Tuple[str, float]]
    #: (benchmark, % of I$ misses under a mispredict shadow, baseline).
    misses_under_mispredict: List[Tuple[str, float]]
    #: Benchmarks whose engine jobs failed (rows omitted, called out).
    failed: List[str] = field(default_factory=list)

    def geomean_slowdown(self) -> float:
        return -geomean_speedup([-v for _, v in self.shrink_slowdowns])

    def mean_piscs(self) -> float:
        if not self.piscs:
            return 0.0
        return sum(v for _, v in self.piscs) / len(self.piscs)

    def render(self) -> str:
        rows = []
        for (name, slow), (_, size), (_, shadow) in zip(
            self.shrink_slowdowns, self.piscs, self.misses_under_mispredict
        ):
            rows.append(
                [name, f"{slow:.2f}", f"{size:.1f}", f"{shadow:.1f}"]
            )
        rows.extend([name, "FAILED", "-", "-"] for name in self.failed)
        return render_table(
            ["benchmark", "24KB-I$ slowdown%", "PISCS%", "I$ miss under misp%"],
            rows,
            title=(
                "Section 6.1 (paper: <0.5% geomean slowdown, ~9% PISCS, "
                "~15% of I$ misses under mispredict)"
            ),
        )


def _icache_job(payload) -> dict:
    """Section 6.1 datapoint for one benchmark; engine-mappable.

    The I$ geometry is purely a timing knob, so both machine variants
    replay the same captured baseline trace.
    """
    name, config = payload
    store = get_store()
    mark = store.mark()
    machine_32k = config.machine_for(4)
    machine_24k = machine_32k.with_icache_bytes(24 * 1024)
    baseline, decomposed = _compiled(name, config, store)
    # One sweep call; the two geometries address different prep
    # slices, so the front door replays them per-point automatically.
    run_32k, run_24k = store.simulate_inorder_sweep(
        baseline.program, [machine_32k, machine_24k],
        max_instructions=config.max_instructions,
    )
    misses = run_32k.stats.icache_misses or 1
    return {
        # Slowdown of the smaller I$ = -speedup.
        "slowdown": -speedup_percent(run_32k, run_24k),
        "pisc": decomposed.transform.pisc,
        "shadow": (
            100.0 * run_32k.stats.icache_misses_under_mispredict / misses
        ),
        "simulated_cycles": run_32k.cycles + run_24k.cycles,
        "committed_instructions": (
            run_32k.stats.committed + run_24k.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def run_icache(
    config: Optional[RunConfig] = None,
    suite: str = "int2006",
    engine: Optional[ExperimentEngine] = None,
) -> ICacheResult:
    config = config or RunConfig()
    names = suite_benchmarks(suite)
    results = get_engine(engine).map(
        _icache_job,
        [(name, config) for name in names],
        labels=[f"sec61:{name}" for name in names],
        groups=list(names),
    )
    measured = [
        (n, r) for n, r in zip(names, results) if r is not None
    ]
    return ICacheResult(
        shrink_slowdowns=[(n, r["slowdown"]) for n, r in measured],
        piscs=[(n, r["pisc"]) for n, r in measured],
        misses_under_mispredict=[(n, r["shadow"]) for n, r in measured],
        failed=[n for n, r in zip(names, results) if r is None],
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_issue_increase()
    print(result.render())
    print()
    print(run_icache().render())


if __name__ == "__main__":  # pragma: no cover
    main()
