"""Figure 1, validated empirically.

The paper's taxonomy prescribes a treatment per quadrant: superblock-style
layout for highly-biased branches, predication for unbiased-unpredictable
ones, and the decomposed branch transformation for unbiased-*predictable*
ones.  This experiment builds one single-branch workload per quadrant and
compiles it three ways (baseline / predicated / decomposed); the
prescription should win its own quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import render_table, speedup_percent
from ..compiler import (
    compile_baseline,
    compile_decomposed,
    compile_predicated,
    profile_program,
)
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig
from ..workloads import BranchSiteSpec, WorkloadSpec
from .harness import RunConfig

#: One representative branch per Figure 1 quadrant.
QUADRANTS: Dict[str, BranchSiteSpec] = {
    "highly-biased": BranchSiteSpec(bias=0.97, predictability=0.99),
    "unbiased-predictable": BranchSiteSpec(bias=0.60, predictability=0.95),
    "unbiased-unpredictable": BranchSiteSpec(
        bias=0.55, predictability=0.55, patterned=False
    ),
}


@dataclass
class QuadrantRow:
    quadrant: str
    predicated_speedup: float
    decomposed_speedup: float

    @property
    def winner(self) -> str:
        margin = self.decomposed_speedup - self.predicated_speedup
        if abs(margin) < 0.5:
            return "tie"
        return "decompose" if margin > 0 else "predicate"


@dataclass
class QuadrantResult:
    rows: List[QuadrantRow]

    def row(self, quadrant: str) -> QuadrantRow:
        for row in self.rows:
            if row.quadrant == quadrant:
                return row
        raise KeyError(quadrant)

    def render(self) -> str:
        table = [
            [
                r.quadrant,
                f"{r.predicated_speedup:.1f}",
                f"{r.decomposed_speedup:.1f}",
                r.winner,
            ]
            for r in self.rows
        ]
        return render_table(
            ["quadrant", "predication%", "decomposition%", "winner"],
            table,
            title="Figure 1 validated: treatment vs branch class",
        )


def _workload(name: str, site: BranchSiteSpec, iterations: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"quadrant-{name}",
        suite="fig1",
        sites=[site],
        iterations=iterations,
        loads_not_taken=3,
        loads_taken=3,
        hoist_barrier_frac=0.9,
        cold_code_factor=0.0,
    )


def run(config: Optional[RunConfig] = None) -> QuadrantResult:
    config = config or RunConfig()
    machine = config.machine_for(4)
    rows: List[QuadrantRow] = []
    for name, site in QUADRANTS.items():
        spec = _workload(name, site, config.iterations)
        train = spec.build(seed=config.train_seed)
        ref = spec.build(seed=config.ref_seeds[0])
        profile = profile_program(
            lower(train), max_instructions=config.max_instructions
        )
        baseline = compile_baseline(ref, profile=profile)
        predicated = compile_predicated(ref, profile=profile)
        decomposed = compile_decomposed(ref, profile=profile)

        base_run = InOrderCore(machine).run(
            baseline.program, max_instructions=config.max_instructions
        )
        pred_run = InOrderCore(machine).run(
            predicated.program, max_instructions=config.max_instructions
        )
        dec_run = InOrderCore(machine).run(
            decomposed.program, max_instructions=config.max_instructions
        )
        rows.append(
            QuadrantRow(
                quadrant=name,
                predicated_speedup=speedup_percent(base_run, pred_run),
                decomposed_speedup=speedup_percent(base_run, dec_run),
            )
        )
    return QuadrantResult(rows=rows)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
