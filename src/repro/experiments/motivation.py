"""The Section 1 motivation experiment: in-order vs out-of-order.

"While control speculation is highly effective for generating good
schedules in out-of-order processors, it is less effective for in-order
processors" -- we run each benchmark's baseline and decomposed binaries on
both core types; the transformation should pay on the in-order and buy the
OOO essentially nothing (the OOO's dataflow issue already schedules around
predictable branches dynamically)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis import render_table, speedup_percent
from ..branchpred import HybridPredictor
from ..compiler import compile_baseline, compile_decomposed
from ..ir import lower
from ..uarch import InOrderCore, MachineConfig, OutOfOrderCore
from ..workloads import spec_benchmark
from .artifacts import get_store
from .engine import ExperimentEngine, get_engine
from .harness import RunConfig


@dataclass
class MotivationRow:
    benchmark: str
    inorder_speedup: float  # decomposed-over-baseline, in-order
    ooo_speedup: float  # decomposed-over-baseline, OOO
    ooo_vs_inorder_baseline: float  # how much faster the OOO runs anyway


@dataclass
class MotivationResult:
    rows: List[MotivationRow]
    #: Benchmarks whose engine jobs failed; rendered as marked rows.
    failed: List[str] = field(default_factory=list)

    def render(self) -> str:
        table = [
            [
                r.benchmark,
                f"{r.inorder_speedup:.1f}",
                f"{r.ooo_speedup:.1f}",
                f"{r.ooo_vs_inorder_baseline:.1f}",
            ]
            for r in self.rows
        ]
        table.extend(
            [name, "FAILED", "-", "-"] for name in self.failed
        )
        return render_table(
            [
                "benchmark",
                "in-order speedup%",
                "OOO speedup%",
                "OOO-over-in-order baseline%",
            ],
            table,
            title=(
                "Motivation (Section 1): the transformation pays on the "
                "in-order, not on the OOO"
            ),
        )


def _motivation_job(payload) -> dict:
    """Both core types over one benchmark's binaries; engine-mappable.

    The committed stream is core-independent, so the in-order runs
    (which capture) feed the OOO runs (which replay the same traces).
    """
    name, config, window = payload
    store = get_store()
    mark = store.mark()
    machine = config.machine_for(4)
    spec = spec_benchmark(name, iterations=config.iterations)
    train = spec.build(seed=config.train_seed)
    ref = spec.build(seed=config.ref_seeds[0])
    profile = store.profile(
        lower(train),
        max_instructions=config.max_instructions,
        predictor_factory=HybridPredictor,
    )
    content = (
        f"motivation|{name}|it={config.iterations}"
        f"|train={config.train_seed}|ref={config.ref_seeds[0]}"
        f"|budget={config.max_instructions}"
    )
    baseline = store.compile(
        f"baseline|{content}",
        lambda: compile_baseline(ref, profile=profile),
    )
    decomposed = store.compile(
        f"decomposed|{content}",
        lambda: compile_decomposed(ref, profile=profile),
    )

    # Sweep front door for the in-order runs (K=1 per program; OOO
    # lanes are outside fused replay and keep their dedicated path).
    [io_base] = store.simulate_inorder_sweep(
        baseline.program, [machine],
        max_instructions=config.max_instructions,
    )
    [io_dec] = store.simulate_inorder_sweep(
        decomposed.program, [machine],
        max_instructions=config.max_instructions,
    )
    ooo_base = store.simulate_ooo(
        baseline.program, machine,
        max_instructions=config.max_instructions, window=window,
    )
    ooo_dec = store.simulate_ooo(
        decomposed.program, machine,
        max_instructions=config.max_instructions, window=window,
    )
    return {
        "inorder_speedup": speedup_percent(io_base, io_dec),
        "ooo_speedup": speedup_percent(ooo_base, ooo_dec),
        "ooo_vs_inorder_baseline": speedup_percent(io_base, ooo_base),
        "simulated_cycles": (
            io_base.cycles + io_dec.cycles
            + ooo_base.cycles + ooo_dec.cycles
        ),
        "committed_instructions": (
            io_base.stats.committed + io_dec.stats.committed
            + ooo_base.stats.committed + ooo_dec.stats.committed
        ),
        "artifacts": store.delta(mark),
    }


def run(
    benchmarks: Tuple[str, ...] = ("h264ref", "omnetpp", "gcc", "wrf"),
    config: Optional[RunConfig] = None,
    window: int = 64,
    engine: Optional[ExperimentEngine] = None,
) -> MotivationResult:
    config = config or RunConfig()
    results = get_engine(engine).map(
        _motivation_job,
        [(name, config, window) for name in benchmarks],
        labels=[f"motivation:{name}" for name in benchmarks],
        groups=list(benchmarks),
    )
    rows = [
        MotivationRow(
            benchmark=name,
            inorder_speedup=result["inorder_speedup"],
            ooo_speedup=result["ooo_speedup"],
            ooo_vs_inorder_baseline=result["ooo_vs_inorder_baseline"],
        )
        for name, result in zip(benchmarks, results)
        if result is not None
    ]
    failed = [
        name for name, result in zip(benchmarks, results) if result is None
    ]
    return MotivationResult(rows=rows, failed=failed)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
