"""Shared-memory trace plane: publish decoded traces once per machine.

The artifact store's trace fast path still paid a per-*process* tax:
every pool worker that needed a trace re-read the zlib RVTRACE1
container from disk and re-inflated it into fresh column arrays,
because the hot-trace LRU lives inside each worker.  With batched
sweeps that is one redundant decompress per (worker x trace), and a
watchdog respawn throws even that warmth away.

This module publishes *decoded* trace columns into
``multiprocessing.shared_memory`` segments keyed by the trace's
content-addressed store key.  The first worker to load a trace (from
disk or by capturing it) publishes the columns once; every other
worker -- including freshly respawned ones -- maps the segment and
builds a :class:`~repro.uarch.trace.Trace` whose columns are zero-copy
``np.frombuffer`` views over the shared buffer.  No inflate, no copy,
no per-worker duplication of column memory.

Segment layout (one segment per trace)::

    [0:8]    magic  b"RPSHM1\\x00\\x00"   -- written LAST (readiness flag)
    [8:12]   header length (uint32 LE)
    [12:..]  JSON header {"meta": ..., "columns": [{name,type,count,
             offset,nbytes}, ...]}
    ...      raw column payloads, 8-byte aligned, uncompressed
             (bit columns stay 0/1-per-byte so attach is zero-copy)

Lifecycle -- leak-proof by construction:

* Publishing happens in *workers*; the engine owns cleanup.  Every
  segment name starts with a run-scoped prefix the engine exports as
  ``REPRO_SHM_PREFIX`` for the duration of one :meth:`map` call.
* Creation races are benign: the loser of a create race simply
  attaches to the winner's segment.  A reader that maps a segment
  before its magic lands treats it as absent and falls back to disk.
* Python's ``resource_tracker`` registers POSIX segments on *both*
  create and attach (bpo-38119), which would let a dying worker's
  tracker unlink segments other processes still use -- so every
  handle is unregistered immediately and ownership is explicit: the
  engine unlinks everything under its prefix when the run ends
  (normally, on ``KeyboardInterrupt``, and again via ``atexit`` as a
  backstop), scanning ``/dev/shm`` so even segments created by a
  worker that was killed mid-batch -- whose names the parent never
  learned -- are reclaimed.

The plane also carries *replay-prep slices* (:func:`publish_prep` /
:func:`attach_prep`): the serialised derived layers of
:mod:`repro.uarch.replay_vec`, published once by whichever worker
built them so batch followers attach the predictor bits, cache-level
and BTB tables zero-copy instead of recomputing them.  Prep segments
live under the same run prefix (tagged ``p``), so the engine's
run-end sweep reclaims them identically.

``REPRO_SHM=0`` disables the plane entirely (workers fall back to the
per-process LRU + disk container path, bit-identically).
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib
import secrets
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..uarch.trace import _COLUMNS, _NP_DTYPES, Trace
from . import faults

#: Readiness flag; a segment without it is still being written.
_MAGIC = b"RPSHM1\x00\x00"

#: Environment variable carrying the run-scoped segment-name prefix.
#: Set by the engine around one ``map`` call; its presence is what
#: activates the plane inside workers.
PREFIX_ENV = "REPRO_SHM_PREFIX"

#: Segment names stay short (POSIX shm names are limited to ~31 chars
#: on some platforms): prefix (11 chars) + 16 key chars.
_KEY_CHARS = 16


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "no", "off")


def shm_enabled() -> bool:
    """The ``REPRO_SHM`` knob (default on)."""
    return _env_flag("REPRO_SHM")


def shm_available() -> bool:
    try:
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - always present on CPython
        return False
    return True


def new_prefix() -> str:
    """A fresh run-scoped segment-name prefix, e.g. ``rpshm3fa9c1``."""
    return "rpshm" + secrets.token_hex(3)


def active_prefix() -> Optional[str]:
    """The run prefix exported by the engine, when the plane is live."""
    if not shm_enabled():
        return None
    prefix = os.environ.get(PREFIX_ENV, "").strip()
    return prefix or None


def segment_name(prefix: str, key: str) -> str:
    return prefix + key[:_KEY_CHARS]


def _unregister(shm) -> None:
    """Detach a handle from the resource tracker: segment lifetime is
    owned by the engine's run-end cleanup, not by whichever process
    happened to touch the segment first."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _align(offset: int) -> int:
    return (offset + 7) & ~7


# ------------------------------------------------------------------ publish


def publish_trace(key: str, trace: Trace) -> Optional[str]:
    """Publish a trace's columns under the active run prefix.

    Returns the segment name when this call created the segment,
    ``None`` when the plane is inactive or the segment already exists
    (someone else won the create race -- equally fine).  Never raises:
    a full ``/dev/shm`` or an exotic platform degrades to the disk
    path, not to a failed job.
    """
    prefix = active_prefix()
    if prefix is None:
        return None
    try:
        return _publish(prefix, key, trace)
    except Exception:
        return None


def _publish(prefix: str, key: str, trace: Trace) -> Optional[str]:
    from multiprocessing import shared_memory

    name = segment_name(prefix, key)
    payloads: List[Tuple[str, str, int, bytes]] = []
    for cname, typecode in _COLUMNS:
        column = getattr(trace, cname)
        if isinstance(column, np.ndarray):
            raw = column.tobytes()
        elif isinstance(column, bytearray):
            raw = bytes(column)
        else:  # array('i') / array('q')
            raw = column.tobytes()
        payloads.append((cname, typecode, len(column), raw))

    descriptors = []
    offset = 0  # filled after the header length is known
    body = 0
    for cname, typecode, count, raw in payloads:
        body = _align(body)
        descriptors.append(
            {
                "name": cname,
                "type": typecode,
                "count": count,
                "offset": body,
                "nbytes": len(raw),
            }
        )
        body += len(raw)
    header = json.dumps(
        {"meta": trace.meta, "columns": descriptors}, sort_keys=True
    ).encode()
    data_start = _align(len(_MAGIC) + 4 + len(header))
    total = max(1, data_start + body)

    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    except FileExistsError:
        return None
    _unregister(shm)
    try:
        buf = shm.buf
        struct.pack_into("<I", buf, len(_MAGIC), len(header))
        buf[len(_MAGIC) + 4 : len(_MAGIC) + 4 + len(header)] = header
        for descriptor, (_, _, _, raw) in zip(descriptors, payloads):
            offset = data_start + descriptor["offset"]
            buf[offset : offset + len(raw)] = raw
        # Readiness flag last: a concurrent attacher either sees the
        # magic (and therefore every byte written before it) or treats
        # the segment as absent.
        buf[: len(_MAGIC)] = _MAGIC
        if faults.should_leak_shm(key):
            # Simulate a worker that died between creating a segment
            # and publishing it: an abandoned, never-ready sibling the
            # run-end sweep must reclaim.
            try:
                stray = shared_memory.SharedMemory(
                    name=name + "L", create=True, size=16
                )
                _unregister(stray)
                stray.close()
            except Exception:
                pass
    finally:
        shm.close()
    return name


# ----------------------------------------------------------- prep segments

#: First 8 bytes of a serialised replay-prep slice (the container's
#: own magic doubles as the segment readiness flag: it is copied into
#: the segment *last*, same discipline as the trace plane).
_PREP_MAGIC = b"RPPREP1\x00"


def prep_segment_name(prefix: str, key: str) -> str:
    """Prep segments share the run prefix (so run-end cleanup sweeps
    them too) but carry a ``p`` tag so a trace key and a prep key can
    never collide within the 16-char name budget."""
    return prefix + "p" + key[: _KEY_CHARS - 1]


def publish_prep(key: str, blob: bytes) -> Optional[str]:
    """Publish a serialised prep slice under the active run prefix.

    Same contract as :func:`publish_trace`: returns the segment name
    when this call created it, ``None`` when the plane is inactive or
    someone else won the create race; never raises."""
    prefix = active_prefix()
    if prefix is None or len(blob) <= len(_PREP_MAGIC):
        return None
    try:
        from multiprocessing import shared_memory

        name = prep_segment_name(prefix, key)
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=len(blob)
            )
        except FileExistsError:
            return None
        _unregister(shm)
        try:
            buf = shm.buf
            buf[len(_PREP_MAGIC) : len(blob)] = blob[len(_PREP_MAGIC) :]
            # Readiness flag last (the container magic itself).
            buf[: len(_PREP_MAGIC)] = blob[: len(_PREP_MAGIC)]
        finally:
            shm.close()
        return name
    except Exception:
        return None


def attach_prep(key: str) -> Optional[memoryview]:
    """Map a published prep slice; returns the segment's buffer (the
    serialised container, possibly with page-rounding slack the parser
    ignores) or ``None`` when inactive/absent/not-yet-ready.  The
    caller's numpy views keep the mapping alive through their ``base``
    chain, so no explicit backing object is needed."""
    prefix = active_prefix()
    if prefix is None:
        return None
    try:
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(
                name=prep_segment_name(prefix, key)
            )
        except (FileNotFoundError, OSError, ValueError):
            return None
        _unregister(shm)
        if bytes(shm.buf[: len(_PREP_MAGIC)]) != _PREP_MAGIC:
            _close_quietly(shm)
            return None  # mid-publish: not ready yet
        return _disarm(shm)
    except Exception:
        return None


# ------------------------------------------------------------------- attach


def attach_trace(key: str) -> Optional[Trace]:
    """Map a published trace; ``None`` when the plane is inactive, the
    segment is absent, or it is not (yet) readable -- the caller falls
    back to the disk container, so this can never fail a job."""
    prefix = active_prefix()
    if prefix is None:
        return None
    try:
        return _attach(segment_name(prefix, key))
    except Exception:
        return None


def _disarm(shm) -> memoryview:
    """Take the mapping away from a ``SharedMemory`` handle.

    The handle's ``__del__`` insists on closing the mmap, which raises
    ``BufferError`` while numpy column views still point into it --
    exactly the normal state of an attached trace at interpreter
    shutdown.  Instead: close the fd now (not needed once mapped),
    neuter the handle, and return the buffer memoryview.  The chain
    ndarray -> memoryview -> mmap then unmaps itself when the last
    view dies, and the OS reclaims the memory once the engine has
    additionally unlinked the segment name.
    """
    buf, fd = shm._buf, shm._fd
    shm._buf = None
    shm._mmap = None
    shm._fd = -1
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:
            pass
    return buf


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except Exception:
        pass


def _attach(name: str) -> Optional[Trace]:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return None
    _unregister(shm)
    try:
        buf = shm.buf
        if bytes(buf[: len(_MAGIC)]) != _MAGIC:
            _close_quietly(shm)
            return None  # mid-publish: not ready yet
        (header_len,) = struct.unpack_from("<I", buf, len(_MAGIC))
        header = json.loads(
            bytes(buf[len(_MAGIC) + 4 : len(_MAGIC) + 4 + header_len])
        )
        meta = header["meta"]
        descriptors = header["columns"]
        if [(d["name"], d["type"]) for d in descriptors] != list(_COLUMNS):
            _close_quietly(shm)
            return None
        data_start = _align(len(_MAGIC) + 4 + header_len)
        views: Dict[str, np.ndarray] = {}
        for descriptor in descriptors:
            views[descriptor["name"]] = np.frombuffer(
                buf,
                dtype=_NP_DTYPES[descriptor["type"]],
                count=descriptor["count"],
                offset=data_start + descriptor["offset"],
            )
    except Exception:
        _close_quietly(shm)
        return None
    # The trace keeps the mapping alive through ``backing``; on Linux
    # the kernel keeps the memory valid for mapped processes even
    # after the engine unlinks the segment name at run end.
    return Trace.from_views(meta, views, backing=_disarm(shm))


# ------------------------------------------------------------------ cleanup

#: Prefixes this process is responsible for unlinking at exit (a
#: backstop for runs that die without reaching the engine's cleanup).
_LIVE_PREFIXES: set = set()
_ATEXIT_REGISTERED = False


def register_run(prefix: str) -> None:
    global _ATEXIT_REGISTERED
    _LIVE_PREFIXES.add(prefix)
    if not _ATEXIT_REGISTERED:
        atexit.register(_cleanup_all)
        _ATEXIT_REGISTERED = True


def _cleanup_all() -> None:  # pragma: no cover - exit-time backstop
    for prefix in list(_LIVE_PREFIXES):
        cleanup_run(prefix)


def list_segments(prefix: str) -> List[str]:
    """Names of live segments under ``prefix`` (Linux: /dev/shm scan)."""
    shm_dir = pathlib.Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    try:
        return sorted(
            p.name for p in shm_dir.iterdir() if p.name.startswith(prefix)
        )
    except OSError:
        return []


def cleanup_run(prefix: str) -> int:
    """Unlink every segment under ``prefix``; returns how many went.

    Run-end cleanup: called by the engine when a ``map`` call finishes
    (normally or via Ctrl-C), after the pool has shut down.  Scanning
    the segment namespace -- rather than trusting a registry -- is
    what makes a worker killed between create and report leak-proof.
    """
    removed = 0
    shm_dir = pathlib.Path("/dev/shm")
    if shm_dir.is_dir():
        for name in list_segments(prefix):
            try:
                os.unlink(shm_dir / name)
                removed += 1
            except OSError:
                pass
    else:  # pragma: no cover - non-Linux fallback
        from multiprocessing import shared_memory

        # Without a scannable namespace the best effort is attaching
        # by derived name; unknown keys cannot be enumerated.
        try:
            shm = shared_memory.SharedMemory(name=prefix)
        except Exception:
            shm = None
        if shm is not None:
            _unregister(shm)
            try:
                shm.unlink()
                removed += 1
            finally:
                shm.close()
    _LIVE_PREFIXES.discard(prefix)
    return removed
