"""Figures 2 and 3: predictability vs bias for the top forward branches.

The paper plots, for the 75 most-executed forward branches averaged across
a suite and sorted by bias, both the bias and the (gshare-measured)
predictability.  The signature shape: the two curves coincide for the
high-bias head, then bias dives while predictability stays high -- the gap
is the opportunity the decomposed branch transformation exploits.

We regenerate it from the per-benchmark branch-site populations: every
site's outcome stream is measured with the machine's direction predictor,
sites are pooled per rank across the suite (sorted by bias), and the two
series are averaged rank-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..branchpred import DirectionPredictor, HybridPredictor, measure_stream
from ..analysis import render_series
from ..workloads import BENCHMARKS, generate_outcomes, site_population, suite_benchmarks


@dataclass
class PredBiasCurve:
    suite: str
    ranks: List[int]
    bias: List[float]
    predictability: List[float]

    def crossover_rank(self, gap: float = 0.05) -> Optional[int]:
        """First rank where predictability exceeds bias by ``gap``."""
        for i, rank in enumerate(self.ranks):
            if self.predictability[i] - self.bias[i] >= gap:
                return rank
        return None

    def render(self) -> str:
        return render_series(
            {"bias": self.bias, "predictability": self.predictability},
            x_label="rank",
            title=(
                f"Predictability vs bias, top {len(self.ranks)} forward "
                f"branches, {self.suite} (sorted by bias)"
            ),
            points=self.ranks,
        )


def run(
    suite: str,
    top_n: int = 75,
    stream_length: int = 2000,
    predictor_factory: Callable[[], DirectionPredictor] = HybridPredictor,
) -> PredBiasCurve:
    """Build the averaged sorted curves for one suite."""
    per_benchmark: List[List[Tuple[float, float]]] = []
    for name in suite_benchmarks(suite):
        bench = BENCHMARKS[name]
        points: List[Tuple[float, float]] = []
        for index, site in enumerate(site_population(bench)):
            outcomes = generate_outcomes(
                site, stream_length, site_key=index + 31 * hashish(name)
            )
            stats = measure_stream(index, outcomes, predictor_factory)
            points.append((stats.bias, stats.predictability))
        points.sort(key=lambda p: -p[0])  # descending bias, as in the paper
        per_benchmark.append(points)

    ranks = list(range(1, top_n + 1))
    bias_curve: List[float] = []
    pred_curve: List[float] = []
    for rank in range(top_n):
        bias_values: List[float] = []
        pred_values: List[float] = []
        for points in per_benchmark:
            if not points:
                continue
            # Stretch each benchmark's (smaller) population over the
            # 75-rank axis, as the paper averages unequal-sized sets.
            index = min(
                len(points) - 1, round(rank * (len(points) - 1) / (top_n - 1))
            )
            bias_values.append(points[index][0])
            pred_values.append(points[index][1])
        bias_curve.append(sum(bias_values) / len(bias_values))
        pred_curve.append(sum(pred_values) / len(pred_values))
    return PredBiasCurve(
        suite=suite, ranks=ranks, bias=bias_curve, predictability=pred_curve
    )


def hashish(text: str) -> int:
    """Deterministic small hash for site keys."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) & 0xFFFFFF
    return value


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    suite = sys.argv[1] if len(sys.argv) > 1 else "int2006"
    print(run(suite).render())


if __name__ == "__main__":  # pragma: no cover
    main()
