"""Figures 8-13: per-benchmark % speedup bar charts.

* Fig. 8 / 10 / 12 / 13: speedup averaged over all REF inputs for
  SPEC2006-INT / SPEC2000-INT / SPEC2006-FP / SPEC2000-FP.
* Fig. 9 / 11: the best-performing REF input (SPEC2006/2000 INT).

Each run covers the experimentally-varied widths (2/4/8 in the paper).
The per-seed jobs ride the harness's trace fast path: within one
benchmark the first width executes and captures the committed stream,
every other width replays it (the engine schedules one seed job per
benchmark as the group leader so siblings find its artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import geomean_speedup, render_bars
from .engine import ExperimentEngine, get_engine
from .harness import BenchmarkOutcome, RunConfig, run_suite

#: Figure number -> (suite, use best input instead of the all-input mean).
FIGURES: Dict[str, Tuple[str, bool]] = {
    "fig8": ("int2006", False),
    "fig9": ("int2006", True),
    "fig10": ("int2000", False),
    "fig11": ("int2000", True),
    "fig12": ("fp2006", False),
    "fig13": ("fp2000", False),
}


@dataclass
class SpeedupFigure:
    figure: str
    suite: str
    best_input: bool
    #: series[width] -> ordered (benchmark, % speedup)
    series: Dict[int, List[Tuple[str, float]]]
    #: (benchmark, status) for benchmarks whose jobs failed; their bars
    #: are omitted and called out in the rendering instead.
    failed: List[Tuple[str, str]] = field(default_factory=list)

    def geomean(self, width: int) -> float:
        return geomean_speedup([v for _, v in self.series[width]])

    def render(self) -> str:
        blocks = []
        flavour = "best input" if self.best_input else "all inputs"
        for width, values in sorted(self.series.items()):
            blocks.append(
                render_bars(
                    values,
                    title=(
                        f"{self.figure}: {self.suite} speedup, {flavour}, "
                        f"{width}-wide (geomean {self.geomean(width):.1f}%)"
                    ),
                )
            )
        if self.failed:
            blocks.append(
                "missing bars (job failures): "
                + ", ".join(f"{n} [{s}]" for n, s in self.failed)
            )
        return "\n\n".join(blocks)


def run_figure(
    figure: str,
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> SpeedupFigure:
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; one of {sorted(FIGURES)}")
    suite, best = FIGURES[figure]
    config = config or RunConfig(widths=(2, 4, 8))
    outcomes = get_engine(engine).run_suite(suite, config)
    measured = [o for o in outcomes if o.ok]
    series: Dict[int, List[Tuple[str, float]]] = {}
    for width in config.widths:
        values = [
            (
                o.name,
                o.best_input_speedup(width) if best else o.mean_speedup(width),
            )
            for o in measured
        ]
        values.sort(key=lambda pair: -pair[1])
        series[width] = values
    return SpeedupFigure(
        figure=figure,
        suite=suite,
        best_input=best,
        series=series,
        failed=[(o.name, o.status) for o in outcomes if not o.ok],
    )


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    figure = sys.argv[1] if len(sys.argv) > 1 else "fig8"
    print(run_figure(figure).render())


if __name__ == "__main__":  # pragma: no cover
    main()
