"""Consolidated benchmark index: the perf trajectory in one file.

Every optimisation PR leaves a ``results/BENCH_<name>.json`` snapshot
behind (replay vectorisation, trace replay, the worker plane, prep
slices, sweep fusion...), each with its own shape.  This module folds
them into one machine-readable ``results/BENCH_index.json`` -- name,
headline speedup, gate (when the snapshot records the threshold its
benchmark asserts), lever, and snapshot date -- so "how fast is the
stack now, and what held" is one read instead of a scavenger hunt
across six files.  ``repro bench report`` prints the same table and
rewrites the index.

The extractor is deliberately tolerant of shape drift: a snapshot's
headline number is its top-level ``speedup``, else ``sweep.speedup``,
else the maximum numeric ``speedup*`` value found anywhere in it --
older snapshots need no retrofitting to stay indexed.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Tuple

from .engine import RESULTS_DIR

#: Bump when the index layout changes.
INDEX_SCHEMA = 1

INDEX_NAME = "BENCH_index.json"


def _headline_speedup(data) -> Optional[float]:
    """Best-effort headline speedup of one snapshot (see module doc)."""
    found: List[Tuple[tuple, float]] = []

    def walk(node, path: tuple) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if key.startswith("speedup") and isinstance(
                    value, (int, float)
                ):
                    found.append((path + (key,), float(value)))
                else:
                    walk(value, path + (key,))

    walk(data, ())
    if not found:
        return None
    for preferred in (("speedup",), ("sweep", "speedup")):
        for path, value in found:
            if path == preferred:
                return value
    return max(value for _, value in found)


def build_index(results_dir=None) -> Dict:
    """Aggregate every ``BENCH_*.json`` under ``results_dir``."""
    results_dir = pathlib.Path(results_dir or RESULTS_DIR)
    entries = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == INDEX_NAME:
            continue
        entry = {
            "name": path.stem[len("BENCH_"):],
            "file": path.name,
            "date": time.strftime(
                "%Y-%m-%d", time.localtime(path.stat().st_mtime)
            ),
        }
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            entry["error"] = f"unreadable snapshot: {exc}"
            entries.append(entry)
            continue
        entry["speedup"] = _headline_speedup(data)
        entry["gate"] = data.get("gate")
        entry["lever"] = data.get("lever")
        entries.append(entry)
    return {
        "schema": INDEX_SCHEMA,
        "written_unix": time.time(),
        "benchmarks": entries,
    }


def write_index(results_dir=None) -> pathlib.Path:
    """Build and persist ``results/BENCH_index.json``; returns path."""
    results_dir = pathlib.Path(results_dir or RESULTS_DIR)
    index = build_index(results_dir)
    path = results_dir / INDEX_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(index, indent=2) + "\n")
    return path


def render_index(index: Dict) -> str:
    """Human-readable table of one :func:`build_index` result."""
    rows = []
    for entry in index["benchmarks"]:
        if "error" in entry:
            rows.append((entry["name"], "ERROR", "-", entry["error"]))
            continue
        speedup = entry.get("speedup")
        gate = entry.get("gate")
        rows.append(
            (
                entry["name"],
                f"{speedup:.2f}x" if speedup is not None else "-",
                f">={gate:g}x" if gate is not None else "-",
                entry.get("date", "-"),
            )
        )
    if not rows:
        return "no BENCH_*.json snapshots found"
    headers = ("benchmark", "speedup", "gate", "date")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
    return "\n".join(lines)
