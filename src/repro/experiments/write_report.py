"""Generate EXPERIMENTS.md from a saved full-scale run.

``python -m repro.experiments.write_report results/experiments_full.json``
renders the measured-vs-published record for every table and figure.  The
JSON is produced by the generation script documented in EXPERIMENTS.md
itself (600 iterations, two REF inputs, the Table 1 4-wide machine).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from ..workloads import BENCHMARKS

_HEADER = """# EXPERIMENTS — measured vs published

Reproduction record for every table and figure in the paper's evaluation.
Workloads are synthetic programs calibrated to the paper's own
characterisation columns (see DESIGN.md §2); **shape** (ordering, signs,
mechanisms), not absolute SPEC numbers, is the reproduction target.

Configuration: Table 1 machine, 4-wide, hybrid 24 KB predictor; workloads
at 600 iterations; profile on the TRAIN seed, evaluation geomean over two
REF seeds. Regenerate with:

```bash
pytest benchmarks/ --benchmark-only               # per-figure, moderate scale
REPRO_BENCH_ITERATIONS=600 REPRO_BENCH_SEEDS=2 \\
    pytest benchmarks/ --benchmark-only           # full scale
python -m repro.experiments.write_report results/experiments_full.json
```
"""

_SUITE_TITLES = {
    "int2006": "SPEC 2006 INT (Figures 8-9, Table 2 upper half)",
    "fp2006": "SPEC 2006 FP (Figure 12, Table 2 lower half)",
    "int2000": "SPEC 2000 INT (Figures 10-11)",
    "fp2000": "SPEC 2000 FP (Figure 13)",
}


def _speedup_table(rows: List[Dict], geomean: float, paper_geomean: float) -> str:
    lines = [
        "| benchmark | SPD % (measured) | SPD % (published) | best input % | PBC meas/pub | MPPKI meas/pub |",
        "|---|---|---|---|---|---|",
    ]
    for row in sorted(rows, key=lambda r: -r["spd"]):
        paper = BENCHMARKS[row["name"]].paper
        lines.append(
            f"| {row['name']} | {row['spd']:.1f} | {row['paper_spd']:.1f} | "
            f"{row['best']:.1f} | {row['pbc']:.0f}/{paper.pbc:.0f} | "
            f"{row['mppki']:.1f}/{paper.mppki:.1f} |"
        )
    lines.append(
        f"| **geomean** | **{geomean:.1f}** | **{paper_geomean:.1f}** | | | |"
    )
    return "\n".join(lines)


def render(data: Dict) -> str:
    parts = [_HEADER]

    parts.append("## Headline speedups (Figures 8-13)\n")
    for suite, title in _SUITE_TITLES.items():
        block = data[suite]
        parts.append(f"### {title}\n")
        parts.append(
            _speedup_table(
                block["rows"], block["geomean"], block["paper_geomean"]
            )
        )
        parts.append("")

    int06 = data["int2006"]
    fp06 = data["fp2006"]
    parts.append(
        f"**Shape summary.** INT gains exceed FP gains "
        f"({int06['geomean']:.1f}% vs {fp06['geomean']:.1f}%; paper 11% vs "
        "7%); the INT ordering keeps the published top cluster "
        "(h264ref/omnetpp-class) above the published floor "
        "(hmmer/libquantum); the FP tail (leslie3d, cactusADM, dealII, "
        "bwaves) stays near zero as published. Magnitudes are compressed "
        "roughly 0.5-0.7x relative to the paper, consistent with a "
        "shallower simulated machine (our resolution stalls, though "
        "matched in *class* to ASPCB, sit on a 5-stage front end rather "
        "than PTLSim's full x86 pipeline) and with synthetic inputs that "
        "expose fewer convertible branches per benchmark than REF inputs "
        "do. Notable outliers are annotated in DESIGN.md §5 (gates "
        "derived from ALPBB/PDIH/PHI).\n"
    )

    parts.append("## Table 2 characterisation columns\n")
    parts.append(
        "Measured alongside SPD above: PBC tracks published conversion "
        "rates (it is a designed input realised through the *measured* "
        "selection heuristic); MPPKI lands within ~2x of published for "
        "most rows (capped below for mcf/gobmk: a 12-site workload cannot "
        "reach 25 MPPKI without destroying its candidate population); "
        "ASPCB is reproduced in class (L2/L3/DRAM-bound resolutions) "
        "though our queueing-inclusive accounting reads higher than the "
        "paper's for chase-heavy rows; PISCS averages "
        f"{data['icache']['mean_piscs']:.1f}% (published average ~9%).\n"
    )

    parts.append("## Section 5.3 — predictor sensitivity\n")
    sens = data["sensitivity"]
    parts.append(
        "| benchmark | % speedup per 1% mispredict reduction (paper ~0.3) |"
    )
    parts.append("|---|---|")
    for name, slope in sens["slopes"].items():
        parts.append(f"| {name} | {slope:+.3f} |")
    parts.append("")
    parts.append(
        "Ladder: bimodal -> gshare -> hybrid-24KB -> TAGE -> ISL-TAGE-64KB. "
        "Full per-point data in results/sec53_predictor_sensitivity.txt.\n"
    )

    parts.append("## Figure 14 — issued-instruction overhead\n")
    inc = data["issue_increase"]
    int_vals = [v for n, v in inc if BENCHMARKS[n].suite == "int2006"]
    fp_vals = [v for n, v in inc if BENCHMARKS[n].suite == "fp2006"]
    parts.append(
        f"Mean increase: INT {sum(int_vals)/len(int_vals):.2f}%, "
        f"FP {sum(fp_vals)/len(fp_vals):.2f}% "
        "(paper: INT under ~1%, FP negligible). Our INT overhead reads "
        "slightly higher because the synthetic programs are all hot "
        "region: every converted branch executes every iteration.\n"
    )

    parts.append("## Section 6.1 — code size and I-cache\n")
    ic = data["icache"]
    parts.append(
        f"* 32 KB -> 24 KB I$ baseline slowdown: {ic['geo_slow']:.2f}% "
        "geomean (paper <0.5%).\n"
        f"* Static code growth (PISCS): {ic['mean_piscs']:.1f}% mean "
        "(paper ~9%).\n"
        "* I$ misses under a mispredict shadow: small minority share "
        "(paper ~15%); see results/sec61_icache.txt for the per-benchmark "
        "numbers (synthetic I-footprints are small, so the absolute miss "
        "counts are tiny).\n"
    )

    if "motivation" in data:
        parts.append("## Section 1 premise — in-order vs out-of-order\n")
        parts.append(
            "| benchmark | in-order speedup % | OOO speedup % | OOO-over-in-order baseline % |"
        )
        parts.append("|---|---|---|---|")
        for row in data["motivation"]:
            parts.append(
                f"| {row['b']} | {row['inorder']:.1f} | {row['ooo']:.1f} | "
                f"{row['ooo_base']:.1f} |"
            )
        parts.append("")
        parts.append(
            "The transformation pays on the in-order machine and buys the "
            "out-of-order reference core essentially nothing -- the "
            "premise the paper builds on (Section 1, citing the authors' "
            "ASPLOS'13 study).\n"
        )

    if "quadrants" in data:
        parts.append("## Figure 1 prescriptions, validated\n")
        parts.append("| quadrant | predication % | decomposition % | winner |")
        parts.append("|---|---|---|---|")
        for row in data["quadrants"]:
            parts.append(
                f"| {row['q']} | {row['pred']:.1f} | {row['dec']:.1f} | "
                f"{row['winner']} |"
            )
        parts.append("")
        parts.append(
            "Each treatment wins exactly its own quadrant: decomposition "
            "on the unbiased-but-predictable branch, if-conversion on the "
            "unbiased-unpredictable one, and neither fires on the "
            "highly-biased branch.\n"
        )

    parts.append("## Conceptual figures\n")
    parts.append(
        "* **Figure 1** (taxonomy): regenerated as a census -- "
        "benchmarks' profiled branches fall into superblock / decompose / "
        "predication classes in proportions tracking PBC "
        "(results/fig01_taxonomy.txt).\n"
        "* **Figures 2-3** (predictability vs bias): regenerated curves "
        "show the published signature -- head where the two coincide near "
        "1.0, tail where bias dives toward 0.5 while predictability holds "
        "(results/fig02..03_*.txt).\n"
        "* **Figures 4-7** are mechanism diagrams; their content is "
        "implemented (and unit-tested) rather than measured: Fig. 5's "
        "transformation in repro.core.decompose, Fig. 6 in "
        "examples/omnetpp_carray.py, Fig. 7's DBB in repro.core.dbb.\n"
        "* **Table 1** is asserted verbatim by tests/uarch/test_config.py.\n"
    )

    parts.append("## Runtime: parallel engine, cache, manifests\n")
    parts.append(
        "Regeneration runs through "
        "`repro.experiments.engine.ExperimentEngine`, which decomposes "
        "every table/figure into independent (benchmark × REF seed) "
        "simulation jobs.\n\n"
        "* **`REPRO_JOBS`** (env) or **`--jobs`** (CLI) sets the "
        "worker-process count; the default is every core.  `jobs=1` is "
        "the serial in-process path.  Reassembly is ordered by "
        "submission, so every worker count produces byte-identical "
        "outputs (asserted by `tests/integration/test_engine.py` and "
        "`benchmarks/test_engine_smoke.py`).\n"
        "* **Cache** (`results/.cache/`, relocatable via "
        "`REPRO_CACHE_DIR`, disabled by `REPRO_CACHE=0` / `--no-cache`): "
        "each finished job is stored under a SHA-256 key covering the "
        "job function's qualified name, the benchmark, seed, widths, "
        "every `RunConfig`/`MachineConfig`/`SelectionConfig`/"
        "`TransformConfig` field (callables fingerprint by qualified "
        "name), a hash of all `repro` sources, and a cache-schema "
        "version.  **Invalidation rules**: editing any field of any "
        "config, any `src/repro/**.py` file, or the schema version "
        "misses; editing docs, tests, or archived results hits.  Delete "
        "the directory to clear it.\n"
        "* **Manifests**: each regenerated table/figure gets a "
        "`results/<name>.manifest.json` (the CLI writes "
        "`results/run_manifest.json`) with this schema:\n\n"
        "```json\n"
        "{\n"
        '  "schema": 1,\n'
        '  "written_unix": 1700000000.0,\n'
        '  "engine": {"jobs": 8, "cache_dir": "...", '
        '"cache_enabled": true,\n'
        '             "code_version": "<16-hex source hash>"},\n'
        '  "totals": {"jobs": 29, "cache_hits": 29, "cache_misses": 0,\n'
        '             "wall_s": 47.0, "simulated_cycles": 12996103},\n'
        '  "jobs": [{"label": "h264ref@seed1", "key": "<sha256>",\n'
        '            "cache": "hit", "wall_s": 1.77, '
        '"simulated_cycles": 302675}],\n'
        '  "config": {"__class__": "RunConfig", "...": "every field"}\n'
        "}\n"
        "```\n\n"
        "Metric provenance: every Table 2 column is measured on the "
        "4-wide runs (the configuration the published table reports) "
        "and averaged over all REF inputs; SPD is the geomean over REF "
        "inputs at 4-wide.\n"
    )

    parts.append("## Known deviations\n")
    parts.append(
        "1. **Magnitude compression (~0.5-0.7x)** on headline speedups; "
        "see the shape summary above.\n"
        "2. **mcf family**: reproduced at the published level only after "
        "applying the paper's own explanation (misses 'difficult to "
        "cover') as a one-load cap on hoistable cold MLP; without it the "
        "simulated mcf over-benefits (a pointer chase overlapped with a "
        "pointer chase is worth ~140 cycles per conversion).\n"
        "3. **ASPCB accounting** includes in-order queueing delay, so "
        "chase-heavy rows read higher than published; the column's "
        "*ordering* across benchmarks is preserved.\n"
        "4. **Per-benchmark scatter** is larger than the paper's because "
        "each synthetic benchmark has 10-12 branch sites rather than "
        "thousands; single selection decisions move whole percentage "
        "points.\n"
    )
    return "\n".join(parts)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/experiments_full.json"
    with open(path) as handle:
        data = json.load(handle)
    text = render(data)
    with open("EXPERIMENTS.md", "w") as handle:
        handle.write(text)
    print(f"wrote EXPERIMENTS.md from {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
