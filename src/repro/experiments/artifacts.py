"""Content-addressed shared artifacts: traces, profiles, compiles.

Every sweep used to re-run the full execute-driven pipeline -- TRAIN
profiling, compilation, and instruction-by-instruction semantics -- for
each ``(benchmark, seed, sweep-point)`` job, even though the committed
instruction stream is invariant across almost every swept knob (see
:mod:`repro.uarch.trace`).  This module is the capture-once /
replay-everywhere layer on top of the experiment cache:

* **Traces** (``results/.cache/traces/<key>.trace``): the committed
  stream of one ``(program content, instruction budget[, predictor])``
  execution, captured by :func:`simulate_inorder` on first need and
  replayed (bit-identically) for every later simulation of the same
  program -- across widths, ports, cache geometry, BTB/RAS/DBB sizing,
  and (for baseline programs) across direction predictors.
* **Prep slices** (``.../preps/<key>.prep``): the derived replay-prep
  layers of one ``(trace content digest, prediction mode, config
  class)`` -- batched predictor bits, RAS/BTB miss sets, stream action
  codes and the cache-tag pre-pass outputs
  (:mod:`repro.uarch.replay_vec`) -- serialised as numpy columns in a
  versioned container.  Built at most once fleet-wide, attached
  zero-copy from the shared-memory plane by pool siblings and from
  the digest-verified blob store by later runs and other hosts.
* **Branch traces** (``.../profiles/<key>.btrace``): the functional
  TRAIN branch-outcome stream, predictor-independent, shared by every
  predictor a sensitivity ladder measures it with.
* **Profiles** (``.../profiles/<key>.json``): the measured per-branch
  :class:`~repro.branchpred.BranchStats`, keyed additionally by the
  measuring predictor.
* **Compiles**: an in-process memo of
  :func:`~repro.compiler.compile_baseline` /
  :func:`~repro.compiler.compile_decomposed` outputs keyed by content
  (``CompilationResult`` holds live IR objects, so this one never
  touches disk).

All disk artifacts carry integrity validation: traces via the
checksummed container (:meth:`repro.uarch.trace.Trace.from_bytes`),
JSON artifacts via schema checks.  Anything unreadable is moved to
``results/.cache/quarantine/`` -- the same discipline as the result
cache -- and transparently recomputed.  The fault harness's
``corrupt_trace`` kind (:mod:`.faults`) writes deliberately truncated
traces to exercise exactly that path.

Environment knobs:

* ``REPRO_TRACE_CACHE=0``  -- no disk persistence (in-process LRU and
  capture/replay still apply within a worker).
* ``REPRO_TRACE_REPLAY=0`` -- the whole artifact fast path off: fully
  execute-driven simulation, and no shared profile/compile artifacts
  either -- every job recomputes everything, exactly like the
  pre-artifact-store pipeline (the before/after lever for
  ``results/BENCH_trace_replay.json``).
* ``REPRO_TRACE_LRU_MB``   -- in-process hot-trace LRU budget
  (default 256 MiB).
* ``REPRO_PREP_CACHE=0``   -- disable persisted replay-prep slices
  (prep layers recompute per process, exactly the pre-slice
  behaviour; results are bit-identical either way).

Counter semantics (reported per job via :meth:`ArtifactStore.mark` /
:meth:`ArtifactStore.delta`, aggregated by manifest schema 4):
``trace_captures`` counts execute-driven capture runs,
``trace_replays`` counts simulations served from a trace,
``trace_hits``/``trace_misses`` count store lookups (memory or disk),
``profile_*``/``btrace_*``/``compile_*`` likewise;
``prep_hits``/``prep_misses`` count prep-slice lookups (shm or disk;
layers already on the in-process trace object move no counter),
``prep_builds`` counts slices computed from scratch -- in a warm
fleet exactly one per ``(trace, predictor, config class)`` --
``prep_quarantined`` counts corrupt slice blobs sidelined,
``shm_prep_publishes``/``shm_prep_attaches`` the prep traffic on the
shared-memory plane;
``shm_publishes``/``shm_attaches`` count shared-memory trace-plane
traffic (:mod:`.plane`) -- a publish is one worker exporting decoded
columns for the whole pool, an attach is a zero-copy map that skipped
the disk read + inflate entirely; ``store_*`` count the durable blob
layer underneath (:mod:`.store`): fsync'd puts, transient-I/O
retries, and digest-verification failures (torn transfers quarantined
on read).
"""

from __future__ import annotations

import os
import pathlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..branchpred import BranchStats, measure_trace
from ..isa.decode import predecode
from ..uarch import InOrderCore, MachineConfig, collect_branch_trace
from ..uarch.ooo import OutOfOrderCore
from ..uarch.replay import (
    replay_inorder,
    replay_inorder_sweep,
    replay_ooo,
)
from ..uarch.trace import (
    Trace,
    TraceCapture,
    TraceError,
    content_digest,
    predictor_id,
)
from . import faults, plane
from .store import FileStore, quarantine_file

#: Bump when a JSON artifact layout changes.
ARTIFACT_SCHEMA = 1

_COUNTER_NAMES = (
    "trace_hits",
    "trace_misses",
    "trace_captures",
    "trace_replays",
    "trace_quarantined",
    "prep_hits",
    "prep_misses",
    "prep_builds",
    "prep_quarantined",
    "fused_passes",
    "fused_points",
    "fused_fallbacks",
    "fused_diverges",
    "btrace_hits",
    "btrace_misses",
    "profile_hits",
    "profile_misses",
    "compile_hits",
    "compile_misses",
    "shm_publishes",
    "shm_attaches",
    "shm_prep_publishes",
    "shm_prep_attaches",
    "store_puts",
    "store_put_retries",
    "store_get_retries",
    "store_verify_failures",
)

#: FileStore counter -> artifact counter (see :mod:`.store`).
_STORE_COUNTER_MAP = {
    "puts": "store_puts",
    "put_retries": "store_put_retries",
    "get_retries": "store_get_retries",
    "verify_failures": "store_verify_failures",
}

#: Bound on the in-process measured-profile memo (entries are small --
#: one BranchStats dict per (program, budget, predictor) -- but sweeps
#: can touch many predictors; keep the memo from growing unbounded).
_PROFILE_MEMO_CAP = 128


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "no", "off")


def trace_cache_enabled() -> bool:
    """Disk persistence of traces (``REPRO_TRACE_CACHE``)."""
    return _env_flag("REPRO_TRACE_CACHE")


def replay_enabled() -> bool:
    """The whole artifact fast path (``REPRO_TRACE_REPLAY``): trace
    capture/replay plus shared profile/compile artifacts.  Off, every
    job recomputes everything -- the pre-artifact-store pipeline."""
    return _env_flag("REPRO_TRACE_REPLAY")


def prep_cache_enabled() -> bool:
    """Persisted replay-prep slices (``REPRO_PREP_CACHE``): the
    derived-layer cache that lets a replay skip the batched predictor
    pass, the cache-tag pre-pass and the BTB re-simulation entirely
    when any worker, run, or host already computed them for the same
    ``(trace content, predictor, config class)``.  Off, prep layers
    are recomputed per process exactly as before (results are
    bit-identical either way)."""
    return _env_flag("REPRO_PREP_CACHE")


def _env_lru_bytes() -> int:
    raw = os.environ.get("REPRO_TRACE_LRU_MB", "").strip()
    mb = float(raw) if raw else 256.0
    return max(0, int(mb * 1024 * 1024))


class ArtifactStore:
    """Content-addressed artifact storage under one cache directory.

    Layout (sharing the result cache's root and quarantine)::

        <cache_dir>/traces/<sha256>.trace
        <cache_dir>/preps/<sha256>.prep
        <cache_dir>/profiles/<sha256>.btrace
        <cache_dir>/profiles/<sha256>.json
        <cache_dir>/quarantine/        <- corrupt artifacts land here
    """

    def __init__(self, cache_dir: Optional[pathlib.Path] = None) -> None:
        if cache_dir is None:
            from .engine import RESULTS_DIR

            cache_dir = pathlib.Path(
                os.environ.get("REPRO_CACHE_DIR", "")
                or RESULTS_DIR / ".cache"
            )
        self.cache_dir = pathlib.Path(cache_dir)
        self.traces_dir = self.cache_dir / "traces"
        self.preps_dir = self.cache_dir / "preps"
        self.profiles_dir = self.cache_dir / "profiles"
        self.quarantine_dir = self.cache_dir / "quarantine"
        self.counters: Dict[str, int] = {n: 0 for n in _COUNTER_NAMES}
        #: Durable blob layer every disk crossing goes through: fsync'd
        #: atomic puts with digest sidecars, verified (and quarantining)
        #: gets, retry-with-backoff on transient I/O (see :mod:`.store`).
        self.store = FileStore(
            self.cache_dir,
            quarantine_dir=self.quarantine_dir,
            on_counter=self._on_store_counter,
        )
        #: Hot-trace LRU: key -> Trace, bounded by REPRO_TRACE_LRU_MB.
        self._trace_lru: "OrderedDict[str, Tuple[Trace, int]]" = (
            OrderedDict()
        )
        self._trace_lru_bytes = 0
        self._lru_budget = _env_lru_bytes()
        #: In-process memos (never persisted; values hold live objects).
        self._btrace_memo: Dict[str, List[Tuple[int, bool]]] = {}
        self._profile_memo: "OrderedDict[str, Dict[int, BranchStats]]" = (
            OrderedDict()
        )
        self._compile_memo: Dict[str, object] = {}

    # -- counters ----------------------------------------------------------

    def mark(self) -> Dict[str, int]:
        """Snapshot the counters (pair with :meth:`delta`)."""
        return dict(self.counters)

    def delta(self, mark: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since ``mark`` (zero entries dropped)."""
        return {
            name: self.counters[name] - mark.get(name, 0)
            for name in _COUNTER_NAMES
            if self.counters[name] != mark.get(name, 0)
        }

    def _bump(self, name: str, by: int = 1) -> None:
        self.counters[name] += by

    def _on_store_counter(self, name: str) -> None:
        mapped = _STORE_COUNTER_MAP.get(name)
        if mapped is not None:
            self._bump(mapped)

    # -- plumbing ----------------------------------------------------------

    def _store_name(self, path: pathlib.Path) -> str:
        """Store-protocol name of an artifact path (root-relative)."""
        return path.relative_to(self.cache_dir).as_posix()

    def _quarantine(
        self, path: pathlib.Path, counter: str = "trace_quarantined"
    ) -> None:
        if quarantine_file(self.quarantine_dir, path) is None:
            return
        # The blob moved; drop its now-orphaned digest sidecar too.
        self.store.delete(self._store_name(path))
        self._bump(counter)

    def _write_atomic(self, path: pathlib.Path, blob: bytes) -> None:
        """Durable artifact write through the store protocol: fsync'd
        atomic rename plus a digest sidecar verified on every read."""
        self.store.put(self._store_name(path), blob)

    def _read_verified(
        self,
        path: pathlib.Path,
        counter: str = "trace_quarantined",
    ) -> Optional[bytes]:
        """Digest-verified read; a torn/corrupt blob is quarantined by
        the store layer and reported as a miss (counted as a
        quarantined artifact up here too)."""
        before = self.store.counters.get("verify_failures", 0)
        blob = self.store.get(self._store_name(path))
        if (
            blob is None
            and self.store.counters.get("verify_failures", 0) > before
        ):
            self._bump(counter)
        return blob

    # -- traces ------------------------------------------------------------

    def _lru_get(self, key: str) -> Optional[Trace]:
        entry = self._trace_lru.get(key)
        if entry is None:
            return None
        self._trace_lru.move_to_end(key)
        return entry[0]

    def _lru_put(self, key: str, trace: Trace) -> None:
        if self._lru_budget <= 0:
            return
        # Entries are (trace, bytes charged at put time): eviction must
        # subtract exactly what was added even if the trace's footprint
        # changed afterwards (replay prep attaching, for instance).
        charged = trace.nbytes()
        previous = self._trace_lru.get(key)
        if previous is not None:
            # Replace the stored object (a re-put after transparent
            # recapture carries fresh data) and recompute accounting.
            self._trace_lru_bytes -= previous[1]
        self._trace_lru[key] = (trace, charged)
        self._trace_lru.move_to_end(key)
        self._trace_lru_bytes += charged
        while (
            self._trace_lru_bytes > self._lru_budget
            and len(self._trace_lru) > 1
        ):
            _, (_, evicted_bytes) = self._trace_lru.popitem(last=False)
            self._trace_lru_bytes -= evicted_bytes

    def load_trace(self, key: str) -> Optional[Trace]:
        """Memory-first lookup: in-process LRU, then the shared-memory
        trace plane (zero-copy map, populated by whichever pool worker
        decoded the trace first), then the disk container.  A disk hit
        publishes to the plane so siblings skip the inflate; a corrupt
        disk trace is quarantined and reported as a miss (the caller
        recaptures transparently)."""
        trace = self._lru_get(key)
        if trace is not None:
            self._bump("trace_hits")
            return trace
        trace = plane.attach_trace(key)
        if trace is not None:
            self._bump("trace_hits")
            self._bump("shm_attaches")
            # The attached trace enters the LRU so replay prep layers
            # accumulate on it across sweep points, same as a decoded
            # one -- only the column memory is shared, not copied.
            self._lru_put(key, trace)
            return trace
        if trace_cache_enabled():
            path = self.traces_dir / f"{key}.trace"
            blob = self._read_verified(path)
            if blob is not None:
                try:
                    trace = Trace.from_bytes(blob)
                except TraceError:
                    self._quarantine(path)
                else:
                    self._bump("trace_hits")
                    self._lru_put(key, trace)
                    if plane.publish_trace(key, trace) is not None:
                        self._bump("shm_publishes")
                    try:
                        # Refresh mtime so age-based pruning (``repro
                        # cache prune --max-age``) keeps hot traces.
                        os.utime(path)
                    except OSError:
                        pass
                    return trace
        self._bump("trace_misses")
        return None

    def store_trace(self, key: str, trace: Trace) -> None:
        self._lru_put(key, trace)
        if plane.publish_trace(key, trace) is not None:
            self._bump("shm_publishes")
        if not trace_cache_enabled():
            return
        blob = trace.to_bytes()
        if faults.should_corrupt_trace(key):
            blob = blob[: max(1, len(blob) // 2)]
        self._write_atomic(self.traces_dir / f"{key}.trace", blob)

    # -- persisted replay-prep slices --------------------------------------

    def _ensure_prep(self, program, trace: Trace, config) -> None:
        """Attach (or build and persist) the replay-prep slice one
        replay of ``trace`` under ``config`` needs.

        Lookup order mirrors :meth:`load_trace`: layers already on the
        trace object (no counter movement -- in-process memoisation is
        not a cache event), then the shared-memory plane (zero-copy
        attach published by a sibling worker), then the digest-verified
        blob store (``preps/<key>.prep``, shared across runs and --
        through the queue backend's shared cache root -- across
        hosts).  A miss builds every layer once, publishes the slice
        to the plane and persists it, so the fleet-wide build count
        per ``(trace content, predictor, config class)`` is exactly
        one.  Corrupt blobs are quarantined by the store layer and
        rebuilt transparently -- never a wrong answer, at worst a
        recompute.
        """
        if not prep_cache_enabled():
            return
        from ..uarch.replay import _vectorized_enabled

        if not _vectorized_enabled():
            return
        from ..uarch import replay_vec

        key = replay_vec.prep_slice_key(program, trace, config)
        if key is None:
            return
        if replay_vec.prep_slice_ready(program, trace, config):
            return
        buf = plane.attach_prep(key)
        if buf is not None and replay_vec.attach_prep_slice(
            program, trace, config, buf
        ):
            self._bump("prep_hits")
            self._bump("shm_prep_attaches")
            return
        if trace_cache_enabled():
            path = self.preps_dir / f"{key}.prep"
            blob = self._read_verified(path, counter="prep_quarantined")
            if blob is not None:
                if replay_vec.attach_prep_slice(
                    program, trace, config, blob
                ):
                    self._bump("prep_hits")
                    if plane.publish_prep(key, blob) is not None:
                        self._bump("shm_prep_publishes")
                    try:
                        # Keep hot slices out of --max-age pruning's
                        # reach, same as disk trace hits.
                        os.utime(path)
                    except OSError:
                        pass
                    return
                # Digest-verified bytes that still fail container/key
                # validation: quarantine for inspection and rebuild.
                self._quarantine(path, counter="prep_quarantined")
        self._bump("prep_misses")
        blob = replay_vec.build_prep_slice(program, trace, config)
        if blob is None:
            return  # outside the vectorized path: no prep to share
        self._bump("prep_builds")
        if plane.publish_prep(key, blob) is not None:
            self._bump("shm_prep_publishes")
        if trace_cache_enabled():
            self._write_atomic(self.preps_dir / f"{key}.prep", blob)

    # -- branch traces (functional TRAIN runs) -----------------------------

    def branch_trace(
        self, program, max_instructions: int
    ) -> List[Tuple[int, bool]]:
        """The (predictor-independent) TRAIN branch-outcome stream."""
        import hashlib
        import json
        import zlib

        from .engine import code_version

        if not replay_enabled():
            self._bump("btrace_misses")
            return collect_branch_trace(
                program, max_instructions=max_instructions
            )
        key = hashlib.sha256(
            json.dumps(
                {
                    "kind": "btrace",
                    "schema": ARTIFACT_SCHEMA,
                    "program": content_digest(program),
                    "budget": max_instructions,
                    "code": code_version(),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()
        memoed = self._btrace_memo.get(key)
        if memoed is not None:
            self._bump("btrace_hits")
            return memoed
        path = self.profiles_dir / f"{key}.btrace"
        if trace_cache_enabled():
            blob = self._read_verified(path)
            if blob is not None:
                try:
                    payload = json.loads(zlib.decompress(blob))
                    if payload["schema"] != ARTIFACT_SCHEMA:
                        raise ValueError("wrong schema")
                    events = [
                        (int(b), bool(t))
                        for b, t in zip(payload["ids"], payload["taken"])
                    ]
                    if len(events) != payload["count"]:
                        raise ValueError("count mismatch")
                except (ValueError, KeyError, TypeError, zlib.error):
                    self._quarantine(path)
                else:
                    self._bump("btrace_hits")
                    self._btrace_memo[key] = events
                    return events
        self._bump("btrace_misses")
        events = collect_branch_trace(
            program, max_instructions=max_instructions
        )
        self._btrace_memo[key] = events
        if trace_cache_enabled():
            blob = zlib.compress(
                json.dumps(
                    {
                        "schema": ARTIFACT_SCHEMA,
                        "count": len(events),
                        "ids": [b for b, _ in events],
                        "taken": [1 if t else 0 for _, t in events],
                    }
                ).encode(),
                6,
            )
            self._write_atomic(path, blob)
        return events

    # -- measured profiles -------------------------------------------------

    def profile(
        self,
        program,
        max_instructions: int,
        predictor_factory: Callable,
    ) -> Dict[int, BranchStats]:
        """Shared equivalent of :func:`repro.compiler.profile_program`.

        The functional branch trace and the measured statistics are
        separate artifacts, so a predictor ladder pays for one
        functional TRAIN run total plus one (cheap) measurement per
        predictor.  A factory without a stable name (lambda/closure)
        disables sharing and computes directly.
        """
        import hashlib
        import json

        from .engine import code_version

        pid = predictor_id(predictor_factory)
        if pid is None or not replay_enabled():
            self._bump("profile_misses")
            events = self.branch_trace(program, max_instructions)
            return measure_trace(events, predictor_factory)
        key = hashlib.sha256(
            json.dumps(
                {
                    "kind": "profile",
                    "schema": ARTIFACT_SCHEMA,
                    "program": content_digest(program),
                    "budget": max_instructions,
                    "predictor": pid,
                    "code": code_version(),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()
        profile = self.load_profile(key)
        if profile is not None:
            return profile
        self._bump("profile_misses")
        events = self.branch_trace(program, max_instructions)
        profile = measure_trace(events, predictor_factory)
        self._memo_profile(key, profile)
        if trace_cache_enabled():
            self._write_atomic(
                self.profiles_dir / f"{key}.json",
                json.dumps(
                    {
                        "schema": ARTIFACT_SCHEMA,
                        "stats": {
                            str(b): [s.executions, s.taken, s.correct]
                            for b, s in sorted(profile.items())
                        },
                    }
                ).encode(),
            )
        return profile

    def _memo_profile(
        self, key: str, profile: Dict[int, BranchStats]
    ) -> None:
        self._profile_memo[key] = profile
        self._profile_memo.move_to_end(key)
        while len(self._profile_memo) > _PROFILE_MEMO_CAP:
            self._profile_memo.popitem(last=False)

    def load_profile(
        self, key: str
    ) -> Optional[Dict[int, BranchStats]]:
        """Keyed measured-profile lookup: bounded memo first, then the
        JSON artifact on disk.

        The memo is the fix for a quiet hot-path tax: a predictor
        ladder calls :meth:`profile` with the same key many times, and
        each disk hit used to re-read and re-parse the JSON artifact.
        Returns ``None`` (with no counter movement) when the profile is
        absent -- the caller computes and stores it.
        """
        import json

        memoed = self._profile_memo.get(key)
        if memoed is not None:
            self._profile_memo.move_to_end(key)
            self._bump("profile_hits")
            return memoed
        if not trace_cache_enabled():
            return None
        path = self.profiles_dir / f"{key}.json"
        blob = self._read_verified(path)
        if blob is None:
            return None
        try:
            payload = json.loads(blob.decode())
            if payload["schema"] != ARTIFACT_SCHEMA:
                raise ValueError("wrong schema")
            profile = {
                int(b): BranchStats(
                    branch_id=int(b),
                    executions=row[0],
                    taken=row[1],
                    correct=row[2],
                )
                for b, row in payload["stats"].items()
            }
        except (ValueError, KeyError, TypeError, IndexError):
            self._quarantine(path)
            return None
        self._bump("profile_hits")
        self._memo_profile(key, profile)
        return profile

    # -- compiled programs (in-process only) -------------------------------

    def compile(self, memo_key: str, build: Callable[[], object]):
        """Memoise one compilation by content key.

        ``CompilationResult`` carries live ``Function``/``Program``
        objects, so this memo is in-process only; with ``jobs=N`` each
        worker process warms its own.
        """
        if not replay_enabled():
            self._bump("compile_misses")
            return build()
        cached = self._compile_memo.get(memo_key)
        if cached is not None:
            self._bump("compile_hits")
            return cached
        self._bump("compile_misses")
        result = build()
        self._compile_memo[memo_key] = result
        return result

    # -- simulation front doors --------------------------------------------

    def _trace_key(
        self, program, max_instructions: int, pid: Optional[str]
    ) -> str:
        import hashlib
        import json

        from .engine import code_version
        from ..uarch.trace import TRACE_SCHEMA

        return hashlib.sha256(
            json.dumps(
                {
                    "kind": "trace",
                    "schema": TRACE_SCHEMA,
                    "program": content_digest(program),
                    "budget": max_instructions,
                    "predictor": pid,
                    "code": code_version(),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()

    def simulate_inorder(
        self,
        program,
        config: MachineConfig,
        max_instructions: int = 2_000_000,
    ):
        """Simulate on the in-order core via the trace fast path.

        First simulation of a program executes once *with capture* and
        stores the trace; every later simulation -- any width, ports,
        cache geometry, DBB/BTB/RAS sizing, and (for baseline
        programs) any predictor -- replays it.  Bit-identical to
        ``InOrderCore(config).run(program, ...)`` by construction and
        by the golden/equivalence suites.
        """
        if not replay_enabled():
            return InOrderCore(config).run(
                program, max_instructions=max_instructions
            )
        pid = predictor_id(config.predictor_factory)
        has_decomposed = predecode(program).has_decomposed
        if has_decomposed and pid is None:
            # Unnameable predictor steering a decomposed program: no
            # safe content address; run execute-driven.
            return InOrderCore(config).run(
                program, max_instructions=max_instructions
            )
        key = self._trace_key(
            program, max_instructions, pid if has_decomposed else None
        )
        trace = self.load_trace(key)
        if trace is not None:
            self._bump("trace_replays")
            self._ensure_prep(program, trace, config)
            return replay_inorder(program, trace, config)
        capture = TraceCapture()
        result = InOrderCore(config).run(
            program, max_instructions=max_instructions, capture=capture
        )
        trace = capture.finish(program, result, max_instructions, pid)
        self.store_trace(key, trace)
        self._bump("trace_captures")
        return result

    def simulate_inorder_sweep(
        self,
        program,
        configs: List[MachineConfig],
        max_instructions: int = 2_000_000,
    ):
        """Simulate one program under a whole sweep axis at once.

        The sweep front door over :meth:`simulate_inorder`: configs
        are grouped by ``(trace key, prep slice key)`` -- the content
        address of the shared replay-prep slice -- and each group of
        K > 1 points is scored by **one fused pass** over the trace
        (:func:`repro.uarch.replay.replay_inorder_sweep`), carrying
        all K lanes' serial state through a single region-memoised
        walk.  Counter movement proves what happened: ``fused_passes``
        / ``fused_points`` on fusion, ``fused_fallbacks`` when fusion
        declined, ``fused_diverges`` when a fused lane failed
        validation and the per-point path transparently re-ran the
        group.  Results are returned in config order and are
        bit-identical to K independent :meth:`simulate_inorder` calls
        -- fused, fallen back, or per-point.
        """
        configs = list(configs)
        if not configs:
            return []
        if not replay_enabled():
            return [
                InOrderCore(config).run(
                    program, max_instructions=max_instructions
                )
                for config in configs
            ]
        from ..uarch import replay_vec

        has_decomposed = predecode(program).has_decomposed
        results: List = [None] * len(configs)
        trace_groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, config in enumerate(configs):
            pid = predictor_id(config.predictor_factory)
            if has_decomposed and pid is None:
                # Unnameable predictor steering a decomposed program:
                # no safe content address; run execute-driven.
                results[index] = InOrderCore(config).run(
                    program, max_instructions=max_instructions
                )
                continue
            key = self._trace_key(
                program, max_instructions, pid if has_decomposed else None
            )
            trace_groups.setdefault(key, []).append(index)

        for key, members in trace_groups.items():
            trace = self.load_trace(key)
            if trace is None:
                # First sight of this stream: capture with the first
                # member (its execute-driven result is the answer for
                # that point) and replay the rest from the new trace.
                first = members[0]
                capture = TraceCapture()
                result = InOrderCore(configs[first]).run(
                    program,
                    max_instructions=max_instructions,
                    capture=capture,
                )
                trace = capture.finish(
                    program,
                    result,
                    max_instructions,
                    predictor_id(configs[first].predictor_factory),
                )
                self.store_trace(key, trace)
                self._bump("trace_captures")
                results[first] = result
                members = members[1:]
                if not members:
                    continue
            slice_groups: "OrderedDict[object, List[int]]" = OrderedDict()
            for index in members:
                skey = replay_vec.prep_slice_key(
                    program, trace, configs[index]
                )
                if skey is None:
                    skey = ("unfused", index)
                slice_groups.setdefault(skey, []).append(index)
            for group in slice_groups.values():
                self._ensure_prep(program, trace, configs[group[0]])
                runs, outcome = replay_inorder_sweep(
                    program, trace, [configs[i] for i in group]
                )
                self._bump("trace_replays", len(group))
                if outcome == "fused":
                    self._bump("fused_passes")
                    self._bump("fused_points", len(group))
                elif outcome == "diverged":
                    self._bump("fused_diverges")
                    self._bump("fused_fallbacks")
                elif outcome == "fallback":
                    self._bump("fused_fallbacks")
                for index, run in zip(group, runs):
                    results[index] = run
        return results

    def simulate_ooo(
        self,
        program,
        config: MachineConfig,
        max_instructions: int = 2_000_000,
        window: int = 64,
    ):
        """OOO twin of :meth:`simulate_inorder`.

        The committed stream is core-independent, so an in-order
        capture replays here too.  On a miss the OOO core (which has
        no capture hook) just executes; the common caller pattern
        simulates the in-order core first, which populates the store.
        """
        if not replay_enabled():
            return OutOfOrderCore(config, window=window).run(
                program, max_instructions=max_instructions
            )
        pid = predictor_id(config.predictor_factory)
        has_decomposed = predecode(program).has_decomposed
        if has_decomposed and pid is None:
            return OutOfOrderCore(config, window=window).run(
                program, max_instructions=max_instructions
            )
        key = self._trace_key(
            program, max_instructions, pid if has_decomposed else None
        )
        trace = self.load_trace(key)
        if trace is not None:
            self._bump("trace_replays")
            self._ensure_prep(program, trace, config)
            return replay_ooo(program, trace, config, window=window)
        return OutOfOrderCore(config, window=window).run(
            program, max_instructions=max_instructions
        )

    def peek_trace(
        self,
        program,
        config: MachineConfig,
        max_instructions: int = 2_000_000,
    ) -> Optional[Trace]:
        """The stored trace a :meth:`simulate_inorder` call would replay
        (without counting a lookup); ``None`` when absent/disabled."""
        if not replay_enabled():
            return None
        pid = predictor_id(config.predictor_factory)
        has_decomposed = predecode(program).has_decomposed
        if has_decomposed and pid is None:
            return None
        key = self._trace_key(
            program, max_instructions, pid if has_decomposed else None
        )
        trace = self._lru_get(key)
        if trace is None and trace_cache_enabled():
            blob = self._read_verified(self.traces_dir / f"{key}.trace")
            if blob is None:
                return None
            try:
                trace = Trace.from_bytes(blob)
            except TraceError:
                return None
        return trace


_DEFAULT_STORE: Optional[ArtifactStore] = None
_DEFAULT_STORE_DIR: Optional[str] = None


def _configured_root() -> str:
    """The cache root ``REPRO_CACHE_DIR`` currently points at, resolved."""
    configured = os.environ.get("REPRO_CACHE_DIR", "")
    if not configured:
        from .engine import RESULTS_DIR

        configured = str(RESULTS_DIR / ".cache")
    try:
        return str(pathlib.Path(configured).resolve())
    except OSError:
        return configured


def default_store() -> ArtifactStore:
    """Process-wide store rooted at the engine's cache directory.

    Re-rooted automatically when ``REPRO_CACHE_DIR`` changes (tests
    repoint it per tmp_path).  Comparison is by *resolved path*, not
    the raw env string: the engine exports ``REPRO_CACHE_DIR`` around
    each parallel map and restores it after, and a string-based check
    used to discard the store -- and every warm memo in it -- on each
    of those no-op toggles.
    """
    global _DEFAULT_STORE, _DEFAULT_STORE_DIR
    configured = _configured_root()
    if _DEFAULT_STORE is None or _DEFAULT_STORE_DIR != configured:
        _DEFAULT_STORE = ArtifactStore()
        _DEFAULT_STORE_DIR = configured
    return _DEFAULT_STORE


def get_store(store: Optional[ArtifactStore] = None) -> ArtifactStore:
    return store if store is not None else default_store()
